"""Package/documentation consistency checks.

Keeps the deliverables honest: every module DESIGN.md promises exists,
every public symbol re-exported from ``repro`` is importable, every
benchmark has a figure driver, and the paper's headline constants stay
pinned where the docs say they are.
"""

import importlib
import pathlib

import pytest

ROOT = pathlib.Path(__file__).parent.parent

DESIGN_MODULES = [
    "repro.network.topology",
    "repro.network.channel",
    "repro.network.link",
    "repro.faults.model",
    "repro.faults.injection",
    "repro.core.flow_control",
    "repro.core.two_phase",
    "repro.core.detour",
    "repro.core.header",
    "repro.core.latency_model",
    "repro.core.theorems",
    "repro.routing.base",
    "repro.routing.dimension_order",
    "repro.routing.duato",
    "repro.routing.mb",
    "repro.routing.oblivious",
    "repro.routing.selection",
    "repro.router.model",
    "repro.router.rcu",
    "repro.router.cmu",
    "repro.router.lcu",
    "repro.router.buffers",
    "repro.router.crossbar",
    "repro.sim.engine",
    "repro.sim.simulator",
    "repro.sim.message",
    "repro.sim.traffic",
    "repro.sim.stats",
    "repro.sim.config",
    "repro.sim.trace",
    "repro.sim.validation",
    "repro.experiments.common",
    "repro.experiments.report",
    "repro.experiments.io",
    "repro.experiments.fig12_fault_free",
    "repro.experiments.fig13_static_faults",
    "repro.experiments.fig14_fault_sweep",
    "repro.experiments.fig15_aggressive_vs_conservative",
    "repro.experiments.fig17_dynamic_faults",
    "repro.experiments.formula_table",
    "repro.experiments.theorem_table",
    "repro.experiments.ablation_k",
    "repro.experiments.ablation_hw_acks",
    "repro.experiments.message_length_sweep",
    "repro.cli",
]


@pytest.mark.parametrize("module", DESIGN_MODULES)
def test_design_module_importable(module):
    importlib.import_module(module)


def test_every_module_has_docstring():
    import repro

    src = pathlib.Path(repro.__file__).parent
    for path in src.rglob("*.py"):
        rel = path.relative_to(src.parent)
        mod = str(rel.with_suffix("")).replace("/", ".")
        if mod.endswith(".__init__"):
            mod = mod[: -len(".__init__")]
        loaded = importlib.import_module(mod)
        assert loaded.__doc__, f"{mod} lacks a module docstring"


def test_public_api_importable():
    import repro

    for name in repro.__all__:
        assert getattr(repro, name, None) is not None, name


def test_benchmarks_cover_every_figure():
    bench = {p.name for p in (ROOT / "benchmarks").glob("test_bench_*.py")}
    expected = {
        "test_bench_latency_formulas.py",
        "test_bench_theorems.py",
        "test_bench_fig12.py",
        "test_bench_fig13.py",
        "test_bench_fig14.py",
        "test_bench_fig15.py",
        "test_bench_fig17.py",
        "test_bench_ablation.py",
        "test_bench_extensions.py",
    }
    assert expected <= bench


def test_docs_exist_and_mention_the_paper():
    for name in ("README.md", "DESIGN.md", "EXPERIMENTS.md"):
        text = (ROOT / name).read_text()
        assert "Fault-Tolerant" in text, name
    assert "ISCA" in (ROOT / "README.md").read_text()


def test_paper_constants_pinned():
    """The documented hardware constants of Section 5.0."""
    from repro.core.header import MISROUTE_FIELD_BITS, header_bits
    from repro.core.theorems import (
        SUFFICIENT_MISROUTES,
        cmu_counter_bits,
        fault_budget,
    )

    assert MISROUTE_FIELD_BITS == 3
    assert SUFFICIENT_MISROUTES == 6
    assert fault_budget(2) == 3
    assert cmu_counter_bits(3) == 2
    assert header_bits(16, 2) == 17


def test_version_declared():
    import repro

    assert repro.__version__ == "1.0.0"
