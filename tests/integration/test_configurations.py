"""Cross-configuration matrix tests: dimensions, radices, VCs, buffers.

The paper's analysis is parametric in n and k (Theorems 1/2, the 2n-1
fault budget); the simulator must honor that generality, not just the
16-ary 2-cube of the evaluation.
"""

import random

import pytest

from repro.faults.injection import place_random_node_faults
from repro.faults.model import FaultState
from repro.network.topology import KAryNCube

from tests.conftest import build_engine, drain_engine


class TestThreeDimensions:
    """4-ary 3-cube: fault budget 2n - 1 = 5."""

    @pytest.mark.parametrize("protocol", ["tp", "mb"])
    @pytest.mark.parametrize("seed", range(3))
    def test_delivery_within_3d_fault_budget(self, protocol, seed):
        rng = random.Random(seed)
        topo = KAryNCube(4, 3)
        faults = FaultState(topo)
        place_random_node_faults(faults, 5, rng, keep_connected=True)
        engine = build_engine(protocol, k=4, n=3, faults=faults, seed=seed)
        healthy = [
            n for n in range(topo.num_nodes)
            if not faults.is_node_faulty(n)
        ]
        msgs = []
        for _ in range(10):
            src = rng.choice(healthy)
            dst = rng.choice([n for n in healthy if n != src])
            msgs.append(engine.inject(src, dst, length=6))
        drain_engine(engine)
        assert all(m.status.name == "DELIVERED" for m in msgs)

    def test_wormhole_floor_3d(self):
        from repro.core.latency_model import t_wormhole
        from tests.conftest import run_to_completion

        engine = build_engine("tp", k=4, n=3)
        topo = engine.topology
        dst = topo.node_id((1, 1, 1))
        msg = engine.inject(0, dst, length=8)
        run_to_completion(engine, msg)
        assert msg.delivered_cycle - msg.created_cycle == t_wormhole(3, 8)


class TestOddRadix:
    def test_odd_radix_delivery(self):
        engine = build_engine("tp", k=7)
        topo = engine.topology
        msgs = [
            engine.inject(0, topo.node_id((3, 3)), length=6),
            engine.inject(5, topo.node_id((6, 6)), length=6),
        ]
        drain_engine(engine)
        assert all(m.status.name == "DELIVERED" for m in msgs)

    def test_odd_radix_no_half_way_tie(self):
        topo = KAryNCube(7, 2)
        for dst in range(1, 7):
            ports = topo.profitable_ports(0, topo.node_id((dst, 0)))
            assert len(ports) == 1  # never both directions


class TestResourceKnobs:
    @pytest.mark.parametrize("depth", [1, 2, 4])
    def test_buffer_depth_still_delivers(self, depth):
        engine = build_engine("tp", k=6, buffer_depth=depth)
        msg = engine.inject(0, 9, length=8)
        drain_engine(engine)
        assert msg.status.name == "DELIVERED"

    def test_deeper_buffers_never_slower(self):
        def latency(depth):
            engine = build_engine("tp", k=6, buffer_depth=depth)
            msg = engine.inject(0, 3, length=8)
            drain_engine(engine)
            return msg.delivered_cycle - msg.created_cycle

        assert latency(4) <= latency(1)

    @pytest.mark.parametrize("adaptive", [1, 2, 3])
    def test_adaptive_vc_count(self, adaptive):
        engine = build_engine("tp", k=6, num_adaptive_vcs=adaptive)
        assert engine.channels.vcs_per_channel == 2 + adaptive
        msg = engine.inject(0, 9, length=6)
        drain_engine(engine)
        assert msg.status.name == "DELIVERED"

    def test_saturation_comparable_across_vc_counts(self):
        # More VCs trade head-of-line blocking against deeper
        # interleaving on each physical channel; either way the
        # saturated network must keep moving a comparable flit volume.
        from repro.sim.config import SimulationConfig
        from repro.sim.simulator import NetworkSimulator

        def throughput(adaptive):
            cfg = SimulationConfig(
                k=6, n=2, protocol="tp", offered_load=0.5,
                num_adaptive_vcs=adaptive, warmup_cycles=300,
                measure_cycles=1200, seed=4,
            )
            return NetworkSimulator(cfg).run().throughput

        t1, t3 = throughput(1), throughput(3)
        assert t1 > 0.3 and t3 > 0.3
        assert abs(t1 - t3) < 0.3 * max(t1, t3)


class TestTrafficPatternsEndToEnd:
    @pytest.mark.parametrize(
        "pattern", ["uniform", "nearest", "transpose", "tornado",
                    "complement"]
    )
    def test_pattern_runs_and_delivers(self, pattern):
        from repro.sim.config import SimulationConfig
        from repro.sim.simulator import NetworkSimulator

        cfg = SimulationConfig(
            k=6, n=2, protocol="tp", traffic=pattern,
            offered_load=0.05, warmup_cycles=100, measure_cycles=600,
            seed=2,
        )
        result = NetworkSimulator(cfg).run()
        assert result.delivered > 0
        assert result.killed == 0

    def test_tornado_saturates_below_uniform(self):
        """Tornado concentrates on one ring direction: lower capacity."""
        from repro.sim.config import SimulationConfig
        from repro.sim.simulator import NetworkSimulator

        def tput(pattern):
            cfg = SimulationConfig(
                k=8, n=2, protocol="tp", traffic=pattern,
                offered_load=0.6, warmup_cycles=300,
                measure_cycles=1500, seed=2,
            )
            return NetworkSimulator(cfg).run().throughput

        assert tput("tornado") < tput("uniform")
