"""Integration validation: simulated latencies == Section 2.2 formulas.

This is the simulator's primary oracle (the paper validated its own
simulator against deterministic patterns [14]): for a single message on
an idle network, the flit-level simulation must reproduce the
closed-form minimum latencies of wormhole routing, scouting with any
distance K, and pipelined circuit switching *exactly*.
"""

import pytest

from repro.core.latency_model import t_pcs, t_scouting, t_wormhole
from repro.experiments.formula_table import measure_single_message

LINKS = (1, 2, 3, 5, 7)
LENGTHS = (1, 4, 32)


class TestWormholeExact:
    @pytest.mark.parametrize("links", LINKS)
    @pytest.mark.parametrize("length", LENGTHS)
    def test_wr(self, links, length):
        assert measure_single_message("wr", links, length) == t_wormhole(
            links, length
        )


class TestPCSExact:
    @pytest.mark.parametrize("links", LINKS)
    @pytest.mark.parametrize("length", LENGTHS)
    def test_pcs(self, links, length):
        assert measure_single_message("pcs", links, length) == t_pcs(
            links, length
        )


class TestScoutingExact:
    @pytest.mark.parametrize("links", LINKS)
    @pytest.mark.parametrize("length", (1, 32))
    @pytest.mark.parametrize("k", (1, 2, 3, 5))
    def test_sr(self, links, length, k):
        want = (
            t_scouting(links, length, k)
            if k <= links
            else t_pcs(links, length)
        )
        assert measure_single_message("sr", links, length, k) == want

    def test_sr_k_equals_path_matches_pcs(self):
        # At K == l the scouting delay equals the PCS setup cost.
        assert t_scouting(4, 16, 4) == t_pcs(4, 16)
        assert measure_single_message("sr", 4, 16, 4) == t_pcs(4, 16)


class TestProtocolZeroLoad:
    """The full protocols also hit their mechanism's floor latency."""

    def _run_one(self, protocol_name, params, src, dst, length, k=8):
        from tests.conftest import build_engine, run_to_completion

        engine = build_engine(
            protocol_name, k=k, protocol_params=params,
            message_length=length,
        )
        msg = engine.inject(src, dst, length=length)
        run_to_completion(engine, msg)
        return msg.delivered_cycle - msg.created_cycle

    def test_dp_hits_wormhole_floor(self):
        assert self._run_one("dp", {}, 0, 3, 16) == t_wormhole(3, 16)

    def test_tp_hits_wormhole_floor_fault_free(self):
        # TP with K=0 and no faults behaves like WR (Section 6.1).
        assert self._run_one("tp", {}, 0, 3, 16) == t_wormhole(3, 16)

    def test_mb_hits_pcs_floor(self):
        assert self._run_one("mb", {}, 0, 3, 16) == t_pcs(3, 16)

    def test_tp_multidimensional_path(self):
        from repro.network.topology import KAryNCube

        topo = KAryNCube(8, 2)
        dst = topo.node_id((2, 3))
        assert self._run_one("tp", {}, 0, dst, 16) == t_wormhole(5, 16)
