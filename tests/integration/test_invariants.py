"""Property-based whole-system invariants (hypothesis).

Random workloads over random fault sets, random protocols, and random
message mixes must always satisfy:

* flit conservation — every injected flit is buffered, ejected, or
  accounted as killed;
* termination — every message reaches a terminal state;
* resource recovery — after draining, every virtual channel is free;
* no deadlock — the engine watchdog never fires.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.faults.injection import place_random_node_faults
from repro.faults.model import FaultState
from repro.network.topology import KAryNCube

from tests.conftest import build_engine


protocol_strategy = st.sampled_from(
    [("tp", {}), ("tp", {"k_unsafe": 3}), ("mb", {}), ("dp", {})]
)


@given(
    proto=protocol_strategy,
    seed=st.integers(min_value=0, max_value=10_000),
    num_messages=st.integers(min_value=1, max_value=10),
    length=st.integers(min_value=1, max_value=12),
    num_faults=st.integers(min_value=0, max_value=3),
)
@settings(max_examples=25, deadline=None)
def test_random_workload_invariants(proto, seed, num_messages, length,
                                    num_faults):
    protocol_name, params = proto
    if protocol_name == "dp" and num_faults:
        num_faults = 0  # DP is the fault-free baseline
    rng = random.Random(seed)
    topo = KAryNCube(6, 2)
    faults = FaultState(topo)
    if num_faults:
        place_random_node_faults(faults, num_faults, rng)
    engine = build_engine(
        protocol_name, k=6, faults=faults, seed=seed,
        protocol_params=params, message_length=length,
    )
    healthy = [
        n for n in range(topo.num_nodes) if not faults.is_node_faulty(n)
    ]
    messages = []
    for _ in range(num_messages):
        src = rng.choice(healthy)
        dst = rng.choice([n for n in healthy if n != src])
        messages.append(engine.inject(src, dst, length=length))

    assert engine.drain(30_000), "network failed to drain"

    for msg in messages:
        assert msg.is_terminal()
        assert msg.flit_conservation_ok()
        if msg.status.name == "DELIVERED":
            assert msg.ejected == msg.total_flits
            assert msg.delivered_cycle is not None
            # Latency can never beat the wormhole floor.
            assert (
                msg.delivered_cycle - msg.created_cycle
                >= topo.distance(msg.src, msg.dst) + length
            )
    assert engine.channels.all_free()


@given(
    seed=st.integers(min_value=0, max_value=10_000),
    load=st.sampled_from([0.05, 0.15, 0.3]),
)
@settings(max_examples=8, deadline=None)
def test_random_traffic_conservation(seed, load):
    """Continuous random traffic: global flit accounting holds."""
    from repro.sim.config import SimulationConfig
    from repro.sim.simulator import NetworkSimulator

    cfg = SimulationConfig(
        k=5, n=2, protocol="tp", offered_load=load,
        message_length=8, warmup_cycles=50, measure_cycles=300,
        drain_cycles=6000, seed=seed,
    )
    sim = NetworkSimulator(cfg)
    result = sim.run()
    engine = sim.engine
    assert engine.network_drained()
    # RunResult filters to the measurement window; the engine counter
    # is global.
    assert result.delivered <= engine.delivered_messages
    # Every accepted message reached a terminal record.
    terminal_records = len(engine.records)
    assert terminal_records >= engine.delivered_messages


@given(seed=st.integers(min_value=0, max_value=500))
@settings(max_examples=10, deadline=None)
def test_backtracking_never_carries_data(seed):
    """pop_path()'s no-data assertion never trips under random faults.

    (The engine would raise RuntimeError through drain if it did.)
    """
    rng = random.Random(seed)
    topo = KAryNCube(6, 2)
    faults = FaultState(topo)
    place_random_node_faults(faults, 3, rng)
    engine = build_engine(
        "tp", k=6, faults=faults, seed=seed,
        protocol_params={"k_unsafe": 3}, message_length=6,
    )
    healthy = [
        n for n in range(topo.num_nodes) if not faults.is_node_faulty(n)
    ]
    for _ in range(6):
        src = rng.choice(healthy)
        dst = rng.choice([n for n in healthy if n != src])
        engine.inject(src, dst, length=6)
    assert engine.drain(30_000)
    assert engine.channels.all_free()
