"""Qualitative shape checks matching the paper's headline claims."""

import pytest

from repro.sim.config import FaultConfig, SimulationConfig
from repro.sim.simulator import NetworkSimulator


def run(protocol, params=None, faults=0, load=0.1, seed=3, k=8,
        measure=2000):
    cfg = SimulationConfig(
        k=k, n=2, protocol=protocol, protocol_params=params or {},
        offered_load=load, warmup_cycles=400, measure_cycles=measure,
        seed=seed, faults=FaultConfig(static_node_faults=faults),
    )
    return NetworkSimulator(cfg).run()


class TestFaultFreeShapes:
    """Figure 12: TP ~ DP << MB-m."""

    def test_tp_matches_dp_within_two_percent(self):
        tp = run("tp", load=0.1)
        dp = run("dp", load=0.1)
        assert tp.latency_mean == pytest.approx(dp.latency_mean, rel=0.02)

    def test_mb_latency_clearly_higher(self):
        mb = run("mb", load=0.1)
        dp = run("dp", load=0.1)
        assert mb.latency_mean > dp.latency_mean * 1.15

    def test_all_deliver_everything_fault_free(self):
        for proto in ("tp", "dp", "mb"):
            result = run(proto, load=0.1)
            assert result.dropped == 0 and result.killed == 0


class TestFaultedShapes:
    """Figure 13: TP latency below MB-m under faults."""

    def test_tp_beats_mb_at_low_fault_count(self):
        tp = run("tp", faults=3, load=0.1, seed=11)
        mb = run("mb", faults=3, load=0.1, seed=11)
        assert tp.latency_mean < mb.latency_mean

    def test_latency_grows_with_faults(self):
        low = run("tp", faults=1, load=0.1, seed=11)
        high = run("tp", faults=10, load=0.1, seed=11)
        assert high.latency_mean > low.latency_mean


class TestFigure15Shape:
    """Aggressive TP no worse than conservative at high faults/load."""

    def test_aggressive_vs_conservative(self):
        aggressive = run(
            "tp", {"k_unsafe": 0}, faults=8, load=0.15, seed=11
        )
        conservative = run(
            "tp", {"k_unsafe": 3}, faults=8, load=0.15, seed=11
        )
        assert aggressive.latency_mean <= conservative.latency_mean * 1.10

    def test_conservative_generates_ack_traffic(self):
        cfg = lambda k_unsafe: SimulationConfig(  # noqa: E731
            k=8, n=2, protocol="tp",
            protocol_params={"k_unsafe": k_unsafe},
            offered_load=0.1, warmup_cycles=200, measure_cycles=1500,
            seed=11, faults=FaultConfig(static_node_faults=8),
        )
        sims = {}
        for k_unsafe in (0, 3):
            sim = NetworkSimulator(cfg(k_unsafe))
            sim.run()
            sims[k_unsafe] = sim.engine.control_flits_sent
        assert sims[3] > sims[0]


class TestThroughputSanity:
    def test_throughput_tracks_offered_below_saturation(self):
        for proto in ("tp", "dp"):
            result = run(proto, load=0.08)
            assert result.throughput == pytest.approx(0.08, rel=0.15)

    def test_saturation_bounded(self):
        # Offered load far beyond capacity: accepted throughput must
        # flatten well below the offered rate.
        result = run("tp", load=0.9, measure=1500)
        assert result.throughput < 0.7
