"""End-to-end observation of a Two-Phase detour (Figure 7's scenario)."""

import random

from repro.faults.model import FaultState
from repro.network.topology import KAryNCube
from repro.sim.config import SimulationConfig
from repro.sim.engine import Engine
from repro.sim.message import TPMode
from repro.sim.simulator import make_protocol
from repro.sim.trace import MessageTracer

from tests.conftest import drain_engine


def walled_engine(k_unsafe=0):
    """Source (0,0) -> dst (3,0) with a node wall at x = 2."""
    topo = KAryNCube(8, 2)
    faults = FaultState(topo)
    for y in (7, 0, 1):
        faults.fail_node(topo.node_id((2, y)))
    cfg = SimulationConfig(
        k=8, n=2, protocol="tp",
        protocol_params={"k_unsafe": k_unsafe},
        offered_load=0.0, message_length=16,
        warmup_cycles=0, measure_cycles=0,
    )
    engine = Engine(
        cfg, make_protocol("tp", k_unsafe=k_unsafe), topology=topo,
        fault_state=faults, rng=random.Random(1),
    )
    return engine, topo


class TestDetourLifecycle:
    def test_header_enters_and_leaves_detour_mode(self):
        engine, topo = walled_engine()
        msg = engine.inject(0, topo.node_id((3, 0)), length=16)
        saw_detour = False
        for _ in range(600):
            engine.step()
            if msg.tp_mode is TPMode.DETOUR:
                saw_detour = True
            if msg.is_terminal():
                break
        assert saw_detour, "the wall must force a detour"
        assert msg.status.name == "DELIVERED"
        assert msg.tp_mode is TPMode.DP  # completed, reset to DP
        assert not msg.header.detour
        assert msg.detour_count >= 1

    def test_detour_channels_held_until_resume(self):
        """While the detour bit is set, no data advances onto the
        channels reserved in detour mode ('all channels (or none)')."""
        engine, topo = walled_engine()
        msg = engine.inject(0, topo.node_id((3, 0)), length=16)
        for _ in range(600):
            engine.step()
            if msg.tp_mode is TPMode.DETOUR:
                for idx, held in enumerate(msg.held):
                    if held:
                        assert msg.buffered[idx] == 0, (
                            "data crossed a held detour channel"
                        )
            if msg.is_terminal():
                break
        assert msg.status.name == "DELIVERED"

    def test_detour_uses_only_adaptive_channels(self):
        from repro.network.channel import VCClass

        engine, topo = walled_engine()
        msg = engine.inject(0, topo.node_id((3, 0)), length=16)
        detour_classes = set()
        was_detour = False
        prev_len = 0
        for _ in range(600):
            engine.step()
            if len(msg.path) > prev_len and msg.tp_mode is TPMode.DETOUR:
                detour_classes.add(msg.path[-1].vclass)
            was_detour = msg.tp_mode is TPMode.DETOUR
            prev_len = len(msg.path)
            if msg.is_terminal():
                break
        assert detour_classes <= {VCClass.ADAPTIVE}

    def test_trace_shows_backtrack_or_misroute(self):
        engine, topo = walled_engine()
        msg = engine.inject(0, topo.node_id((3, 0)), length=16)
        tracer = MessageTracer(engine, msg)
        tracer.run(600)
        assert msg.status.name == "DELIVERED"
        assert msg.misroute_total >= 1
        text = tracer.render()
        assert "H" in text

    def test_conservative_detour_also_delivers(self):
        engine, topo = walled_engine(k_unsafe=3)
        msg = engine.inject(0, topo.node_id((3, 0)), length=16)
        drain_engine(engine)
        assert msg.status.name == "DELIVERED"
        assert engine.channels.all_free()

    def test_sr_bit_sticky_once_set(self):
        engine, topo = walled_engine(k_unsafe=3)
        msg = engine.inject(0, topo.node_id((3, 0)), length=16)
        sr_set_cycle = None
        for _ in range(600):
            engine.step()
            if msg.header.sr and sr_set_cycle is None:
                sr_set_cycle = engine.cycle
            if sr_set_cycle is not None:
                assert msg.header.sr, "SR bit must remain set"
            if msg.is_terminal():
                break
        assert sr_set_cycle is not None


class TestFig17StaticReference:
    def test_static_reference_variant_runs(self):
        from repro.experiments import QUICK, fig17_dynamic_faults

        exp = fig17_dynamic_faults.run(
            scale=QUICK, loads=(0.05,), fault_counts=(10,),
            static_reference=True,
        )
        for series in exp.series:
            assert series.points[0].delivered > 0
