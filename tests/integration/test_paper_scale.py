"""Paper-scale (16-ary 2-cube) smoke checks.

The full paper-scale figure suite takes tens of minutes
(``REPRO_PAPER_SCALE=1 pytest benchmarks/``); these tests verify the
256-node configuration itself works — one moderate-load point per
protocol — and run in the regular suite with a short horizon.
"""

from repro.sim.config import FaultConfig, SimulationConfig
from repro.sim.simulator import NetworkSimulator


def paper_point(protocol, faults=0, load=0.1, cycles=1200, seed=5):
    cfg = SimulationConfig(
        k=16, n=2, protocol=protocol, offered_load=load,
        message_length=32, warmup_cycles=400, measure_cycles=cycles,
        drain_cycles=4000, seed=seed,
        faults=FaultConfig(static_node_faults=faults),
    )
    return NetworkSimulator(cfg).run()


class TestPaperScaleSmoke:
    def test_tp_fault_free_16ary(self):
        result = paper_point("tp")
        assert result.delivered > 100
        # Average minimal distance on a 16-ary 2-cube is 8; latency
        # floor ~40 cycles for 32-flit messages.
        assert 38 < result.latency_mean < 90

    def test_tp_with_paper_fault_count(self):
        result = paper_point("tp", faults=10)
        assert result.delivered > 100
        assert result.killed == 0

    def test_mb_fault_free_16ary(self):
        result = paper_point("mb")
        assert result.delivered > 100
        # PCS pays roughly 2l extra: clearly above TP's floor.
        tp = paper_point("tp")
        assert result.latency_mean > tp.latency_mean * 1.15
