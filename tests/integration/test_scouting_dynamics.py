"""Scouting-mechanism dynamics: gaps, stalls, counters (Section 2.2).

Exercises the acknowledgment machinery beyond the closed-form minimums:
the header/data gap while advancing, data creep when the header stalls,
and negative-acknowledgment bookkeeping during backtracking.
"""

import random

import pytest

from repro.network.topology import KAryNCube, PLUS
from repro.sim.config import SimulationConfig
from repro.sim.engine import Engine
from repro.sim.simulator import make_protocol
from repro.sim.trace import MessageTracer

from tests.conftest import drain_engine


def scouting_engine(k=12, length=16, K=3):
    cfg = SimulationConfig(
        k=k, n=2, protocol="det", offered_load=0.0,
        message_length=length, warmup_cycles=0, measure_cycles=0,
    )
    return Engine(
        cfg, make_protocol("det", flow="sr", k=K), rng=random.Random(1)
    )


class TestAdvancingGap:
    @pytest.mark.parametrize("K", [1, 2, 3])
    def test_gap_never_exceeds_2k(self, K):
        """While the header advances, the data head trails it by at
        most 2K links (the paper: the gap grows up to 2K - 1 while
        advancing; one extra transient hop at the boundary)."""
        engine = scouting_engine(K=K)
        msg = engine.inject(0, 5, length=16)
        tracer = MessageTracer(engine, msg)
        tracer.run(300)
        for s in tracer.samples:
            if s.header_router is None or not s.data_at:
                continue
            head = max(s.data_at)
            assert s.header_router - head <= 2 * K

    def test_data_waits_k_acks_at_source(self):
        K = 3
        engine = scouting_engine(K=K)
        msg = engine.inject(0, 6, length=16)
        first_injection = None
        for cycle in range(1, 60):
            engine.step()
            if msg.injected_cycle is not None:
                first_injection = msg.injected_cycle
                break
        # First data flit leaves during cycle 2K + 1.
        assert first_injection == 2 * K + 1
        drain_engine(engine)


class TestStalledHeader:
    def test_data_stops_short_of_blocked_header(self):
        """When the header blocks, data creeps up and halts with a gap
        of K - 1 links (the counters encode distance-to-header)."""
        K = 3
        engine = scouting_engine(k=24, K=K)  # +x path of 10 is minimal
        topo = engine.topology
        # Block the path at hop 8 by parking a phantom reservation on
        # the deterministic VCs of the next channel.
        block_node = 8
        block_ch = topo.channel_id(block_node, 0, PLUS)
        for vc in engine.channels.vcs(block_ch):
            vc.reserve(9999)
        msg = engine.inject(0, 10, length=16)
        for _ in range(80):
            engine.step()
        assert msg.header_router == block_node  # header blocked
        # Data head halted K-1 links behind the stalled header.
        head_router = msg.head_link + 1
        assert block_node - head_router == K - 1
        # Unblock and finish.
        for vc in engine.channels.vcs(block_ch):
            vc.release()
        drain_engine(engine)
        assert msg.status.name == "DELIVERED"


class TestCounters:
    def test_acks_annihilate_at_data_head(self):
        """No acknowledgment token survives past the first data flit:
        after the run every counter at/below the head was touched and
        the network drains with no stray tokens."""
        engine = scouting_engine(K=2)
        msg = engine.inject(0, 6, length=8)
        drain_engine(engine)
        assert all(len(q) == 0 for q in engine.control_out)

    def test_ack_traffic_proportional_to_path(self):
        """SR sends one positive ack per non-destination hop."""
        counts = {}
        for links in (3, 6):
            engine = scouting_engine(K=2)
            msg = engine.inject(0, links, length=8)
            drain_engine(engine)
            counts[links] = engine.control_flits_sent
        # Longer path -> strictly more control flits.
        assert counts[6] > counts[3]

    def test_no_acks_with_k_zero_tp(self):
        cfg = SimulationConfig(
            k=8, n=2, protocol="tp", offered_load=0.0,
            message_length=8, warmup_cycles=0, measure_cycles=0,
        )
        engine = Engine(cfg, make_protocol("tp"), rng=random.Random(1))
        msg = engine.inject(0, 4, length=8)
        drain_engine(engine)
        # Fault-free TP with K=0: only the 4 header hops cross the
        # control channels — no acknowledgments at all (Section 6.1).
        assert engine.control_flits_sent == 4


class TestBacktrackCounters:
    def test_negative_acks_rebalance_counters(self):
        """A conservative-TP run over faults: after delivery all
        in-flight tokens are consumed and channels are free, proving
        positive/negative ack bookkeeping stayed consistent."""
        from repro.faults.model import FaultState

        topo = KAryNCube(8, 2)
        faults = FaultState(topo)
        for y in (7, 0, 1):
            faults.fail_node(topo.node_id((3, y)))
        cfg = SimulationConfig(
            k=8, n=2, protocol="tp",
            protocol_params={"k_unsafe": 3},
            offered_load=0.0, message_length=12,
            warmup_cycles=0, measure_cycles=0,
        )
        engine = Engine(
            cfg, make_protocol("tp", k_unsafe=3), topology=topo,
            fault_state=faults, rng=random.Random(1),
        )
        msg = engine.inject(0, topo.node_id((4, 0)), length=12)
        drain_engine(engine)
        assert msg.status.name == "DELIVERED"
        assert engine.channels.all_free()
        assert all(len(q) == 0 for q in engine.control_out)
