"""Tests for the blocked-header escape hatches (Section 4.0 recovery).

A post-detour Two-Phase path is a walk and can revisit a physical
channel; the header must never deadlock waiting on a virtual channel
its own message holds, and any header blocked past the wait limit is
handed to the recovery mechanism (teardown + source retry).
"""

import random

from repro.core.two_phase import TwoPhaseProtocol
from repro.network.channel import VCClass
from repro.network.topology import KAryNCube, PLUS
from repro.routing.base import Action
from repro.sim.message import Message, TPMode

from tests.conftest import build_engine, drain_engine, make_context


class TestSelfOwnedEscape:
    def _msg_with_walk(self, topo, ctx):
        """A message whose walk already owns every VC of its det hop."""
        dst = topo.node_id((2, 0))
        msg = Message(
            msg_id=1, src=0, dst=dst, length=4,
            offsets=topo.offsets(0, dst), created_cycle=0,
            inline_header=False,
        )
        ch = topo.channel_id(0, 0, PLUS)
        for vc in ctx.channels.vcs(ch):
            vc.reserve(msg.msg_id)
        return msg

    def test_detours_instead_of_waiting_on_self(self, torus8):
        ctx = make_context(torus8)
        msg = self._msg_with_walk(torus8, ctx)
        decision = TwoPhaseProtocol().decide(ctx, msg)
        # Must not WAIT: the deterministic VC belongs to this message.
        assert decision.action is not Action.WAIT
        assert msg.tp_mode is TPMode.DETOUR

    def test_waits_when_other_message_owns_escape(self, torus8):
        ctx = make_context(torus8)
        dst = torus8.node_id((2, 0))
        msg = Message(
            msg_id=1, src=0, dst=dst, length=4,
            offsets=torus8.offsets(0, dst), created_cycle=0,
            inline_header=False,
        )
        ch = torus8.channel_id(0, 0, PLUS)
        for vc in ctx.channels.vcs(ch):
            vc.reserve(99)  # someone else
        decision = TwoPhaseProtocol().decide(ctx, msg)
        assert decision.action is Action.WAIT
        assert msg.tp_mode is TPMode.DP


class TestWaitLimitEscape:
    def test_blocked_header_recovered_and_retried(self):
        """Hold every VC toward the destination with parked owners."""
        engine = build_engine(
            "tp", k=8, max_header_wait=40, watchdog_cycles=5000,
        )
        topo = engine.topology
        dst = topo.neighbor(0, 0, PLUS)
        ch = topo.channel_id(0, 0, PLUS)
        for vc in engine.channels.vcs(ch):
            vc.reserve(10_000)  # phantom owner that never releases
        engine.inject(0, dst, length=4)
        # The original terminates quickly (superseded by a retry clone);
        # run long enough for every retry clone to play out as well.
        for _ in range(300):
            engine.step()
            if not engine.active and not engine.queues[0]:
                break
        # The header hit the wait limit, recovery tore it down, the
        # retries also failed, and the message was finally dropped.
        final = [r for r in engine.records if not r.superseded]
        assert final and final[-1].status == "DROPPED"
        assert engine.source_retries >= 1

    def test_wait_limit_releases_after_unblock(self):
        """If the channel frees before the limit, delivery proceeds."""
        engine = build_engine(
            "tp", k=8, max_header_wait=400,
        )
        topo = engine.topology
        dst = topo.neighbor(0, 0, PLUS)
        ch = topo.channel_id(0, 0, PLUS)
        parked = list(engine.channels.vcs(ch))
        for vc in parked:
            vc.reserve(10_000)
        msg = engine.inject(0, dst, length=4)
        for _ in range(30):
            engine.step()
        for vc in parked:
            vc.release()
        drain_engine(engine)
        assert msg.status.name == "DELIVERED"


class TestBacktrackLock:
    def test_lock_clears_on_arrival(self):
        """After a full faulty-run the lock is always back at -1."""
        from repro.faults.injection import place_random_node_faults
        from repro.faults.model import FaultState

        rng = random.Random(3)
        topo = KAryNCube(6, 2)
        faults = FaultState(topo)
        place_random_node_faults(faults, 3, rng)
        engine = build_engine(
            "tp", k=6, faults=faults,
            protocol_params={"k_unsafe": 3}, message_length=6,
        )
        healthy = [
            n for n in range(topo.num_nodes)
            if not faults.is_node_faulty(n)
        ]
        msgs = []
        for _ in range(8):
            src = rng.choice(healthy)
            dst = rng.choice([n for n in healthy if n != src])
            msgs.append(engine.inject(src, dst, length=6))
        drain_engine(engine)
        for msg in msgs:
            assert msg.backtrack_lock == -1
            assert msg.is_terminal()
