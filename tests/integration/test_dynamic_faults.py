"""Integration tests for dynamic faults under live traffic (Fig 16/17)."""

import pytest

from repro.sim.config import FaultConfig, RecoveryConfig, SimulationConfig
from repro.sim.simulator import NetworkSimulator


def run_dynamic(dynamic_faults, tail_ack, retransmit, seed=11, load=0.08,
                kind="link"):
    cfg = SimulationConfig(
        k=8, n=2, protocol="tp", offered_load=load,
        warmup_cycles=300, measure_cycles=2000, drain_cycles=8000,
        seed=seed,
        faults=FaultConfig(
            dynamic_faults=dynamic_faults, dynamic_kind=kind,
            dynamic_start=400,
        ),
        recovery=RecoveryConfig(
            tail_ack=tail_ack, retransmit=retransmit, max_retransmits=3
        ),
    )
    sim = NetworkSimulator(cfg)
    result = sim.run()
    return sim, result


class TestRecoveryOnly:
    def test_network_recovers_all_resources(self):
        sim, result = run_dynamic(4, tail_ack=False, retransmit=False)
        assert sim.engine.network_drained()

    def test_some_messages_may_be_lost_but_bounded(self):
        losses = 0
        delivered = 0
        for seed in (3, 7, 11):
            _, result = run_dynamic(
                6, tail_ack=False, retransmit=False, seed=seed
            )
            losses += result.killed
            delivered += result.delivered
        assert delivered > 0
        # "a very low probability of losing a message"
        assert losses < delivered * 0.05

    def test_node_faults_also_recovered(self):
        sim, result = run_dynamic(
            2, tail_ack=False, retransmit=False, kind="node"
        )
        assert sim.engine.network_drained()


class TestReliableDelivery:
    def test_interrupted_messages_retransmitted(self):
        killed = 0
        retx = 0
        for seed in (3, 7, 11, 19):
            sim, result = run_dynamic(6, tail_ack=True, retransmit=True,
                                      seed=seed)
            killed += result.killed
            retx += result.retransmissions
        assert killed == 0, "reliable mode must not lose messages"
        assert retx > 0, "expected at least one retransmission"

    def test_tail_ack_generates_extra_control_traffic(self):
        sim_plain, _ = run_dynamic(1, tail_ack=False, retransmit=False)
        sim_tack, _ = run_dynamic(1, tail_ack=True, retransmit=True)
        assert (
            sim_tack.engine.control_flits_sent
            > sim_plain.engine.control_flits_sent * 1.5
        )

    def test_tail_ack_throttles_throughput_at_high_load(self):
        """Figure 17's shape: with-TAck saturates earlier."""
        _, plain = run_dynamic(2, tail_ack=False, retransmit=False,
                               load=0.3)
        _, tack = run_dynamic(2, tail_ack=True, retransmit=True, load=0.3)
        assert tack.throughput < plain.throughput

    def test_low_load_overhead_insignificant(self):
        _, plain = run_dynamic(2, tail_ack=False, retransmit=False,
                               load=0.03)
        _, tack = run_dynamic(2, tail_ack=True, retransmit=True, load=0.03)
        assert tack.latency_mean == pytest.approx(
            plain.latency_mean, rel=0.15
        )
