"""Tests for the hardware-acknowledgment extension (Section 7.0)."""

import random

from repro.sim.config import SimulationConfig
from repro.sim.engine import Engine
from repro.sim.simulator import NetworkSimulator, make_protocol

from tests.conftest import drain_engine


def idle_engine(hardware_acks: bool, K: int = 3):
    cfg = SimulationConfig(
        k=12, n=2, protocol="det", offered_load=0.0,
        message_length=8, warmup_cycles=0, measure_cycles=0,
        hardware_acks=hardware_acks,
    )
    return Engine(
        cfg, make_protocol("det", flow="sr", k=K), rng=random.Random(1)
    )


class TestLogicalEquivalence:
    """'The logical behavior remains unchanged' — same latency on an
    idle network, acknowledgments just stop consuming the flit slot."""

    def test_idle_latency_identical(self):
        latencies = {}
        for hw in (False, True):
            engine = idle_engine(hw)
            msg = engine.inject(0, 5, length=8)
            drain_engine(engine)
            latencies[hw] = msg.delivered_cycle - msg.created_cycle
        assert latencies[False] == latencies[True]

    def test_acks_still_counted(self):
        engine = idle_engine(True)
        engine.inject(0, 5, length=8)
        drain_engine(engine)
        # Header hops + acks + path ack all counted as control flits.
        assert engine.control_flits_sent > 5

    def test_ack_queues_drain(self):
        engine = idle_engine(True)
        engine.inject(0, 5, length=8)
        drain_engine(engine)
        assert all(len(q) == 0 for q in engine.ack_out)
        assert not engine._active_ack


class TestBandwidthEffect:
    def test_hw_acks_free_link_bandwidth_under_load(self):
        """With heavy conservative-SR ack traffic, dedicated wires must
        not hurt — and typically help — accepted throughput."""
        def throughput(hw: bool) -> float:
            cfg = SimulationConfig(
                k=6, n=2, protocol="det",
                protocol_params={"flow": "sr", "k": 2},
                offered_load=0.35, message_length=8,
                warmup_cycles=300, measure_cycles=1500, seed=9,
                hardware_acks=hw,
            )
            return NetworkSimulator(cfg).run().throughput

        assert throughput(True) >= throughput(False) * 0.98

    def test_ack_wires_used_only_when_enabled(self):
        """Acks ride the dedicated wires iff the extension is on."""
        for hw in (False, True):
            engine = idle_engine(hw)
            engine.inject(0, 5, length=8)
            saw_ack_queue = False
            for _ in range(60):
                engine.step()
                if any(len(q) for q in engine.ack_out):
                    saw_ack_queue = True
            assert saw_ack_queue == hw
