"""Header-state consistency invariants during live routing.

The Figure 9 header carries per-dimension offsets updated on every
forward hop and backtrack; at any instant they must equal the true
shortest offsets from the header's current node to the destination —
misrouting, U-turns, and backtracking included.  Same for the misroute
count vs the path's unprofitable links.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.faults.injection import place_random_node_faults
from repro.faults.model import FaultState
from repro.network.topology import KAryNCube
from repro.sim.message import HeaderPhase

from tests.conftest import build_engine


def check_offsets(engine, messages):
    topo = engine.topology
    for msg in messages:
        if msg.is_terminal() or msg.teardown:
            continue
        if msg.header_phase is not HeaderPhase.PENDING:
            continue  # in flight: position not yet committed
        node = msg.current_node()
        assert tuple(msg.header.offsets) == topo.offsets(node, msg.dst), (
            f"msg {msg.msg_id} at node {node}: header offsets "
            f"{msg.header.offsets} vs true {topo.offsets(node, msg.dst)}"
        )


@given(
    seed=st.integers(min_value=0, max_value=5000),
    num_faults=st.integers(min_value=0, max_value=4),
    proto=st.sampled_from([("tp", {}), ("tp", {"k_unsafe": 3}),
                           ("mb", {})]),
)
@settings(max_examples=20, deadline=None)
def test_header_offsets_always_true_offsets(seed, num_faults, proto):
    protocol_name, params = proto
    rng = random.Random(seed)
    topo = KAryNCube(6, 2)
    faults = FaultState(topo)
    if num_faults:
        place_random_node_faults(faults, num_faults, rng)
    engine = build_engine(
        protocol_name, k=6, faults=faults, seed=seed,
        protocol_params=params, message_length=6,
    )
    healthy = [
        n for n in range(topo.num_nodes) if not faults.is_node_faulty(n)
    ]
    messages = []
    for _ in range(6):
        src = rng.choice(healthy)
        dst = rng.choice([n for n in healthy if n != src])
        messages.append(engine.inject(src, dst, length=6))
    for _ in range(2500):
        engine.step()
        check_offsets(engine, messages)
        if all(m.is_terminal() for m in messages):
            break


@given(seed=st.integers(min_value=0, max_value=5000))
@settings(max_examples=12, deadline=None)
def test_misroute_count_matches_path_unprofitable_links(seed):
    rng = random.Random(seed)
    topo = KAryNCube(6, 2)
    faults = FaultState(topo)
    place_random_node_faults(faults, 3, rng)
    engine = build_engine("mb", k=6, faults=faults, seed=seed,
                          message_length=4)
    healthy = [
        n for n in range(topo.num_nodes) if not faults.is_node_faulty(n)
    ]
    src = rng.choice(healthy)
    dst = rng.choice([n for n in healthy if n != src])
    msg = engine.inject(src, dst, length=4)
    for _ in range(2500):
        engine.step()
        # MB-m (no detour-mode resets): the header misroute field must
        # equal the number of misrouted links currently on the path.
        if not msg.is_terminal() and not msg.teardown and (
            msg.header_phase is HeaderPhase.PENDING
        ):
            assert msg.header.misroutes == sum(msg.link_misroute)
        if msg.is_terminal():
            break
    assert msg.is_terminal()
