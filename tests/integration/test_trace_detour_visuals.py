"""Tracer coverage of conservative scouting behaviour around faults."""

import random

from repro.faults.model import FaultState
from repro.network.topology import KAryNCube
from repro.sim.config import SimulationConfig
from repro.sim.engine import Engine
from repro.sim.simulator import make_protocol
from repro.sim.trace import MessageTracer


def traced_faulty_run(k_unsafe=3):
    topo = KAryNCube(8, 2)
    faults = FaultState(topo)
    for y in (7, 0, 1):
        faults.fail_node(topo.node_id((2, y)))
    cfg = SimulationConfig(
        k=8, n=2, protocol="tp",
        protocol_params={"k_unsafe": k_unsafe},
        offered_load=0.0, message_length=12,
        warmup_cycles=0, measure_cycles=0,
    )
    engine = Engine(
        cfg, make_protocol("tp", k_unsafe=k_unsafe), topology=topo,
        fault_state=faults, rng=random.Random(1),
    )
    msg = engine.inject(0, topo.node_id((3, 0)), length=12)
    tracer = MessageTracer(engine, msg)
    tracer.run(800)
    return tracer


class TestConservativeTrace:
    def test_acks_visible_after_sr_switch(self):
        tracer = traced_faulty_run(k_unsafe=3)
        assert tracer.message.status.name == "DELIVERED"
        # Conservative TP generates acknowledgment traffic after the
        # probe crosses unsafe channels.
        assert any(s.ack_positions for s in tracer.samples)

    def test_aggressive_trace_shows_resume_not_hop_acks(self):
        tracer = traced_faulty_run(k_unsafe=0)
        assert tracer.message.status.name == "DELIVERED"
        # K = 0 aggressive: ack-kind tokens only from detour resume /
        # path acknowledgment — far fewer than conservative.
        agg_tokens = sum(len(s.ack_positions) for s in tracer.samples)
        cons = traced_faulty_run(k_unsafe=3)
        cons_tokens = sum(len(s.ack_positions) for s in cons.samples)
        assert agg_tokens < cons_tokens

    def test_backtrack_marks_render(self):
        tracer = traced_faulty_run(k_unsafe=3)
        if tracer.message.backtrack_count:
            assert any(s.backtracking for s in tracer.samples)

    def test_sample_cycles_strictly_increasing(self):
        tracer = traced_faulty_run()
        cycles = [s.cycle for s in tracer.samples]
        assert cycles == sorted(set(cycles))

    def test_final_sample_terminal(self):
        tracer = traced_faulty_run()
        assert tracer.samples[-1].status == "DELIVERED"
        assert not tracer.samples[-1].data_at
