"""Delivery guarantees under static faults (Sections 3.0 / 4.0).

Within the theorem budget (fewer than 2n node faults, healthy and
connected source/destination) TP and MB-m must deliver every message.
Beyond the budget, messages must still terminate — delivered or
dropped — with all network resources recovered (no deadlock: Theorem
3).
"""

import random

import pytest

from repro.faults.injection import place_random_node_faults
from repro.faults.model import FaultState
from repro.network.topology import KAryNCube, PLUS

from tests.conftest import build_engine, drain_engine


def run_messages_with_faults(protocol, num_faults, seed, k=8,
                             num_messages=12, protocol_params=None):
    """Random faults + random messages; returns (engine, messages)."""
    rng = random.Random(seed)
    topo = KAryNCube(k, 2)
    faults = FaultState(topo)
    place_random_node_faults(faults, num_faults, rng, keep_connected=True)
    engine = build_engine(
        protocol, k=k, faults=faults, seed=seed,
        protocol_params=protocol_params,
    )
    healthy = [
        n for n in range(topo.num_nodes) if not faults.is_node_faulty(n)
    ]
    messages = []
    for _ in range(num_messages):
        src = rng.choice(healthy)
        dst = rng.choice([n for n in healthy if n != src])
        messages.append(engine.inject(src, dst, length=8))
    return engine, messages


class TestWithinBudget:
    """2n - 1 = 3 faults for the 2-D torus."""

    @pytest.mark.parametrize("protocol", ["tp", "mb"])
    @pytest.mark.parametrize("seed", range(5))
    def test_all_delivered_with_three_faults(self, protocol, seed):
        engine, messages = run_messages_with_faults(protocol, 3, seed)
        drain_engine(engine)
        for msg in messages:
            assert msg.status.name == "DELIVERED", (
                f"{protocol} seed={seed} lost {msg!r}"
            )

    @pytest.mark.parametrize("seed", range(3))
    def test_conservative_tp_delivers(self, seed):
        engine, messages = run_messages_with_faults(
            "tp", 3, seed, protocol_params={"k_unsafe": 3}
        )
        drain_engine(engine)
        assert all(m.status.name == "DELIVERED" for m in messages)


class TestBeyondBudget:
    @pytest.mark.parametrize("protocol", ["tp", "mb"])
    @pytest.mark.parametrize("seed", range(3))
    def test_terminates_and_recovers_with_many_faults(self, protocol, seed):
        engine, messages = run_messages_with_faults(
            protocol, 14, seed, num_messages=20
        )
        drain_engine(engine)
        assert all(m.is_terminal() for m in messages)
        assert engine.channels.all_free()

    def test_most_messages_still_delivered_when_connected(self):
        delivered = total = 0
        for seed in range(4):
            engine, messages = run_messages_with_faults("tp", 10, seed)
            drain_engine(engine)
            delivered += sum(
                1 for m in messages if m.status.name == "DELIVERED"
            )
            total += len(messages)
        assert delivered / total > 0.9


class TestDetourBehaviour:
    def test_blocked_path_produces_detour(self):
        """A wall of faults across the minimal quadrant forces a detour."""
        topo = KAryNCube(8, 2)
        faults = FaultState(topo)
        # Destination (3,0); wall at x=2 around y=0 blocks minimal
        # progress in x near the path.
        for y in (-1, 0, 1):
            faults.fail_node(topo.node_id((2, y % 8)))
        engine = build_engine("tp", k=8, faults=faults)
        dst = topo.node_id((3, 0))
        msg = engine.inject(0, dst, length=8)
        drain_engine(engine)
        assert msg.status.name == "DELIVERED"
        assert msg.detour_count >= 1 or msg.misroute_total >= 1

    def test_sr_bit_set_after_unsafe_crossing(self):
        topo = KAryNCube(8, 2)
        faults = FaultState(topo)
        faults.fail_node(topo.node_id((3, 1)))
        engine = build_engine(
            "tp", k=8, faults=faults, protocol_params={"k_unsafe": 3}
        )
        # Path straight through the fault's neighborhood: (0,0)->(4,0).
        msg = engine.inject(0, topo.node_id((4, 0)), length=8)
        drain_engine(engine)
        assert msg.status.name == "DELIVERED"

    def test_dead_end_alley_backtracks_and_delivers(self):
        from repro.experiments.theorem_table import build_alley

        topo = KAryNCube(8, 2)
        faults, src, end = build_alley(topo, depth=2)
        engine = build_engine("mb", k=8, faults=faults)
        # Destination on the far side, reachable only outside the alley.
        dst = topo.node_id((5, 4))
        msg = engine.inject(src, dst, length=8)
        drain_engine(engine)
        assert msg.status.name == "DELIVERED"

    def test_unreachable_destination_dropped_not_deadlocked(self):
        topo = KAryNCube(8, 2)
        faults = FaultState(topo)
        island = topo.node_id((4, 4))
        for nb in topo.neighbors(island):
            faults.fail_node(nb)
        engine = build_engine("tp", k=8, faults=faults)
        msg = engine.inject(0, island, length=8)
        drain_engine(engine, max_cycles=60_000)
        assert msg.status.name == "DROPPED"
        assert engine.channels.all_free()


class TestDPNotFaultTolerant:
    def test_dp_drops_on_faulty_escape_path(self):
        topo = KAryNCube(8, 2)
        faults = FaultState(topo)
        faults.fail_node(topo.node_id((1, 0)))
        faults.fail_node(topo.node_id((0, 1)))
        engine = build_engine("dp", k=8, faults=faults)
        msg = engine.inject(0, topo.node_id((2, 0)), length=8)
        drain_engine(engine)
        assert msg.status.name == "DROPPED"
