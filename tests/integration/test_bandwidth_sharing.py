"""Physical-channel bandwidth sharing between virtual channels.

Dally's virtual-channel flow control [6]: messages on different VCs of
one physical channel share its bandwidth flit-by-flit, demand-driven.
Two equal-length messages forced onto the same physical link must
interleave — each gets ~half the link — and control flits must steal
exactly the slots they occupy.
"""

import random

from repro.core.latency_model import t_wormhole
from repro.network.topology import KAryNCube, PLUS
from repro.sim.config import SimulationConfig
from repro.sim.engine import Engine
from repro.sim.simulator import make_protocol

from tests.conftest import drain_engine


def shared_link_engine(num_adaptive=2, length=16):
    """Two messages whose minimal paths share the link (1,0)->(2,0)."""
    cfg = SimulationConfig(
        k=8, n=2, protocol="tp", offered_load=0.0,
        message_length=length, num_adaptive_vcs=num_adaptive,
        warmup_cycles=0, measure_cycles=0,
    )
    engine = Engine(cfg, make_protocol("tp"), rng=random.Random(1))
    topo = engine.topology
    # Both start on row 0, two hops apart, same destination direction:
    # a: (1,0) -> (3,0), b: (0,0) -> (3,0); both must cross (1,0)->(2,0)
    # wait: a starts at (1,0); b reaches (1,0) one hop later.
    a = engine.inject(topo.node_id((1, 0)), topo.node_id((4, 0)),
                      length=length)
    b = engine.inject(topo.node_id((0, 0)), topo.node_id((4, 0)),
                      length=length)
    return engine, topo, a, b


class TestInterleaving:
    def test_both_delivered_with_shared_link(self):
        engine, topo, a, b = shared_link_engine()
        drain_engine(engine)
        assert a.status.name == "DELIVERED"
        assert b.status.name == "DELIVERED"

    def test_sharing_slows_both_past_idle_floor(self):
        engine, topo, a, b = shared_link_engine()
        drain_engine(engine)
        lat_a = a.delivered_cycle - a.created_cycle
        lat_b = b.delivered_cycle - b.created_cycle
        # Idle floors: a over 3 links, b over 4 links (16 flits).
        assert lat_a > t_wormhole(3, 16) or lat_b > t_wormhole(4, 16)

    def test_shared_channel_carries_both_messages(self):
        engine, topo, a, b = shared_link_engine()
        drain_engine(engine)
        ch = topo.channel_id(topo.node_id((1, 0)), 0, PLUS)
        owners_grants = [
            vc.grants for vc in engine.channels.vcs(ch) if vc.grants
        ]
        # Two distinct VCs of the channel moved flits (one per message).
        assert len(owners_grants) >= 2

    def test_total_crossings_conserved(self):
        engine, topo, a, b = shared_link_engine()
        drain_engine(engine)
        ch = topo.channel_id(topo.node_id((1, 0)), 0, PLUS)
        total = sum(vc.grants for vc in engine.channels.vcs(ch))
        # Both messages' 16 data flits crossed this link exactly once.
        assert total == 32

    def test_single_adaptive_vc_serializes(self):
        """With one adaptive VC and the escape channels, at most 3
        messages hold the channel; blocking (not loss) results."""
        engine, topo, a, b = shared_link_engine(num_adaptive=1)
        drain_engine(engine)
        assert a.status.name == "DELIVERED"
        assert b.status.name == "DELIVERED"

    def test_fairness_latency_gap_bounded(self):
        engine, topo, a, b = shared_link_engine()
        drain_engine(engine)
        lat_a = a.delivered_cycle - a.created_cycle
        lat_b = b.delivered_cycle - b.created_cycle
        # Round-robin sharing: neither message starves.
        assert max(lat_a, lat_b) < 2.5 * min(lat_a, lat_b)
