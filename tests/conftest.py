"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import random

import pytest

from repro.faults.model import FaultState
from repro.network.channel import ChannelBank
from repro.network.topology import KAryNCube
from repro.routing.base import RoutingContext
from repro.sim.config import SimulationConfig
from repro.sim.engine import Engine
from repro.sim.simulator import make_protocol

try:
    from hypothesis import settings

    # CI profile: no wall-clock deadline (simulation-heavy examples)
    # and derandomized example selection so CI runs are reproducible.
    settings.register_profile("ci", deadline=None, derandomize=True)
    settings.load_profile("ci")
except ImportError:  # pragma: no cover - hypothesis is a dev extra
    pass


@pytest.fixture
def torus4() -> KAryNCube:
    return KAryNCube(4, 2)


@pytest.fixture
def torus8() -> KAryNCube:
    return KAryNCube(8, 2)


@pytest.fixture
def torus3d() -> KAryNCube:
    return KAryNCube(4, 3)


def make_context(topology: KAryNCube, num_adaptive: int = 1,
                 faults: FaultState = None) -> RoutingContext:
    """A routing context over a fresh channel bank."""
    if faults is None:
        faults = FaultState(topology)
    bank = ChannelBank(topology.num_channels, num_adaptive)
    return RoutingContext(topology, faults, bank, cycle=1)


def build_engine(protocol_name: str, k: int = 8, n: int = 2, seed: int = 1,
                 faults: FaultState = None, message_length: int = 8,
                 protocol_params: dict = None,
                 **config_overrides) -> Engine:
    """An idle engine (no traffic) for hand-injected messages."""
    cfg = SimulationConfig(
        k=k, n=n,
        protocol=protocol_name,
        protocol_params=protocol_params or {},
        offered_load=0.0,
        message_length=message_length,
        warmup_cycles=0,
        measure_cycles=0,
    )
    if config_overrides:
        cfg = cfg.with_(**config_overrides)
    topology = KAryNCube(k, n)
    if faults is not None:
        assert faults.topology.num_nodes == topology.num_nodes
        topology = faults.topology
    return Engine(
        cfg,
        make_protocol(protocol_name, **(protocol_params or {})),
        topology=topology,
        fault_state=faults,
        rng=random.Random(seed),
    )


def run_to_completion(engine: Engine, msg, max_cycles: int = 5000):
    """Step the engine until one message terminates."""
    for _ in range(max_cycles):
        engine.step()
        if msg.is_terminal():
            return msg
    raise AssertionError(
        f"message did not terminate within {max_cycles} cycles: {msg!r}"
    )


def drain_engine(engine: Engine, max_cycles: int = 20_000) -> None:
    """Run until every message is terminal; assert full drain."""
    assert engine.drain(max_cycles), (
        f"network failed to drain: {len(engine.active)} active"
    )
