"""Unit tests for the Section 2.2 closed-form latency expressions."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.latency_model import (
    crossover_length_pcs_vs_scouting,
    scouting_effective_k,
    t_pcs,
    t_scouting,
    t_wormhole,
)


class TestFormulas:
    def test_wormhole(self):
        assert t_wormhole(8, 32) == 40

    def test_scouting_k3(self):
        # l + (2K - 1) + L
        assert t_scouting(8, 32, 3) == 8 + 5 + 32

    def test_scouting_k0_is_wormhole(self):
        assert t_scouting(8, 32, 0) == t_wormhole(8, 32)

    def test_pcs(self):
        assert t_pcs(8, 32) == 24 + 31

    def test_ordering_wr_sr_pcs(self):
        # For K < l the mechanisms order WR <= SR < PCS.
        for l in (3, 6, 10):
            for length in (1, 16, 64):
                assert (
                    t_wormhole(l, length)
                    <= t_scouting(l, length, 2)
                    < t_pcs(l, length)
                )

    def test_rejects_bad_args(self):
        with pytest.raises(ValueError):
            t_wormhole(0, 5)
        with pytest.raises(ValueError):
            t_wormhole(5, 0)
        with pytest.raises(ValueError):
            t_scouting(5, 5, -1)

    @given(st.integers(min_value=1, max_value=50),
           st.integers(min_value=1, max_value=200))
    @settings(max_examples=60, deadline=None)
    def test_pcs_penalty_is_length_independent(self, l, length):
        # PCS - WR = 2l - 1 regardless of message length.
        assert t_pcs(l, length) - t_wormhole(l, length) == 2 * l - 1

    @given(st.integers(min_value=1, max_value=50),
           st.integers(min_value=1, max_value=200),
           st.integers(min_value=1, max_value=10))
    @settings(max_examples=60, deadline=None)
    def test_scouting_penalty(self, l, length, k):
        assert t_scouting(l, length, k) - t_wormhole(l, length) == 2 * k - 1


class TestHelpers:
    def test_effective_k_clamps_to_path(self):
        assert scouting_effective_k(3, 5) == 3
        assert scouting_effective_k(5, 3) == 3

    def test_crossover_positive_when_k_small(self):
        assert crossover_length_pcs_vs_scouting(8, 3) > 0

    def test_crossover_zero_when_k_equals_l(self):
        assert crossover_length_pcs_vs_scouting(4, 4) == 0
