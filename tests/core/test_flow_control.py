"""Unit tests for the configurable flow-control model."""

import pytest

from repro.core.flow_control import (
    K_INFINITE,
    FlowControlConfig,
    FlowControlKind,
    gate_open,
    max_header_data_gap,
)


class TestConfig:
    def test_wormhole_has_no_k(self):
        fc = FlowControlConfig.wormhole()
        assert fc.kind is FlowControlKind.WORMHOLE
        assert fc.k_for(False) == 0
        assert fc.k_for(True) == 0

    def test_wormhole_rejects_k(self):
        with pytest.raises(ValueError):
            FlowControlConfig(kind=FlowControlKind.WORMHOLE, k_safe=1)

    def test_pcs_always_infinite(self):
        fc = FlowControlConfig.pcs()
        assert fc.k_for(False) == K_INFINITE
        assert fc.k_for(True) == K_INFINITE

    def test_scouting_switches_on_sr_bit(self):
        fc = FlowControlConfig.scouting(k_safe=0, k_unsafe=3)
        assert fc.k_for(False) == 0
        assert fc.k_for(True) == 3

    def test_negative_k_rejected(self):
        with pytest.raises(ValueError):
            FlowControlConfig.scouting(k_safe=-1)

    def test_sends_acks_when_safe(self):
        assert FlowControlConfig.scouting(k_safe=2).sends_acks_when_safe
        assert not FlowControlConfig.scouting(k_safe=0).sends_acks_when_safe
        assert not FlowControlConfig.pcs().sends_acks_when_safe

    def test_frozen(self):
        fc = FlowControlConfig.pcs()
        with pytest.raises(AttributeError):
            fc.k_safe = 5


class TestGate:
    def test_k_zero_always_open(self):
        assert gate_open(0, 0, path_established=False)

    def test_counter_below_k_closed(self):
        assert not gate_open(2, 3, path_established=False)

    def test_counter_at_k_open(self):
        assert gate_open(3, 3, path_established=False)

    def test_infinite_waits_for_path(self):
        assert not gate_open(100, K_INFINITE, path_established=False)
        assert gate_open(0, K_INFINITE, path_established=True)


class TestGap:
    def test_k_zero_gap(self):
        assert max_header_data_gap(0) == 0

    def test_gap_formula(self):
        # Section 2.2: the gap grows up to 2K - 1 while advancing.
        assert max_header_data_gap(1) == 1
        assert max_header_data_gap(3) == 5

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            max_header_data_gap(-1)
