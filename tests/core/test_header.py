"""Unit tests for the Figure 9 header flit format."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.header import (
    MAX_MISROUTES,
    Header,
    decode,
    encode,
    header_bits,
    offset_field_bits,
)


class TestHeaderState:
    def test_at_destination(self):
        assert Header(offsets=[0, 0]).at_destination()
        assert not Header(offsets=[1, 0]).at_destination()

    def test_distance(self):
        assert Header(offsets=[2, -3]).distance() == 5

    def test_apply_hop_reduces_offset(self):
        h = Header(offsets=[2, 0])
        h.apply_hop(0, +1, k=8)
        assert h.offsets == [1, 0]

    def test_apply_hop_negative_direction(self):
        h = Header(offsets=[-2, 0])
        h.apply_hop(0, -1, k=8)
        assert h.offsets == [-1, 0]

    def test_apply_hop_misroute_grows_offset(self):
        h = Header(offsets=[1, 0])
        h.apply_hop(0, -1, k=8)
        assert h.offsets == [2, 0]

    def test_apply_hop_wraps_canonically(self):
        # Offset 4 on k=8 (half-way); moving away wraps to the other side.
        h = Header(offsets=[4, 0])
        h.apply_hop(0, -1, k=8)
        # 4 - (-1) = 5 > 4 -> canonical form 5 - 8 = -3.
        assert h.offsets == [-3, 0]

    def test_apply_hop_half_way_stays_positive(self):
        h = Header(offsets=[-3, 0])
        h.apply_hop(0, -1, k=8)
        assert h.offsets == [-2, 0]

    def test_misroute_into_half_way_tie_canonicalizes_positive(self):
        # Moving *away* from the destination into the exact half-way
        # offset must land on the positive alias, matching
        # KAryNCube.offset (which prefers +k/2 on even-k ties).
        h = Header(offsets=[-2, 0])
        h.apply_hop(0, +1, k=6)
        assert h.offsets == [3, 0]

    def test_backtrack_then_forward_restores(self):
        h = Header(offsets=[2, -1])
        h.apply_hop(1, -1, k=8)
        h.apply_hop(1, +1, k=8)
        assert h.offsets == [2, -1]


class TestEncoding:
    def test_field_widths_16ary_2cube(self):
        # 1 header + 1 backtrack + 3 misroute + 1 detour + 1 SR
        # + 2 offsets of ceil(log2(17)) = 5 bits -> 17 bits total.
        assert offset_field_bits(16) == 5
        assert header_bits(16, 2) == 17

    def test_small_radix_field(self):
        assert offset_field_bits(4) == 3

    def test_roundtrip_simple(self):
        h = Header(offsets=[3, -2], backtrack=True, misroutes=5,
                   detour=True, sr=True)
        assert decode(encode(h, 16), 16, 2) == h

    def test_roundtrip_zero(self):
        h = Header(offsets=[0, 0])
        assert decode(encode(h, 16), 16, 2) == h

    def test_misroute_field_overflow(self):
        h = Header(offsets=[0, 0], misroutes=MAX_MISROUTES + 1)
        with pytest.raises(ValueError):
            encode(h, 16)

    def test_offset_out_of_range(self):
        h = Header(offsets=[9, 0])
        with pytest.raises(ValueError):
            encode(h, 16)

    def test_decode_requires_header_bit(self):
        h = Header(offsets=[1, 1])
        word = encode(h, 16)
        # Strip the leading header-identification bit.
        stripped = word - (1 << (header_bits(16, 2) - 1))
        with pytest.raises(ValueError):
            decode(stripped, 16, 2)

    @given(
        st.integers(min_value=3, max_value=16),
        st.integers(min_value=1, max_value=3),
        st.booleans(), st.booleans(), st.booleans(),
        st.integers(min_value=0, max_value=MAX_MISROUTES),
        st.data(),
    )
    @settings(max_examples=80, deadline=None)
    def test_roundtrip_property(self, k, n, backtrack, detour, sr,
                                misroutes, data):
        half = k // 2
        offsets = data.draw(
            st.lists(st.integers(min_value=-half, max_value=half),
                     min_size=n, max_size=n)
        )
        h = Header(offsets=list(offsets), backtrack=backtrack,
                   misroutes=misroutes, detour=detour, sr=sr)
        assert decode(encode(h, k), k, n) == h
