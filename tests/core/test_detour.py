"""Unit tests for detour-construction bookkeeping."""

from repro.core import detour
from repro.sim.message import Message, TPMode


def make_msg() -> Message:
    return Message(
        msg_id=1, src=0, dst=5, length=4, offsets=(2, 1),
        created_cycle=0, inline_header=False,
    )


class TestEnterExit:
    def test_enter_sets_mode_and_bit(self):
        msg = make_msg()
        detour.enter_detour(msg)
        assert msg.tp_mode is TPMode.DETOUR
        assert msg.header.detour
        assert msg.detour_count == 1

    def test_complete_resets(self):
        msg = make_msg()
        detour.enter_detour(msg)
        msg.header.misroutes = 3
        detour.complete_detour(msg)
        assert msg.tp_mode is TPMode.DP
        assert not msg.header.detour
        assert msg.header.misroutes == 0
        assert msg.detour_stack == []

    def test_reentry_counts(self):
        msg = make_msg()
        detour.enter_detour(msg)
        detour.complete_detour(msg)
        detour.enter_detour(msg)
        assert msg.detour_count == 2


class TestCorrectionAccounting:
    def test_misroute_pushes_stack(self):
        msg = make_msg()
        detour.enter_detour(msg)
        detour.record_forward_hop(msg, 0, +1, is_misroute=True)
        assert msg.detour_stack == [(0, +1)]
        assert msg.header.misroutes == 1
        assert msg.misroute_total == 1

    def test_profitable_opposite_pops(self):
        msg = make_msg()
        detour.enter_detour(msg)
        detour.record_forward_hop(msg, 0, +1, is_misroute=True)
        detour.record_forward_hop(msg, 0, -1, is_misroute=False)
        assert msg.detour_stack == []

    def test_unrelated_profitable_does_not_pop(self):
        msg = make_msg()
        detour.enter_detour(msg)
        detour.record_forward_hop(msg, 0, +1, is_misroute=True)
        detour.record_forward_hop(msg, 1, +1, is_misroute=False)
        assert msg.detour_stack == [(0, +1)]

    def test_pops_most_recent_matching(self):
        msg = make_msg()
        detour.enter_detour(msg)
        detour.record_forward_hop(msg, 0, +1, is_misroute=True)
        detour.record_forward_hop(msg, 1, +1, is_misroute=True)
        detour.record_forward_hop(msg, 0, +1, is_misroute=True)
        detour.record_forward_hop(msg, 0, -1, is_misroute=False)
        assert msg.detour_stack == [(0, +1), (1, +1)]

    def test_backtrack_over_misroute_refunds_budget(self):
        msg = make_msg()
        detour.enter_detour(msg)
        detour.record_forward_hop(msg, 0, +1, is_misroute=True)
        detour.record_backtrack(msg, 0, +1, was_misroute=True)
        assert msg.header.misroutes == 0
        assert msg.detour_stack == []

    def test_backtrack_over_profitable_no_refund(self):
        msg = make_msg()
        detour.enter_detour(msg)
        detour.record_forward_hop(msg, 0, +1, is_misroute=True)
        detour.record_backtrack(msg, 1, +1, was_misroute=False)
        assert msg.header.misroutes == 1
        assert msg.detour_stack == [(0, +1)]


class TestCompletion:
    def test_complete_when_stack_empty(self):
        msg = make_msg()
        detour.enter_detour(msg)
        assert detour.detour_complete(msg, at_destination=False)

    def test_not_complete_with_pending_misroute(self):
        msg = make_msg()
        detour.enter_detour(msg)
        detour.record_forward_hop(msg, 0, +1, is_misroute=True)
        assert not detour.detour_complete(msg, at_destination=False)

    def test_destination_always_completes(self):
        msg = make_msg()
        detour.enter_detour(msg)
        detour.record_forward_hop(msg, 0, +1, is_misroute=True)
        assert detour.detour_complete(msg, at_destination=True)

    def test_not_in_detour_mode(self):
        msg = make_msg()
        assert not detour.detour_complete(msg, at_destination=True)
