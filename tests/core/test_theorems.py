"""Unit tests for the Section 3.0 theorem bounds."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.theorems import (
    MAX_CONSECUTIVE_BACKTRACKS,
    SUFFICIENT_MISROUTES,
    TheoremSummary,
    cmu_counter_bits,
    fault_budget,
    max_backtrack_straight_alley,
    max_backtrack_turn_alley,
    min_faults_for_backtracks,
    sufficient_scouting_distance,
)


class TestTheorem1:
    def test_no_backtracks_below_threshold(self):
        # Fewer than 2n - 1 faults cannot force a backtrack (n = 2).
        assert max_backtrack_straight_alley(2, 2) == 0

    def test_first_backtrack_at_2n_minus_1(self):
        # n = 2: 3 faults force one backtrack.
        assert max_backtrack_straight_alley(3, 2) == 1

    def test_each_extra_backtrack_needs_2n_minus_2(self):
        # n = 2: f = 3 + 2(b-1)  ->  b = (f-1) div 2.
        assert max_backtrack_straight_alley(5, 2) == 2
        assert max_backtrack_straight_alley(7, 2) == 3

    def test_turn_alley_bound(self):
        # Case 2: b = f div (2n - 2).
        assert max_backtrack_turn_alley(6, 2) == 3
        assert max_backtrack_turn_alley(7, 2) == 3

    def test_higher_dimension_needs_more_faults(self):
        # n = 3: first backtrack needs 5 faults, each extra needs 4.
        assert max_backtrack_straight_alley(4, 3) == 0
        assert max_backtrack_straight_alley(5, 3) == 1
        assert max_backtrack_straight_alley(9, 3) == 2

    def test_inverse_relation(self):
        for n in (2, 3, 4):
            for b in (1, 2, 5):
                f = min_faults_for_backtracks(b, n)
                assert max_backtrack_straight_alley(f, n) == b

    def test_rejects_n1(self):
        with pytest.raises(ValueError):
            max_backtrack_straight_alley(3, 1)

    def test_rejects_negative_faults(self):
        with pytest.raises(ValueError):
            max_backtrack_straight_alley(-1, 2)

    @given(st.integers(min_value=0, max_value=100),
           st.integers(min_value=2, max_value=5))
    @settings(max_examples=60, deadline=None)
    def test_monotone_in_faults(self, f, n):
        assert (
            max_backtrack_straight_alley(f + 1, n)
            >= max_backtrack_straight_alley(f, n)
        )

    @given(st.integers(min_value=3, max_value=100),
           st.integers(min_value=2, max_value=5))
    @settings(max_examples=60, deadline=None)
    def test_turn_alley_at_least_straight(self, f, n):
        assert (
            max_backtrack_turn_alley(f, n)
            >= max_backtrack_straight_alley(f, n)
        )


class TestTheorem2:
    def test_constants(self):
        assert SUFFICIENT_MISROUTES == 6
        assert MAX_CONSECUTIVE_BACKTRACKS == 3

    def test_scouting_distance(self):
        assert sufficient_scouting_distance() == 3
        assert sufficient_scouting_distance(node_faults_only=True) == 2

    def test_fault_budget(self):
        assert fault_budget(2) == 3
        assert fault_budget(3) == 5

    def test_summary_guarantees(self):
        summary = TheoremSummary(n=2)
        assert summary.guarantees_delivery(3)
        assert not summary.guarantees_delivery(4)
        assert summary.misroute_budget == 6
        assert summary.scouting_distance == 3


class TestCounterWidth:
    def test_paper_claim_two_bits_for_k3(self):
        # Section 5.0: "For K = 3, a two bit counter is required".
        assert cmu_counter_bits(3) == 2

    def test_zero_k_needs_no_counter(self):
        assert cmu_counter_bits(0) == 0

    def test_widths(self):
        assert cmu_counter_bits(1) == 1
        assert cmu_counter_bits(4) == 3
        assert cmu_counter_bits(7) == 3

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            cmu_counter_bits(-1)
