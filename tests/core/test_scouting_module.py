"""Cross-checks between the flow-control model and theorem constants."""

from repro.core.flow_control import (
    K_INFINITE,
    FlowControlConfig,
    FlowControlKind,
    gate_open,
)
from repro.core.latency_model import t_pcs, t_scouting
from repro.core.theorems import (
    cmu_counter_bits,
    sufficient_scouting_distance,
)


class TestConservativeDefaults:
    def test_conservative_tp_uses_theorem_k(self):
        from repro.core.two_phase import TwoPhaseProtocol

        proto = TwoPhaseProtocol.conservative()
        assert proto.flow_control.k_unsafe == sufficient_scouting_distance()

    def test_theorem_k_fits_paper_counter(self):
        # The paper's 2-bit CMU counter holds exactly K = 3.
        assert cmu_counter_bits(sufficient_scouting_distance()) == 2

    def test_aggressive_tp_sends_no_acks(self):
        from repro.core.two_phase import TwoPhaseProtocol

        fc = TwoPhaseProtocol.aggressive().flow_control
        assert fc.k_for(True) == 0
        assert not fc.sends_acks_when_safe

    def test_misroute_budget_fits_header_field(self):
        from repro.core.header import MAX_MISROUTES
        from repro.core.theorems import SUFFICIENT_MISROUTES
        from repro.core.two_phase import TwoPhaseProtocol

        assert TwoPhaseProtocol().misroute_limit == SUFFICIENT_MISROUTES
        assert SUFFICIENT_MISROUTES <= MAX_MISROUTES


class TestSpectrumInterpolation:
    """SR(K) spans WR..PCS monotonically — the configurability claim."""

    def test_latency_monotone_in_k(self):
        l, L = 6, 32
        latencies = [t_scouting(l, L, k) for k in range(0, l + 1)]
        assert latencies == sorted(latencies)
        assert latencies[0] == l + L            # WR end
        assert latencies[-1] == t_pcs(l, L)     # PCS end

    def test_gate_spectrum(self):
        # K=0: open immediately; K=INF: only the path event opens it.
        assert gate_open(0, 0, False)
        assert not gate_open(10**6, K_INFINITE, False)
        assert gate_open(0, K_INFINITE, True)

    def test_config_k_for_covers_all_kinds(self):
        assert FlowControlConfig.wormhole().k_for(True) == 0
        assert FlowControlConfig.pcs().k_for(False) == K_INFINITE
        sr = FlowControlConfig.scouting(k_safe=1, k_unsafe=3)
        assert (sr.k_for(False), sr.k_for(True)) == (1, 3)
        assert sr.kind is FlowControlKind.SCOUTING
