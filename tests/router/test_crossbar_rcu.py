"""Unit tests for the crossbar and routing control unit structures."""

import pytest

from repro.core.header import Header
from repro.router.crossbar import Crossbar, CrossbarConflict
from repro.router.rcu import HistoryStore, RoutingControlUnit, UnsafeStore


class TestCrossbar:
    def test_connect_and_lookup(self):
        xbar = Crossbar(5, 3)
        xbar.connect((0, 1), (2, 0))
        assert xbar.output_for((0, 1)) == (2, 0)
        assert xbar.input_for((2, 0)) == (0, 1)

    def test_output_conflict_rejected(self):
        xbar = Crossbar(5, 3)
        xbar.connect((0, 0), (2, 0))
        with pytest.raises(CrossbarConflict):
            xbar.connect((1, 0), (2, 0))

    def test_input_conflict_rejected(self):
        xbar = Crossbar(5, 3)
        xbar.connect((0, 0), (2, 0))
        with pytest.raises(CrossbarConflict):
            xbar.connect((0, 0), (3, 0))

    def test_disconnect_frees_both_sides(self):
        xbar = Crossbar(5, 3)
        xbar.connect((0, 0), (2, 0))
        xbar.disconnect((0, 0))
        assert xbar.output_for((0, 0)) is None
        xbar.connect((1, 1), (2, 0))  # output reusable

    def test_permutation_valid(self):
        xbar = Crossbar(4, 2)
        xbar.connect((0, 0), (1, 0))
        xbar.connect((1, 0), (0, 0))
        assert xbar.is_permutation_valid()

    def test_range_check(self):
        xbar = Crossbar(2, 2)
        with pytest.raises(ValueError):
            xbar.connect((2, 0), (0, 0))

    def test_connections_listing(self):
        xbar = Crossbar(3, 2)
        xbar.connect((1, 0), (2, 1))
        assert xbar.connections == [((1, 0), (2, 1))]


class TestUnsafeStore:
    def test_mark_and_query(self):
        store = UnsafeStore(5)
        store.mark(3)
        assert store.is_unsafe(3)
        assert not store.is_unsafe(2)

    def test_unmark(self):
        store = UnsafeStore(5)
        store.mark(1)
        store.mark(1, unsafe=False)
        assert not store.is_unsafe(1)

    def test_one_bit_per_physical_channel(self):
        assert UnsafeStore(5).size_bits == 5


class TestHistoryStore:
    def test_record_and_lookup(self):
        store = HistoryStore(5, 3)
        store.record(0, 1, 4)
        store.record(0, 1, 2)
        assert store.searched(0, 1) == {4, 2}

    def test_isolated_per_input_vc(self):
        store = HistoryStore(5, 3)
        store.record(0, 1, 4)
        assert store.searched(0, 2) == set()

    def test_clear_on_release(self):
        store = HistoryStore(5, 3)
        store.record(2, 0, 1)
        store.clear(2, 0)
        assert store.searched(2, 0) == set()

    def test_range_check(self):
        store = HistoryStore(5, 3)
        with pytest.raises(ValueError):
            store.record(5, 0, 0)


class TestRCU:
    def test_header_width_matches_figure9(self):
        rcu = RoutingControlUnit(k=16, n=2, num_vcs=3)
        # 1+1+3+1+1 + 2*5 = 17 bits for a 16-ary 2-cube.
        assert rcu.header_width_bits == 17

    def test_port_numbering(self):
        rcu = RoutingControlUnit(16, 2, 3)
        assert rcu.num_ports == 5
        assert rcu.port_of(0, +1) == 0
        assert rcu.port_of(0, -1) == 1
        assert rcu.port_of(1, +1) == 2
        assert rcu.pe_port == 4

    def test_port_validation(self):
        rcu = RoutingControlUnit(16, 2, 3)
        with pytest.raises(ValueError):
            rcu.port_of(2, +1)
        with pytest.raises(ValueError):
            rcu.port_of(0, 0)

    def test_update_header_applies_hop_and_reencodes(self):
        rcu = RoutingControlUnit(16, 2, 3)
        header = Header(offsets=[2, 0])
        word = rcu.update_header(header, 0, +1)
        decoded = rcu.decode_header(word)
        assert decoded.offsets == [1, 0]

    def test_update_header_misroute_counts(self):
        rcu = RoutingControlUnit(16, 2, 3)
        header = Header(offsets=[2, 0])
        word = rcu.update_header(header, 1, +1, misroute=True)
        assert rcu.decode_header(word).misroutes == 1
