"""Unit tests for the router flit buffers (DIBU/DOBU/CIBU/COBU)."""

import pytest

from repro.router.buffers import (
    BufferBlocked,
    BufferOverflow,
    BufferUnderflow,
    ChannelBuffers,
    FlitFifo,
)


class TestFlitFifo:
    def test_fifo_order(self):
        buf = FlitFifo(4)
        for i in range(4):
            buf.push(i)
        assert [buf.pop() for _ in range(4)] == [0, 1, 2, 3]

    def test_capacity_enforced(self):
        buf = FlitFifo(2)
        buf.push("a")
        buf.push("b")
        with pytest.raises(BufferOverflow):
            buf.push("c")

    def test_underflow(self):
        with pytest.raises(BufferUnderflow):
            FlitFifo(1).pop()

    def test_output_enable_blocks_pop(self):
        buf = FlitFifo(2)
        buf.push("x")
        buf.output_enabled = False
        with pytest.raises(BufferBlocked):
            buf.pop()
        buf.output_enabled = True
        assert buf.pop() == "x"

    def test_free_slots(self):
        buf = FlitFifo(3)
        assert buf.free_slots == 3
        buf.push(1)
        assert buf.free_slots == 2

    def test_full_empty_flags(self):
        buf = FlitFifo(1)
        assert buf.empty and not buf.full
        buf.push(1)
        assert buf.full and not buf.empty

    def test_peek(self):
        buf = FlitFifo(2)
        assert buf.peek() is None
        buf.push(7)
        assert buf.peek() == 7 and len(buf) == 1

    def test_clear_for_kill_recovery(self):
        buf = FlitFifo(4)
        for i in range(3):
            buf.push(i)
        buf.clear()
        assert buf.empty

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            FlitFifo(0)


class TestChannelBuffers:
    def test_per_vc_data_buffers(self):
        chans = ChannelBuffers(num_vcs=3, data_depth=2, control_depth=4)
        assert len(chans.data) == 3
        assert all(b.capacity == 2 for b in chans.data)
        assert chans.control.capacity == 4

    def test_occupancy(self):
        chans = ChannelBuffers(num_vcs=2, data_depth=2, control_depth=2)
        chans.data[0].push("f")
        chans.data[1].push("g")
        assert chans.data_occupancy() == 2

    def test_side_naming(self):
        inp = ChannelBuffers(1, 1, 1, side="in")
        out = ChannelBuffers(1, 1, 1, side="out")
        assert inp.data[0].name.startswith("DIBU")
        assert out.data[0].name.startswith("DOBU")
        assert inp.control.name == "CIBU"
        assert out.control.name == "COBU"
