"""Block-level tests of the assembled router datapath (Figure 8)."""

from repro.core.header import Header, encode
from repro.router.lcu import CONTROL_SLOT, LinkControlUnit
from repro.router.model import RouterModel


def straight_ahead(header, in_port, in_vc):
    """Decision stub: forward along dimension 0 positive on VC 2."""
    return (0, 2, 0, +1, 3, False)


class TestHeaderDatapath:
    def test_process_header_maps_and_updates(self):
        router = RouterModel(k=16, n=2)
        word = encode(Header(offsets=[3, 0]), 16)
        routed = router.process_header(
            word, in_port=1, in_vc=2, circuit=7, decide=straight_ahead
        )
        assert routed is not None
        decoded = router.rcu.decode_header(routed.word)
        assert decoded.offsets == [2, 0]
        assert router.crossbar.output_for((1, 2)) == (0, 2)
        assert not router.outputs[0].control.empty

    def test_blocking_decision_returns_none(self):
        router = RouterModel(k=16, n=2)
        word = encode(Header(offsets=[1, 0]), 16)
        assert router.process_header(
            word, 0, 0, circuit=1, decide=lambda *a: None
        ) is None

    def test_counter_gates_data(self):
        router = RouterModel(k=16, n=2)
        word = encode(Header(offsets=[3, 0]), 16)
        router.process_header(word, 1, 2, circuit=7, decide=straight_ahead)
        assert not router.data_gate_open(7)  # K=3, no acks yet
        for _ in range(3):
            router.cmu.ack_arrived(7)
        assert router.data_gate_open(7)

    def test_backtrack_records_history_and_unmaps(self):
        router = RouterModel(k=16, n=2)
        word = encode(Header(offsets=[3, 0]), 16)
        routed = router.process_header(
            word, 1, 2, circuit=7, decide=straight_ahead
        )
        back = router.backtrack_header(
            routed.word, 1, 2, circuit=7, out_port=routed.out_port
        )
        assert router.rcu.decode_header(back).backtrack
        assert router.rcu.history_store.searched(1, 2) == {0}
        assert router.crossbar.output_for((1, 2)) is None


class TestDataDatapath:
    def test_transfer_moves_between_buffers(self):
        router = RouterModel(k=16, n=2)
        router.crossbar.connect((1, 0), (2, 1))
        router.inputs[1].data[0].push("flit")
        assert router.transfer_data_flit(1, 0)
        assert router.outputs[2].data[1].pop() == "flit"

    def test_transfer_requires_mapping(self):
        router = RouterModel(k=16, n=2)
        router.inputs[1].data[0].push("flit")
        assert not router.transfer_data_flit(1, 0)

    def test_transfer_blocked_by_dibu_enable(self):
        router = RouterModel(k=16, n=2)
        router.crossbar.connect((1, 0), (2, 1))
        router.inputs[1].data[0].push("flit")
        router.inputs[1].data[0].output_enabled = False
        assert not router.transfer_data_flit(1, 0)

    def test_transfer_blocked_by_full_output(self):
        router = RouterModel(k=16, n=2, data_depth=1)
        router.crossbar.connect((1, 0), (2, 1))
        router.inputs[1].data[0].push("a")
        router.outputs[2].data[1].push("b")
        assert not router.transfer_data_flit(1, 0)


class TestOutputAllocation:
    def test_control_has_priority(self):
        router = RouterModel(k=16, n=2)
        router.outputs[0].control.push("hdr")
        router.outputs[0].data[0].push("d")
        assert router.allocate_output(0) == CONTROL_SLOT

    def test_data_round_robin(self):
        router = RouterModel(k=16, n=2)
        router.outputs[0].data[0].push("a")
        router.outputs[0].data[1].push("b")
        first = router.allocate_output(0)
        router.outputs[0].data[first].pop()
        second = router.allocate_output(0)
        assert {first, second} == {0, 1}

    def test_idle_returns_none(self):
        router = RouterModel(k=16, n=2)
        assert router.allocate_output(3) is None


class TestLCUDirect:
    def test_credit_gating(self):
        lcu = LinkControlUnit(2)
        got = lcu.allocate(
            control_pending=False,
            data_requests=[True, True],
            credits=[0, 1],
        )
        assert got == 1

    def test_counts(self):
        lcu = LinkControlUnit(1)
        lcu.allocate(True, [False], [0])
        lcu.allocate(False, [True], [1])
        assert lcu.control_sent == 1 and lcu.data_sent == 1


class TestHardwareSummary:
    def test_paper_scale_costs(self):
        summary = RouterModel(k=16, n=2).hardware_summary()
        assert summary["header_bits"] == 17
        assert summary["counter_bits_per_vc"] == 2
        assert summary["ports"] == 5
        assert summary["unsafe_store_bits"] == 5
