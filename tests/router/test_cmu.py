"""Unit tests for the counter management unit (Section 5.0)."""

import pytest

from repro.router.cmu import CounterManagementUnit, VCCounter


class TestVCCounter:
    def test_two_bit_counter_for_k3(self):
        c = VCCounter(bits=2)
        c.program(circuit=1, k=3)
        assert c.max_value == 3

    def test_k_must_fit_width(self):
        c = VCCounter(bits=2)
        with pytest.raises(ValueError):
            c.program(circuit=1, k=4)

    def test_enable_at_k(self):
        c = VCCounter(bits=2)
        c.program(circuit=1, k=3)
        for _ in range(2):
            c.positive_ack()
        assert not c.data_enabled
        c.positive_ack()
        assert c.data_enabled

    def test_negative_ack_decrements(self):
        c = VCCounter(bits=2)
        c.program(circuit=1, k=2)
        c.positive_ack()
        c.positive_ack()
        assert c.data_enabled
        c.negative_ack()
        assert not c.data_enabled

    def test_saturates_at_max(self):
        c = VCCounter(bits=2)
        c.program(circuit=1, k=3)
        for _ in range(10):
            c.positive_ack()
        assert c.value == 3

    def test_floors_at_zero(self):
        c = VCCounter(bits=2)
        c.program(circuit=1, k=1)
        c.negative_ack()
        assert c.value == 0

    def test_k_zero_enabled_immediately(self):
        c = VCCounter(bits=2)
        c.program(circuit=1, k=0)
        assert c.data_enabled

    def test_release_clears(self):
        c = VCCounter(bits=2)
        c.program(circuit=1, k=3)
        c.positive_ack()
        c.release()
        assert c.circuit is None and c.value == 0

    def test_width_validation(self):
        with pytest.raises(ValueError):
            VCCounter(bits=0)


class TestCMU:
    def test_ack_routed_by_circuit(self):
        cmu = CounterManagementUnit(num_ports=5, num_vcs=3, max_k=3)
        cmu.program(port=1, vc=2, circuit=77, k=2)
        assert cmu.ack_arrived(77)
        assert cmu.ack_arrived(77)
        assert cmu.data_enabled(77)

    def test_unknown_circuit_ack_dropped(self):
        cmu = CounterManagementUnit(5, 3)
        assert not cmu.ack_arrived(99)
        assert not cmu.data_enabled(99)

    def test_negative_ack(self):
        cmu = CounterManagementUnit(5, 3)
        cmu.program(0, 0, circuit=5, k=1)
        cmu.ack_arrived(5)
        cmu.ack_arrived(5, positive=False)
        assert not cmu.data_enabled(5)

    def test_release_unmaps(self):
        cmu = CounterManagementUnit(5, 3)
        cmu.program(0, 0, circuit=5, k=0)
        cmu.release(5)
        assert not cmu.ack_arrived(5)

    def test_counter_width_follows_max_k(self):
        cmu = CounterManagementUnit(5, 3, max_k=3)
        assert cmu.counter(0, 0).bits == 2
        cmu7 = CounterManagementUnit(5, 3, max_k=7)
        assert cmu7.counter(0, 0).bits == 3
