"""Unit tests for fault placement and dynamic schedules."""

import random

import pytest

from repro.faults.injection import (
    DynamicFaultSchedule,
    FaultEvent,
    place_random_node_faults,
    random_dynamic_schedule,
)
from repro.faults.model import FaultState
from repro.network.topology import KAryNCube


class TestStaticPlacement:
    def test_places_exact_count(self, torus8):
        faults = FaultState(torus8)
        failed = place_random_node_faults(faults, 5, random.Random(1))
        assert len(failed) == 5
        assert len(faults.faulty_nodes) == 5

    def test_keeps_connected(self, torus8):
        for seed in range(5):
            faults = FaultState(torus8)
            place_random_node_faults(
                faults, 12, random.Random(seed), keep_connected=True
            )
            assert faults.healthy_nodes_connected()

    def test_protected_nodes_never_fail(self, torus8):
        faults = FaultState(torus8)
        protected = [0, 1, 2, 3]
        place_random_node_faults(
            faults, 10, random.Random(2), protected=protected
        )
        assert not set(protected) & faults.faulty_nodes

    def test_rejects_negative(self, torus8):
        with pytest.raises(ValueError):
            place_random_node_faults(FaultState(torus8), -1, random.Random(1))

    def test_rejects_too_many(self, torus4):
        with pytest.raises(ValueError):
            place_random_node_faults(
                FaultState(torus4), 16, random.Random(1)
            )

    def test_deterministic_for_seed(self, torus8):
        a = FaultState(torus8)
        b = FaultState(torus8)
        fa = place_random_node_faults(a, 6, random.Random(42))
        fb = place_random_node_faults(b, 6, random.Random(42))
        assert fa == fb


class TestDynamicSchedule:
    def test_event_count_and_order(self, torus8):
        sched = random_dynamic_schedule(
            torus8, 8, horizon=1000, rng=random.Random(1)
        )
        cycles = [e.cycle for e in sched.events]
        assert len(cycles) == 8
        assert cycles == sorted(cycles)

    def test_due_consumes_in_order(self, torus8):
        sched = DynamicFaultSchedule(
            events=[
                FaultEvent(cycle=5, kind="link", target=0),
                FaultEvent(cycle=10, kind="link", target=2),
            ]
        )
        assert sched.due(4) == []
        assert len(sched.due(5)) == 1
        assert sched.remaining == 1
        assert len(sched.due(100)) == 1
        assert sched.remaining == 0

    def test_link_targets_distinct_links(self, torus8):
        sched = random_dynamic_schedule(
            torus8, 10, horizon=500, rng=random.Random(3)
        )
        links = set()
        for e in sched.events:
            rev = torus8.reverse_channel_id(e.target)
            links.add((min(e.target, rev), max(e.target, rev)))
        assert len(links) == 10

    def test_node_kind(self, torus8):
        sched = random_dynamic_schedule(
            torus8, 4, horizon=500, rng=random.Random(3), kind="node"
        )
        assert all(e.kind == "node" for e in sched.events)

    def test_apply_event(self, torus8):
        faults = FaultState(torus8)
        FaultEvent(cycle=1, kind="node", target=5).apply(faults)
        assert faults.is_node_faulty(5)
        FaultEvent(cycle=1, kind="link", target=0).apply(faults)
        assert faults.channel_faulty[0]

    def test_bad_kind_rejected(self, torus8):
        with pytest.raises(ValueError):
            random_dynamic_schedule(
                torus8, 1, horizon=10, rng=random.Random(1), kind="gamma-ray"
            )
        faults = FaultState(torus8)
        with pytest.raises(ValueError):
            FaultEvent(cycle=0, kind="gamma-ray", target=0).apply(faults)

    def test_window_respected(self, torus8):
        sched = random_dynamic_schedule(
            torus8, 6, horizon=300, rng=random.Random(5), start_cycle=100
        )
        assert all(100 <= e.cycle < 300 for e in sched.events)

    def test_bad_window(self, torus8):
        with pytest.raises(ValueError):
            random_dynamic_schedule(
                torus8, 1, horizon=10, rng=random.Random(1), start_cycle=20
            )


class TestPlacementRollback:
    """Snapshot/restore rollback must equal a fresh rebuild exactly."""

    @staticmethod
    def _state_tuple(faults: FaultState):
        return (
            set(faults.faulty_nodes),
            set(faults.faulty_links),
            list(faults.channel_faulty),
            list(faults.channel_unsafe),
        )

    def test_rejected_fail_restores_exact_state(self, torus8):
        from repro.faults.injection import (
            _restore_after_rejected_fail,
            _snapshot_before_fail,
        )

        faults = FaultState(torus8)
        kept = [0, 1, 9]
        faults.fail_nodes(kept)
        before = self._state_tuple(faults)
        prior_last = list(faults.last_failed_channels)

        candidate = 10  # adjacent to kept faults: shared links exist
        snapshot = _snapshot_before_fail(faults, candidate)
        faults.fail_node(candidate)
        _restore_after_rejected_fail(faults, candidate, snapshot)

        assert self._state_tuple(faults) == before
        assert faults.last_failed_channels == prior_last

        fresh = FaultState(torus8)
        fresh.fail_nodes(kept)
        assert self._state_tuple(faults) == self._state_tuple(fresh)

    def test_dense_connected_placement_matches_fresh_rebuild(self, torus8):
        # Heavy placement forces many connectivity rejections; the
        # incremental rollbacks must leave exactly the state a fresh
        # build from the accepted set produces.
        faults = FaultState(torus8)
        failed = place_random_node_faults(
            faults, 20, random.Random(11), keep_connected=True
        )
        assert len(failed) == 20
        assert faults.healthy_nodes_connected()
        fresh = FaultState(torus8)
        fresh.fail_nodes(failed)
        assert self._state_tuple(faults) == self._state_tuple(fresh)
