"""Unit tests for fault placement and dynamic schedules."""

import random

import pytest

from repro.faults.injection import (
    DynamicFaultSchedule,
    FaultEvent,
    place_random_node_faults,
    random_dynamic_schedule,
)
from repro.faults.model import FaultState
from repro.network.topology import KAryNCube


class TestStaticPlacement:
    def test_places_exact_count(self, torus8):
        faults = FaultState(torus8)
        failed = place_random_node_faults(faults, 5, random.Random(1))
        assert len(failed) == 5
        assert len(faults.faulty_nodes) == 5

    def test_keeps_connected(self, torus8):
        for seed in range(5):
            faults = FaultState(torus8)
            place_random_node_faults(
                faults, 12, random.Random(seed), keep_connected=True
            )
            assert faults.healthy_nodes_connected()

    def test_protected_nodes_never_fail(self, torus8):
        faults = FaultState(torus8)
        protected = [0, 1, 2, 3]
        place_random_node_faults(
            faults, 10, random.Random(2), protected=protected
        )
        assert not set(protected) & faults.faulty_nodes

    def test_rejects_negative(self, torus8):
        with pytest.raises(ValueError):
            place_random_node_faults(FaultState(torus8), -1, random.Random(1))

    def test_rejects_too_many(self, torus4):
        with pytest.raises(ValueError):
            place_random_node_faults(
                FaultState(torus4), 16, random.Random(1)
            )

    def test_deterministic_for_seed(self, torus8):
        a = FaultState(torus8)
        b = FaultState(torus8)
        fa = place_random_node_faults(a, 6, random.Random(42))
        fb = place_random_node_faults(b, 6, random.Random(42))
        assert fa == fb


class TestDynamicSchedule:
    def test_event_count_and_order(self, torus8):
        sched = random_dynamic_schedule(
            torus8, 8, horizon=1000, rng=random.Random(1)
        )
        cycles = [e.cycle for e in sched.events]
        assert len(cycles) == 8
        assert cycles == sorted(cycles)

    def test_due_consumes_in_order(self, torus8):
        sched = DynamicFaultSchedule(
            events=[
                FaultEvent(cycle=5, kind="link", target=0),
                FaultEvent(cycle=10, kind="link", target=2),
            ]
        )
        assert sched.due(4) == []
        assert len(sched.due(5)) == 1
        assert sched.remaining == 1
        assert len(sched.due(100)) == 1
        assert sched.remaining == 0

    def test_link_targets_distinct_links(self, torus8):
        sched = random_dynamic_schedule(
            torus8, 10, horizon=500, rng=random.Random(3)
        )
        links = set()
        for e in sched.events:
            rev = torus8.reverse_channel_id(e.target)
            links.add((min(e.target, rev), max(e.target, rev)))
        assert len(links) == 10

    def test_node_kind(self, torus8):
        sched = random_dynamic_schedule(
            torus8, 4, horizon=500, rng=random.Random(3), kind="node"
        )
        assert all(e.kind == "node" for e in sched.events)

    def test_apply_event(self, torus8):
        faults = FaultState(torus8)
        FaultEvent(cycle=1, kind="node", target=5).apply(faults)
        assert faults.is_node_faulty(5)
        FaultEvent(cycle=1, kind="link", target=0).apply(faults)
        assert faults.channel_faulty[0]

    def test_bad_kind_rejected(self, torus8):
        with pytest.raises(ValueError):
            random_dynamic_schedule(
                torus8, 1, horizon=10, rng=random.Random(1), kind="gamma-ray"
            )
        faults = FaultState(torus8)
        with pytest.raises(ValueError):
            FaultEvent(cycle=0, kind="gamma-ray", target=0).apply(faults)

    def test_window_respected(self, torus8):
        sched = random_dynamic_schedule(
            torus8, 6, horizon=300, rng=random.Random(5), start_cycle=100
        )
        assert all(100 <= e.cycle < 300 for e in sched.events)

    def test_bad_window(self, torus8):
        with pytest.raises(ValueError):
            random_dynamic_schedule(
                torus8, 1, horizon=10, rng=random.Random(1), start_cycle=20
            )
