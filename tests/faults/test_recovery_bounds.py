"""Bounds of the source-side recovery decision (_kill_reached_source).

The kill-flit teardown always ends at the source, which then chooses:
retransmit (fault with data committed, tail-ack mode), source-retry
(no data committed, or aborted path construction), or drop.  These
tests pin the retry budgets, the lineage metadata carried by clones,
and the dead-endpoint short-circuits.
"""

from repro.network.topology import KAryNCube
from repro.sim.config import RecoveryConfig
from repro.sim.message import MessageStatus

from tests.conftest import build_engine, drain_engine, run_to_completion
from tests.faults.test_recovery import engine_with_fault_at


def live_clone_of(engine, original):
    """The requeued retry clone of ``original`` (steps until launched)."""
    for _ in range(10):
        for msg in engine.active.values():
            if (
                msg.original_id == original.original_id
                and msg.msg_id != original.msg_id
                and not msg.is_terminal()
            ):
                return msg
        engine.step()
    return None


def establish_path(engine, msg, max_cycles: int = 60):
    for _ in range(max_cycles):
        engine.step()
        if msg.path:
            return
    raise AssertionError("message never reserved its first link")


class TestRetransmitBounds:
    def test_clone_preserves_lineage_metadata(self):
        recovery = RecoveryConfig(tail_ack=True, retransmit=True)
        engine, topo = engine_with_fault_at(
            8, 0, hop=2, cycle=10, recovery=recovery
        )
        msg = engine.inject(0, topo.node_id((4, 0)), length=16)
        run_to_completion(engine, msg)
        assert msg.status is MessageStatus.KILLED
        clone = live_clone_of(engine, msg)
        assert clone is not None
        assert clone.created_cycle == msg.created_cycle
        assert clone.original_id == msg.msg_id
        assert clone.retransmits == msg.retransmits + 1
        drain_engine(engine)

    def test_max_retransmits_exhausted_kills_for_good(self):
        recovery = RecoveryConfig(
            tail_ack=True, retransmit=True, max_retransmits=2
        )
        engine, topo = engine_with_fault_at(
            8, 0, hop=2, cycle=10, recovery=recovery
        )
        msg = engine.inject(0, topo.node_id((4, 0)), length=16)
        msg.retransmits = recovery.max_retransmits  # budget already spent
        run_to_completion(engine, msg)
        drain_engine(engine)
        assert msg.status is MessageStatus.KILLED
        record = next(r for r in engine.records if r.msg_id == msg.msg_id)
        assert not record.superseded  # terminal, not replaced by a clone

    def test_dead_destination_is_not_retried(self):
        topo = KAryNCube(8, 2)
        engine, _ = engine_with_fault_at(
            8, 0, hop=2, cycle=10,
            recovery=RecoveryConfig(tail_ack=True, retransmit=True),
        )
        dst = topo.node_id((4, 0))
        msg = engine.inject(0, dst, length=16)
        engine.faults.fail_node(dst)  # destination dies mid-flight
        run_to_completion(engine, msg)
        drain_engine(engine)
        assert msg.status is MessageStatus.KILLED
        record = next(r for r in engine.records if r.msg_id == msg.msg_id)
        assert not record.superseded
        assert not engine.queues[0]  # no clone was requeued


class TestSourceRetryBounds:
    def test_aborted_setup_retries_until_budget_then_drops(self):
        max_retries = 2
        engine = build_engine(
            "tp", k=8, n=2,
            recovery=RecoveryConfig(max_source_retries=max_retries),
        )
        topo = engine.topology
        msg = engine.inject(0, topo.node_id((4, 0)))
        lineage = [msg]
        current = msg
        while True:
            establish_path(engine, current)
            engine._teardown(current, "abort", current.header_router)
            run_to_completion(engine, current)
            clone = live_clone_of(engine, current)
            if clone is None:
                break
            lineage.append(clone)
            current = clone
        # Original + exactly max_source_retries clones.
        assert len(lineage) == 1 + max_retries
        assert current.status is MessageStatus.DROPPED
        assert current.drop_reason == "undeliverable"
        for earlier in lineage[:-1]:
            record = next(
                r for r in engine.records if r.msg_id == earlier.msg_id
            )
            assert record.superseded
        assert all(
            m.created_cycle == msg.created_cycle for m in lineage
        )
        drain_engine(engine)

    def test_dead_source_drops_instead_of_retrying(self):
        engine = build_engine("tp", k=8, n=2)
        topo = engine.topology
        msg = engine.inject(0, topo.node_id((4, 0)))
        establish_path(engine, msg)
        engine.faults.fail_node(0)  # source dies
        engine._teardown(msg, "abort", msg.header_router)
        run_to_completion(engine, msg)
        assert msg.status is MessageStatus.DROPPED
        assert live_clone_of(engine, msg) is None
