"""Unit tests for the fault model (Section 2.4, Figure 3)."""

from repro.faults.model import FaultState
from repro.network.topology import MINUS, PLUS, KAryNCube


class TestNodeFaults:
    def test_fail_node_marks_all_incident_channels(self, torus8):
        faults = FaultState(torus8)
        faults.fail_node(9)
        for dim, direction in torus8.ports(9):
            out_ch = torus8.channel_id(9, dim, direction)
            assert faults.channel_faulty[out_ch]
            assert faults.channel_faulty[torus8.reverse_channel_id(out_ch)]

    def test_fail_node_idempotent(self, torus8):
        faults = FaultState(torus8)
        faults.fail_node(9)
        links_before = set(faults.faulty_links)
        faults.fail_node(9)
        assert faults.faulty_links == links_before

    def test_is_node_faulty(self, torus8):
        faults = FaultState(torus8)
        faults.fail_node(3)
        assert faults.is_node_faulty(3)
        assert not faults.is_node_faulty(4)

    def test_num_faults_counts_nodes(self, torus8):
        faults = FaultState(torus8)
        faults.fail_nodes([3, 9, 12])
        assert faults.num_faults == 3

    def test_last_failed_channels_reported(self, torus8):
        faults = FaultState(torus8)
        faults.fail_node(0)
        assert len(faults.last_failed_channels) == 4 * torus8.n


class TestLinkFaults:
    def test_fail_link_both_directions(self, torus8):
        faults = FaultState(torus8)
        ch = torus8.channel_id(0, 0, PLUS)
        faults.fail_link(ch)
        assert faults.channel_faulty[ch]
        assert faults.channel_faulty[torus8.reverse_channel_id(ch)]

    def test_fail_link_does_not_fail_nodes(self, torus8):
        faults = FaultState(torus8)
        faults.fail_link(torus8.channel_id(0, 0, PLUS))
        assert not faults.faulty_nodes

    def test_independent_link_counts_as_one_fault(self, torus8):
        faults = FaultState(torus8)
        faults.fail_link(torus8.channel_id(0, 0, PLUS))
        assert faults.num_faults == 1

    def test_node_link_not_double_counted(self, torus8):
        faults = FaultState(torus8)
        faults.fail_node(0)
        faults.fail_link(torus8.channel_id(0, 0, PLUS))  # already failed
        assert faults.num_faults == 1


class TestUnsafeMarking:
    def test_channels_toward_fault_neighbors_are_unsafe(self, torus8):
        """Figure 3: channels incident on PEs adjacent to failures."""
        faults = FaultState(torus8)
        faults.fail_node(torus8.node_id((2, 2)))
        neighbor = torus8.node_id((1, 2))  # adjacent to the fault
        outside = torus8.node_id((0, 2))
        ch = torus8.channel_id(outside, 0, PLUS)  # outside -> neighbor
        assert faults.channel_unsafe[ch]

    def test_faulty_channels_not_marked_unsafe(self, torus8):
        faults = FaultState(torus8)
        faults.fail_node(9)
        for ch in range(torus8.num_channels):
            if faults.channel_faulty[ch]:
                assert not faults.channel_unsafe[ch]

    def test_channels_far_from_faults_safe(self, torus8):
        faults = FaultState(torus8)
        faults.fail_node(torus8.node_id((4, 4)))
        far = torus8.node_id((0, 0))
        ch = torus8.channel_id(far, 0, PLUS)
        assert not faults.channel_unsafe[ch]

    def test_no_faults_no_unsafe(self, torus8):
        faults = FaultState(torus8)
        assert not any(faults.channel_unsafe)

    def test_unsafe_recomputed_on_new_fault(self, torus8):
        faults = FaultState(torus8)
        target = torus8.node_id((3, 0))
        ch = torus8.channel_id(torus8.node_id((2, 0)), 0, PLUS)
        assert not faults.channel_unsafe[ch]
        faults.fail_node(torus8.node_id((4, 0)))
        assert faults.channel_unsafe[ch]

    def test_link_fault_marks_neighbors_unsafe(self, torus8):
        faults = FaultState(torus8)
        a = torus8.node_id((2, 0))
        faults.fail_link(torus8.channel_id(a, 0, PLUS))
        into_a = torus8.channel_id(torus8.node_id((1, 0)), 0, PLUS)
        assert faults.channel_unsafe[into_a]


class TestConnectivity:
    def test_reachable_fault_free(self, torus8):
        faults = FaultState(torus8)
        assert faults.reachable(0, 63)

    def test_reachable_self(self, torus8):
        faults = FaultState(torus8)
        assert faults.reachable(5, 5)

    def test_not_reachable_when_endpoint_failed(self, torus8):
        faults = FaultState(torus8)
        faults.fail_node(7)
        assert not faults.reachable(0, 7)
        assert not faults.reachable(7, 0)

    def test_surrounded_node_unreachable(self, torus4):
        faults = FaultState(torus4)
        for nb in torus4.neighbors(5):
            faults.fail_node(nb)
        assert not faults.reachable(0, 5)
        assert not faults.healthy_nodes_connected()

    def test_connected_with_scattered_faults(self, torus8):
        faults = FaultState(torus8)
        faults.fail_nodes([0, 20, 45])
        assert faults.healthy_nodes_connected()

    def test_healthy_neighbors_excludes_failed(self, torus8):
        faults = FaultState(torus8)
        faults.fail_node(1)
        assert 1 not in faults.healthy_neighbors(0)

    def test_shortest_healthy_distance_detour(self, torus8):
        faults = FaultState(torus8)
        src = torus8.node_id((0, 0))
        dst = torus8.node_id((2, 0))
        assert faults.shortest_healthy_distance(src, dst) == 2
        faults.fail_node(torus8.node_id((1, 0)))
        assert faults.shortest_healthy_distance(src, dst) == 4

    def test_shortest_healthy_distance_none_when_cut(self, torus4):
        faults = FaultState(torus4)
        for nb in torus4.neighbors(5):
            faults.fail_node(nb)
        assert faults.shortest_healthy_distance(0, 5) is None
