"""Engine-level tests of kill-flit recovery and reliable delivery.

These exercise the Section 2.4 / Figure 16 mechanisms end to end: a
dynamic fault severs a message pipeline mid-flight; kill flits travel
to both the source and the destination releasing every reserved
resource; with tail acknowledgments enabled the source retransmits.
"""

import random

from repro.faults.injection import DynamicFaultSchedule, FaultEvent
from repro.network.topology import PLUS
from repro.sim.config import RecoveryConfig
from repro.sim.engine import Engine
from repro.sim.message import MessageStatus
from repro.sim.simulator import make_protocol
from repro.sim.config import SimulationConfig
from repro.network.topology import KAryNCube

from tests.conftest import build_engine, drain_engine, run_to_completion


def engine_with_fault_at(k, path_src, hop, cycle, recovery=None,
                         message_length=16):
    """An idle TP engine with one scheduled link fault on the +x path."""
    topo = KAryNCube(k, 2)
    fail_node = topo.node_id((hop, 0))
    fail_ch = topo.channel_id(fail_node, 0, PLUS)
    cfg = SimulationConfig(
        k=k, n=2, protocol="tp", offered_load=0.0,
        message_length=message_length, warmup_cycles=0, measure_cycles=0,
    )
    if recovery is not None:
        cfg = cfg.with_(recovery=recovery)
    schedule = DynamicFaultSchedule(
        events=[FaultEvent(cycle=cycle, kind="link", target=fail_ch)]
    )
    engine = Engine(
        cfg, make_protocol("tp"), topology=topo,
        rng=random.Random(1), dynamic_schedule=schedule,
    )
    return engine, topo


class TestKillRecovery:
    def test_interrupted_message_is_killed_and_resources_freed(self):
        engine, topo = engine_with_fault_at(8, 0, hop=2, cycle=8)
        msg = engine.inject(0, topo.node_id((4, 0)), length=16)
        run_to_completion(engine, msg)
        assert msg.status is MessageStatus.KILLED
        drain_engine(engine)
        assert engine.network_drained()
        assert engine.channels.all_free()

    def test_killed_flits_accounted(self):
        engine, topo = engine_with_fault_at(8, 0, hop=2, cycle=10)
        msg = engine.inject(0, topo.node_id((4, 0)), length=16)
        run_to_completion(engine, msg)
        drain_engine(engine)
        assert msg.killed_flits > 0
        assert msg.flit_conservation_ok()

    def test_fault_before_data_commits_retries_from_source(self):
        # PCS-style: MB-m setup interrupted with no data in the network
        # retries instead of losing the message.
        topo = KAryNCube(8, 2)
        fail_ch = topo.channel_id(topo.node_id((2, 0)), 0, PLUS)
        cfg = SimulationConfig(
            k=8, n=2, protocol="mb", offered_load=0.0,
            message_length=16, warmup_cycles=0, measure_cycles=0,
        )
        schedule = DynamicFaultSchedule(
            events=[FaultEvent(cycle=3, kind="link", target=fail_ch)]
        )
        engine = Engine(
            cfg, make_protocol("mb"), topology=topo,
            rng=random.Random(1), dynamic_schedule=schedule,
        )
        dst = topo.node_id((4, 0))
        engine.inject(0, dst, length=16)
        drain_engine(engine)
        # The original was superseded by a source retry that delivered.
        final = [r for r in engine.records if not r.superseded]
        assert len(final) == 1
        assert final[0].status == "DELIVERED"

    def test_unaffected_message_survives_fault(self):
        engine, topo = engine_with_fault_at(8, 0, hop=2, cycle=8)
        victim = engine.inject(0, topo.node_id((4, 0)), length=16)
        bystander = engine.inject(
            topo.node_id((0, 4)), topo.node_id((4, 4)), length=16
        )
        drain_engine(engine)
        assert victim.status is MessageStatus.KILLED
        assert bystander.status is MessageStatus.DELIVERED


class TestTailAck:
    def test_delivery_waits_for_tail_ack(self):
        engine = build_engine(
            "tp", k=8,
            recovery=RecoveryConfig(tail_ack=True, retransmit=True),
        )
        topo = engine.topology
        msg = engine.inject(0, topo.node_id((3, 0)), length=8)
        run_to_completion(engine, msg)
        assert msg.status is MessageStatus.DELIVERED
        assert msg.tail_acked
        drain_engine(engine)
        assert engine.channels.all_free()

    def test_tail_ack_adds_latency_over_plain(self):
        def latency(tail_ack: bool) -> int:
            engine = build_engine(
                "tp", k=8,
                recovery=RecoveryConfig(tail_ack=tail_ack),
            )
            topo = engine.topology
            msg = engine.inject(0, topo.node_id((3, 0)), length=8)
            run_to_completion(engine, msg)
            return msg.delivered_cycle - msg.created_cycle

        # delivered_cycle records data delivery; the held path shows up
        # in resource occupancy, not message latency.
        assert latency(True) == latency(False)

    def test_retransmission_after_dynamic_fault(self):
        engine, topo = engine_with_fault_at(
            8, 0, hop=2, cycle=8,
            recovery=RecoveryConfig(
                tail_ack=True, retransmit=True, max_retransmits=3
            ),
        )
        dst = topo.node_id((4, 0))
        engine.inject(0, dst, length=16)
        drain_engine(engine)
        final = [r for r in engine.records if not r.superseded]
        assert len(final) == 1
        assert final[0].status == "DELIVERED"
        assert engine.retransmissions == 1
        assert engine.channels.all_free()

    def test_retransmit_limit_drops_eventually(self):
        # Destination becomes unreachable: retransmits bounded.
        topo = KAryNCube(4, 2)
        cfg = SimulationConfig(
            k=4, n=2, protocol="tp", offered_load=0.0,
            message_length=8, warmup_cycles=0, measure_cycles=0,
            recovery=RecoveryConfig(
                tail_ack=True, retransmit=True, max_retransmits=2,
                max_source_retries=1,
            ),
        )
        events = [
            FaultEvent(cycle=4, kind="node", target=topo.node_id((1, 0))),
            FaultEvent(cycle=4, kind="node", target=topo.node_id((3, 0))),
            FaultEvent(cycle=4, kind="node", target=topo.node_id((2, 1))),
            FaultEvent(cycle=4, kind="node", target=topo.node_id((2, 3))),
        ]
        engine = Engine(
            cfg, make_protocol("tp"), topology=topo, rng=random.Random(1),
            dynamic_schedule=DynamicFaultSchedule(events=events),
        )
        dst = topo.node_id((2, 0))
        engine.inject(0, dst, length=8)
        drain_engine(engine)
        final = [r for r in engine.records if not r.superseded]
        assert len(final) == 1
        assert final[0].status in ("DROPPED", "KILLED")
