"""Non-convex fault regions — the flexibility the paper claims.

Unlike fault-ring schemes [4,5], TP "does not require convex fault
regions" (Section 1.0, distinguishing feature iii).  These tests build
deliberately non-convex fault shapes (L-shapes, diagonal chains,
separated clusters) and verify unsafe marking and delivery.
"""

import random

from repro.faults.model import FaultState
from repro.network.topology import KAryNCube

from tests.conftest import build_engine, drain_engine


def fail_shape(topo, coords_list):
    faults = FaultState(topo)
    for coords in coords_list:
        faults.fail_node(topo.node_id(coords))
    return faults


class TestNonConvexShapes:
    def test_l_shape_delivery(self):
        topo = KAryNCube(8, 2)
        faults = fail_shape(topo, [(3, 3), (3, 4), (4, 3)])
        engine = build_engine("tp", k=8, faults=faults)
        msgs = [
            engine.inject(0, topo.node_id((5, 5)), length=8),
            engine.inject(topo.node_id((2, 3)), topo.node_id((5, 3)),
                          length=8),
            engine.inject(topo.node_id((3, 2)), topo.node_id((3, 5)),
                          length=8),
        ]
        drain_engine(engine)
        assert all(m.status.name == "DELIVERED" for m in msgs)

    def test_diagonal_chain_delivery(self):
        """A diagonal of faults — the classic non-convex case that
        breaks block-fault models."""
        topo = KAryNCube(8, 2)
        faults = fail_shape(topo, [(2, 2), (3, 3), (4, 4)])
        engine = build_engine("tp", k=8, faults=faults)
        rng = random.Random(3)
        healthy = [
            n for n in range(topo.num_nodes)
            if not faults.is_node_faulty(n)
        ]
        msgs = []
        for _ in range(10):
            src = rng.choice(healthy)
            dst = rng.choice([n for n in healthy if n != src])
            msgs.append(engine.inject(src, dst, length=8))
        drain_engine(engine)
        assert all(m.status.name == "DELIVERED" for m in msgs)

    def test_separated_clusters(self):
        topo = KAryNCube(8, 2)
        faults = fail_shape(topo, [(1, 1), (6, 6)])
        engine = build_engine("mb", k=8, faults=faults)
        msg = engine.inject(0, topo.node_id((7, 7)), length=8)
        drain_engine(engine)
        assert msg.status.name == "DELIVERED"

    def test_no_healthy_node_is_marked_unusable(self):
        """The model never removes healthy nodes to regularize a
        region (no convexification)."""
        topo = KAryNCube(8, 2)
        faults = fail_shape(topo, [(2, 2), (3, 3), (4, 4)])
        # The 'inside corners' (2,3), (3,2), (3,4), (4,3) stay healthy
        # and routable.
        for coords in [(2, 3), (3, 2), (3, 4), (4, 3)]:
            node = topo.node_id(coords)
            assert not faults.is_node_faulty(node)
        engine = build_engine("tp", k=8, faults=faults)
        msg = engine.inject(
            topo.node_id((2, 3)), topo.node_id((4, 3)), length=8
        )
        drain_engine(engine)
        assert msg.status.name == "DELIVERED"

    def test_unsafe_count_grows_with_fault_surface(self):
        topo = KAryNCube(8, 2)
        compact = fail_shape(topo, [(3, 3), (3, 4)])
        spread = fail_shape(topo, [(1, 1), (5, 5)])
        count = lambda f: sum(f.channel_unsafe)  # noqa: E731
        # Separated faults expose more fault-adjacent surface than a
        # compact pair.
        assert count(spread) > count(compact)
