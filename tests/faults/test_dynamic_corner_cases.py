"""Corner cases of dynamic-fault handling in the engine."""

import random

from repro.faults.injection import DynamicFaultSchedule, FaultEvent
from repro.network.topology import KAryNCube, PLUS
from repro.sim.config import RecoveryConfig, SimulationConfig
from repro.sim.engine import Engine
from repro.sim.message import MessageStatus
from repro.sim.simulator import make_protocol

from tests.conftest import drain_engine


def engine_with_events(events, protocol="tp", k=8, recovery=None, seed=1):
    topo = KAryNCube(k, 2)
    cfg = SimulationConfig(
        k=k, n=2, protocol=protocol, offered_load=0.0,
        message_length=12, warmup_cycles=0, measure_cycles=0,
    )
    if recovery is not None:
        cfg = cfg.with_(recovery=recovery)
    return Engine(
        cfg, make_protocol(protocol), topology=topo,
        rng=random.Random(seed),
        dynamic_schedule=DynamicFaultSchedule(events=events),
    ), topo


class TestSourceAndDestinationFaults:
    def test_destination_node_dies_mid_delivery(self):
        topo = KAryNCube(8, 2)
        dst = topo.node_id((3, 0))
        engine, topo = engine_with_events(
            [FaultEvent(cycle=8, kind="node", target=dst)]
        )
        msg = engine.inject(0, dst, length=12)
        drain_engine(engine)
        assert msg.status in (MessageStatus.KILLED, MessageStatus.DROPPED)
        assert engine.channels.all_free()

    def test_source_node_dies_with_queued_messages(self):
        topo = KAryNCube(8, 2)
        src = topo.node_id((0, 0))
        engine, topo = engine_with_events(
            [FaultEvent(cycle=6, kind="node", target=src)]
        )
        active = engine.inject(src, topo.node_id((3, 0)), length=12)
        queued = engine.inject(src, topo.node_id((4, 0)), length=12)
        assert queued.status is MessageStatus.QUEUED
        drain_engine(engine)
        assert queued.status is MessageStatus.KILLED
        assert active.is_terminal()

    def test_dead_source_never_retransmits(self):
        topo = KAryNCube(8, 2)
        src = topo.node_id((0, 0))
        engine, topo = engine_with_events(
            [FaultEvent(cycle=6, kind="node", target=src)],
            recovery=RecoveryConfig(tail_ack=True, retransmit=True),
        )
        engine.inject(src, topo.node_id((3, 0)), length=12)
        drain_engine(engine)
        assert engine.retransmissions == 0


class TestMultipleFaultsOneMessage:
    def test_two_links_of_one_path_fail_same_cycle(self):
        topo = KAryNCube(8, 2)
        ch1 = topo.channel_id(topo.node_id((1, 0)), 0, PLUS)
        ch2 = topo.channel_id(topo.node_id((3, 0)), 0, PLUS)
        engine, topo = engine_with_events(
            [
                FaultEvent(cycle=9, kind="link", target=ch1),
                FaultEvent(cycle=9, kind="link", target=ch2),
            ]
        )
        msg = engine.inject(0, topo.node_id((5, 0)), length=12)
        drain_engine(engine)
        assert msg.is_terminal()
        assert engine.channels.all_free()
        assert msg.flit_conservation_ok()

    def test_second_fault_hits_during_teardown(self):
        topo = KAryNCube(8, 2)
        ch1 = topo.channel_id(topo.node_id((3, 0)), 0, PLUS)
        ch2 = topo.channel_id(topo.node_id((1, 0)), 0, PLUS)
        engine, topo = engine_with_events(
            [
                FaultEvent(cycle=9, kind="link", target=ch1),
                FaultEvent(cycle=11, kind="link", target=ch2),
            ]
        )
        msg = engine.inject(0, topo.node_id((5, 0)), length=12)
        drain_engine(engine)
        assert msg.is_terminal()
        assert engine.channels.all_free()


class TestFaultOnIdleNetwork:
    def test_fault_with_no_traffic_is_harmless(self):
        topo = KAryNCube(8, 2)
        ch = topo.channel_id(5, 0, PLUS)
        engine, topo = engine_with_events(
            [FaultEvent(cycle=3, kind="link", target=ch)]
        )
        for _ in range(10):
            engine.step()
        assert engine.faults.channel_faulty[ch]
        assert engine.network_drained()

    def test_later_traffic_routes_around_dynamic_fault(self):
        topo = KAryNCube(8, 2)
        ch = topo.channel_id(topo.node_id((1, 0)), 0, PLUS)
        engine, topo = engine_with_events(
            [FaultEvent(cycle=3, kind="link", target=ch)]
        )
        for _ in range(5):
            engine.step()
        msg = engine.inject(0, topo.node_id((3, 0)), length=12)
        drain_engine(engine)
        assert msg.status is MessageStatus.DELIVERED
        assert msg.hops_taken >= 3


class TestHeaderInFlightFaults:
    def test_header_on_failed_channel_is_recovered(self):
        """MB-m header stranded on a failing channel during setup."""
        topo = KAryNCube(8, 2)
        ch = topo.channel_id(topo.node_id((2, 0)), 0, PLUS)
        engine, topo = engine_with_events(
            [FaultEvent(cycle=3, kind="link", target=ch)],
            protocol="mb",
        )
        engine.inject(0, topo.node_id((4, 0)), length=12)
        drain_engine(engine)
        final = [r for r in engine.records if not r.superseded]
        assert final and final[-1].status == "DELIVERED"
        assert engine.channels.all_free()
