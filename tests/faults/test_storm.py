"""Storm resilience benchmark: determinism (fast-forward on/off,
parallel == serial), report shape, and CLI exit codes — including the
nonzero-exit contract CI gates on for both campaign subcommands."""

from repro.cli import main as cli_main
from repro.faults.chaos import (
    ARMS,
    STORM_SCENARIOS,
    ChaosCampaignResult,
    ChaosRunRecord,
    ChaosSpec,
    StormCampaignResult,
    StormSpec,
    run_storm_campaign,
    run_storm_one,
    storm_record_dicts,
)


def small_spec(**overrides) -> StormSpec:
    base = dict(
        seeds=(0,), scenarios=("linkstorm",), k=4,
        warmup_cycles=100, measure_cycles=600, drain_cycles=10_000,
        settle_cycles=100,
    )
    base.update(overrides)
    return StormSpec(**base)


class TestStormRuns:
    def test_both_arms_run_clean_and_inject_faults(self):
        for arm in ARMS:
            record = run_storm_one(small_spec(), "linkstorm", 0, arm)
            assert record.ok, record.error
            assert record.faults_injected > 0
            assert 0.0 <= record.storm_delivery_ratio <= 1.0
            assert record.storm_delivered <= record.delivered

    def test_reconfig_arm_only_reconfigures(self):
        spec = small_spec(scenarios=("gridlock",), k=6, seeds=(0,),
                          measure_cycles=1500)
        tp = run_storm_one(spec, "gridlock", 0, "tp-only")
        rc = run_storm_one(spec, "gridlock", 0, "reconfig")
        assert tp.reconfigurations == 0
        assert tp.reconfig_downtime == 0
        assert rc.reconfigurations > 0

    def test_fast_forward_on_off_identical(self):
        """The controller's event horizon must make storm runs
        byte-identical with the quiescence skip on and off."""
        for arm in ARMS:
            on = run_storm_one(
                small_spec(fast_forward=True), "linkstorm", 0, arm
            )
            off = run_storm_one(
                small_spec(fast_forward=False), "linkstorm", 0, arm
            )
            assert on == off


class TestStormCampaign:
    def test_parallel_equals_serial(self):
        spec = small_spec(seeds=(0, 1))
        serial = run_storm_campaign(spec, jobs=1)
        parallel = run_storm_campaign(spec, jobs=2)
        assert storm_record_dicts(serial) == storm_record_dicts(parallel)

    def test_report_shape_is_compare_bench_compatible(self):
        result = run_storm_campaign(small_spec(), jobs=1)
        report = result.report()
        assert report["ok"]
        workloads = {row["workload"] for row in report["workloads"]}
        assert workloads == {
            f"linkstorm/{arm}" for arm in ARMS
        }
        for row in report["workloads"]:
            assert "storm_delivery_ratio" in row
            assert "recovery_latency_mean" in row
            assert "reconfig_downtime" in row

    def test_render_reports_verdict(self):
        result = run_storm_campaign(small_spec(), jobs=1)
        assert "PASS" in result.render()

    def test_default_spec_covers_acceptance_scenario(self):
        assert "gridlock" in StormSpec().scenarios
        assert "gridlock" in STORM_SCENARIOS
        assert tuple(StormSpec().arms) == ARMS


class TestCliExitCodes:
    def test_storm_subcommand_runs_and_passes(self, capsys, tmp_path):
        out_path = tmp_path / "BENCH_resilience.json"
        rc = cli_main([
            "storm", "--seeds", "1", "--scenarios", "linkstorm",
            "--k", "4", "--out", str(out_path),
        ])
        out = capsys.readouterr().out
        assert rc == 0
        assert "PASS" in out
        assert out_path.exists()

    def test_storm_unknown_scenario_exits_2(self, capsys):
        assert cli_main(["storm", "--scenarios", "nope"]) == 2

    def test_storm_failure_exits_nonzero(self, capsys, monkeypatch):
        import repro.faults.chaos as chaos

        failing = StormCampaignResult(spec=StormSpec())
        monkeypatch.setattr(
            chaos, "run_storm_campaign", lambda spec, jobs=None: failing
        )
        assert cli_main(["storm"]) == 1

    def test_chaos_failure_exits_nonzero(self, capsys, monkeypatch):
        """CI gates on this: a campaign with any failed run must not
        exit 0."""
        import repro.faults.chaos as chaos

        bad_run = ChaosRunRecord(
            seed=0, protocol="tp", faults_injected=1, triggers_hit=[],
            recoveries=0, victims=[], teardown_counts={}, delivered=0,
            dropped=0, killed=0, invariant_checks=1,
            invariant_violations=1, drained=True, accounted=True,
        )
        failing = ChaosCampaignResult(spec=ChaosSpec(), runs=[bad_run])
        monkeypatch.setattr(
            chaos, "run_campaign", lambda spec, jobs=None: failing
        )
        assert cli_main(["chaos"]) == 1
