"""Chaos fault-storm harness: campaigns run clean, bursts land on
vulnerable messages, the gridlock scenario exercises real deadlock
recovery, and the CLI subcommand reports the verdict.
"""

from repro.cli import main as cli_main
from repro.faults.chaos import (
    ChaosController,
    ChaosSpec,
    SCENARIOS,
    burst_schedule,
    run_campaign,
    run_one,
)
from repro.sim.message import HeaderPhase, Message


def small_spec(**overrides) -> ChaosSpec:
    base = dict(
        seeds=(0, 1), protocols=("tp",), k=4,
        warmup_cycles=100, measure_cycles=400, drain_cycles=10_000,
        bursts=2, burst_size=1,
    )
    base.update(overrides)
    return ChaosSpec(**base)


class TestBurstSchedule:
    def test_bursts_spread_across_measurement_window(self):
        spec = small_spec()
        cycles = burst_schedule(spec)
        assert len(cycles) == spec.bursts
        assert all(
            spec.warmup_cycles < c < spec.warmup_cycles + spec.measure_cycles
            for c in cycles
        )
        assert cycles == sorted(cycles)


class TestTriggerMatching:
    def _msg(self) -> Message:
        return Message(
            msg_id=1, src=0, dst=3, length=8,
            offsets=(3, 0), created_cycle=0, inline_header=False,
        )

    def test_setup_matches_pending_header(self):
        msg = self._msg()
        msg.header_phase = HeaderPhase.PENDING
        assert ChaosController._matches(msg, "setup")
        assert not ChaosController._matches(msg, "teardown")

    def test_teardown_matches_only_teardown(self):
        msg = self._msg()
        msg.teardown = True
        assert ChaosController._matches(msg, "teardown")
        assert not ChaosController._matches(msg, "setup")

    def test_backtrack_matches_locked_header(self):
        msg = self._msg()
        msg.backtrack_lock = 2
        assert ChaosController._matches(msg, "backtrack")


class TestCampaign:
    def test_small_campaign_passes_with_faults_injected(self):
        result = run_campaign(small_spec())
        assert result.ok
        assert result.total_faults > 0
        assert len(result.runs) == 2
        for run in result.runs:
            assert run.invariant_checks > 0
            assert run.invariant_violations == 0
            assert run.drained or run.accounted

    def test_render_reports_pass_verdict(self):
        result = run_campaign(small_spec(seeds=(0,)))
        report = result.render()
        assert "PASS" in report
        assert "deadlock recoveries" in report

    def test_gridlock_scenario_recovers_real_deadlocks(self):
        assert "det-naive" in SCENARIOS
        record = run_one(ChaosSpec(), seed=18, protocol="det-naive")
        assert record.ok
        assert record.recoveries > 0
        assert record.victims
        assert record.teardown_counts.get("deadlock", 0) > 0

    def test_default_spec_includes_gridlock_scenario(self):
        assert "det-naive" in ChaosSpec().protocols


class TestCli:
    def test_chaos_subcommand_runs_and_passes(self, capsys):
        rc = cli_main([
            "chaos", "--seeds", "1", "--protocols", "tp",
            "--k", "4", "--bursts", "1", "--burst-size", "1",
        ])
        out = capsys.readouterr().out
        assert rc == 0
        assert "PASS" in out
