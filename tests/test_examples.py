"""The shipped examples must stay runnable (fast ones run in-suite)."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).parent.parent / "examples"

#: Examples fast enough for the regular test run; protocol_faceoff
#: sweeps many load points and is exercised by the benchmarks instead.
FAST_EXAMPLES = [
    "quickstart.py",
    "flow_control_comparison.py",
    "fault_tolerant_routing.py",
    "dynamic_fault_recovery.py",
    "time_space_diagram.py",
]


@pytest.mark.parametrize("script", FAST_EXAMPLES)
def test_example_runs_clean(script):
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES / script)],
        capture_output=True,
        text=True,
        timeout=240,
    )
    assert proc.returncode == 0, proc.stderr
    assert proc.stdout.strip(), "examples must print their findings"


def test_all_examples_present():
    names = {p.name for p in EXAMPLES.glob("*.py")}
    assert set(FAST_EXAMPLES) <= names
    assert "protocol_faceoff.py" in names
    assert len(names) >= 6


def test_examples_have_docstrings():
    for path in EXAMPLES.glob("*.py"):
        text = path.read_text()
        assert '"""' in text.split("\n", 3)[-1] or text.startswith(
            ('#!/usr/bin/env python\n"""', '"""')
        ), f"{path.name} lacks a module docstring"
