"""Epoch-transition properties of the route cache, pinned with
hypothesis (DESIGN.md §10).

The online-reconfiguration safety argument leans on two mechanical
facts about :class:`RouteCache`:

* **exact invalidation** — ``_sync`` drops the adaptive/misroute memo
  exactly when :attr:`FaultState.epoch` moves (any fault or
  reconfiguration) and never otherwise, so a candidate tuple can never
  mix channels admitted under two different epochs;
* **restriction filtering** — committed restrictions prune the
  optimistic candidate sets except for the final delivery hop, while
  ``honor_restrictions=False`` (the conservative detour search) and
  the escape layer see every healthy channel.

Both are checked here over arbitrary fault/restriction sequences.
"""

import pytest

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.faults.model import FaultState
from repro.network.topology import KAryNCube
from repro.routing.cache import RouteCache

TOPOLOGY = KAryNCube(5, 2)
NUM_NODES = TOPOLOGY.num_nodes
NUM_CHANNELS = TOPOLOGY.num_channels

nodes = st.integers(0, NUM_NODES - 1)
channels = st.integers(0, NUM_CHANNELS - 1)
#: A mutation step: fail a link, or commit a reconfiguration with a
#: restriction set and radius.
steps = st.one_of(
    st.tuples(st.just("fail"), channels),
    st.tuples(
        st.just("reconfig"),
        st.tuples(
            st.sets(channels, max_size=8),
            st.integers(1, 3),
        ),
    ),
)


def apply_step(faults: FaultState, step) -> None:
    kind, arg = step
    if kind == "fail":
        if not faults.channel_faulty[arg]:
            faults.fail_link(arg)
    else:
        restricted, radius = arg
        faults.reconfigure(sorted(restricted), unsafe_radius=radius)


# ======================================================================
# Exact invalidation
# ======================================================================
@given(src=nodes, dst=nodes, step=steps)
@settings(max_examples=60)
def test_sync_invalidates_exactly_on_epoch_bump(src, dst, step):
    """Same epoch -> identical cached tuple (identity, not just
    equality); epoch bump -> the memo is dropped and rebuilt."""
    if src == dst:
        return
    faults = FaultState(TOPOLOGY)
    cache = RouteCache(TOPOLOGY, faults)
    before = cache.adaptive_candidates(src, dst, None)
    # No epoch movement: the exact cached object comes back.
    assert cache.adaptive_candidates(src, dst, None) is before
    epoch = faults.epoch
    apply_step(faults, step)
    assert faults.epoch == epoch + 1, "every mutation bumps once"
    assert not cache._adaptive or cache._epoch == epoch
    after = cache.adaptive_candidates(src, dst, None)
    # The memo was rebuilt against the new epoch.
    assert cache._epoch == faults.epoch
    for _, _, ch, _ in after:
        assert not faults.channel_faulty[ch]


@given(
    src=nodes, dst=nodes,
    sequence=st.lists(steps, min_size=1, max_size=6),
)
@settings(max_examples=60)
def test_candidates_never_mix_epochs(src, dst, sequence):
    """After any mutation sequence, every candidate set the cache
    serves is exactly what a fresh cache computes from the current
    fault state — there is no way to observe a stale (mixed-epoch)
    entry."""
    if src == dst:
        return
    faults = FaultState(TOPOLOGY)
    cache = RouteCache(TOPOLOGY, faults)
    for step in sequence:
        cache.adaptive_candidates(src, dst, None)  # populate pre-step
        cache.misroute_candidates(src, dst, None, allow_u_turn=False)
        apply_step(faults, step)
        fresh = RouteCache(TOPOLOGY, faults)
        for honor in (True, False):
            assert cache.adaptive_candidates(
                src, dst, None, honor_restrictions=honor
            ) == fresh.adaptive_candidates(
                src, dst, None, honor_restrictions=honor
            )
            assert cache.misroute_candidates(
                src, dst, None, allow_u_turn=False,
                honor_restrictions=honor,
            ) == fresh.misroute_candidates(
                src, dst, None, allow_u_turn=False,
                honor_restrictions=honor,
            )


# ======================================================================
# Restriction filtering
# ======================================================================
@given(
    src=nodes, dst=nodes,
    restricted=st.sets(channels, min_size=1, max_size=12),
)
@settings(max_examples=60)
def test_restrictions_prune_optimistic_sets_except_final_hop(
    src, dst, restricted
):
    if src == dst:
        return
    faults = FaultState(TOPOLOGY)
    faults.reconfigure(sorted(restricted))
    cache = RouteCache(TOPOLOGY, faults)
    for _, _, ch, next_node in cache.adaptive_candidates(src, dst, None):
        if faults.is_channel_restricted(ch):
            assert next_node == dst, (
                "a restricted channel may only appear as the final "
                "delivery hop"
            )
    for _, _, ch, next_node in cache.misroute_candidates(
        src, dst, None, allow_u_turn=False
    ):
        if faults.is_channel_restricted(ch):
            assert next_node == dst


@given(
    src=nodes, dst=nodes,
    restricted=st.sets(channels, min_size=1, max_size=12),
)
@settings(max_examples=60)
def test_detour_search_sees_unrestricted_sets(src, dst, restricted):
    """honor_restrictions=False must equal the pre-reconfiguration
    candidate set exactly: restrictions steer, they never remove a
    healthy channel from the recovery search."""
    if src == dst:
        return
    faults = FaultState(TOPOLOGY)
    cache = RouteCache(TOPOLOGY, faults)
    unrestricted = cache.adaptive_candidates(
        src, dst, None, honor_restrictions=False
    )
    faults.reconfigure(sorted(restricted))
    assert cache.adaptive_candidates(
        src, dst, None, honor_restrictions=False
    ) == unrestricted


@given(src=nodes, dst=nodes, step=steps)
@settings(max_examples=60)
def test_escape_layer_survives_any_epoch(src, dst, step):
    """The escape memo is topology-pure: epoch bumps never clear it."""
    if src == dst:
        return
    faults = FaultState(TOPOLOGY)
    cache = RouteCache(TOPOLOGY, faults)
    before = cache.escape(src, dst)
    apply_step(faults, step)
    assert cache.escape(src, dst) == before
