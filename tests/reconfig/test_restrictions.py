"""Restriction planning: dead-end pruning, the connectivity safety
valve, and determinism of the derived plan."""

import pytest

from repro.faults.model import FaultState
from repro.network.topology import KAryNCube
from repro.reconfig.restrictions import compute_plan


def fresh_faults(k=5, n=2) -> FaultState:
    return FaultState(KAryNCube(k, n))


def isolate_node(faults: FaultState, node: int, keep: int = 1) -> None:
    """Fail all but ``keep`` outgoing channels of ``node``."""
    topo = faults.topology
    ports = list(topo.ports(node))
    for dim, direction in ports[keep:]:
        faults.fail_link(topo.channel_id(node, dim, direction))


class TestComputePlan:
    def test_fault_free_network_has_no_restrictions(self):
        plan = compute_plan(fresh_faults())
        assert plan.restricted_channels == ()
        assert plan.pruned_nodes == ()
        assert plan.connected

    def test_radius_is_committed_verbatim(self):
        plan = compute_plan(fresh_faults(), unsafe_radius=3)
        assert plan.unsafe_radius == 3

    def test_radius_below_one_rejected(self):
        with pytest.raises(ValueError):
            compute_plan(fresh_faults(), unsafe_radius=0)

    def test_epoch_basis_tracks_fault_state(self):
        faults = fresh_faults()
        faults.fail_link(0)
        plan = compute_plan(faults)
        assert plan.epoch_basis == faults.epoch

    def test_dead_end_node_gets_inbound_channels_restricted(self):
        faults = fresh_faults()
        topo = faults.topology
        node = 6
        isolate_node(faults, node, keep=1)
        plan = compute_plan(faults)
        assert node in plan.pruned_nodes
        # Every healthy inbound channel of the pocket node is
        # restricted; its own outgoing channels are not, so it can
        # still inject.
        for dim, direction in topo.ports(node):
            out_ch = topo.channel_id(node, dim, direction)
            in_ch = topo.reverse_channel_id(out_ch)
            if not faults.channel_faulty[in_ch]:
                assert in_ch in plan.restricted_channels
            assert out_ch not in plan.restricted_channels

    def test_plan_is_deterministic(self):
        def build():
            faults = fresh_faults()
            isolate_node(faults, 6, keep=1)
            faults.fail_node(17)
            return compute_plan(faults)

        assert build() == build()

    def test_prune_disabled_yields_radius_only_plan(self):
        faults = fresh_faults()
        isolate_node(faults, 6, keep=1)
        plan = compute_plan(faults, prune_dead_ends=False)
        assert plan.restricted_channels == ()
        assert plan.pruned_nodes == ()

    def test_restricted_channels_are_healthy_and_sorted(self):
        faults = fresh_faults()
        isolate_node(faults, 6, keep=1)
        plan = compute_plan(faults)
        assert list(plan.restricted_channels) == sorted(
            plan.restricted_channels
        )
        for ch in plan.restricted_channels:
            assert not faults.channel_faulty[ch]

    def test_disconnecting_plan_falls_back_to_radius_only(self):
        # A 3-ary ring in one dimension: every node has out-degree 2,
        # so failing one link leaves both endpoints at out-degree 1 and
        # pruning would cascade around the whole ring — the non-pocket
        # set empties or splits, and the safety valve must discard it.
        faults = FaultState(KAryNCube(3, 1))
        faults.fail_link(0)
        plan = compute_plan(faults)
        assert plan.restricted_channels == ()
        assert plan.pruned_nodes == ()
        assert not plan.connected
