"""ReconfigController state machine over a scripted engine stub:
monitor gating, drain/commit, timeout ejection, finalize cancellation,
and the fast-forward event horizon."""

from repro.faults.model import FaultState
from repro.network.topology import KAryNCube
from repro.reconfig.controller import (
    PRESSURE_WEIGHTS,
    ReconfigController,
)
from repro.sim.config import ResilienceConfig
from repro.sim.message import HeaderPhase


def settings(**overrides) -> ResilienceConfig:
    base = dict(
        reconfig=True, reconfig_check_every=8, reconfig_window=64,
        reconfig_threshold=3, reconfig_drain_timeout=20,
        reconfig_cooldown=100, reconfig_unsafe_radius=2,
    )
    base.update(overrides)
    return ResilienceConfig(**base)


class StubMessage:
    def __init__(self, msg_id, path=True,
                 header_phase=HeaderPhase.IN_FLIGHT, teardown=False):
        self.msg_id = msg_id
        self.path = [object()] if path else []
        self.header_phase = header_phase
        self.teardown = teardown
        self.header_router = 0


class StubEngine:
    """The engine surface the controller reads and mutates."""

    def __init__(self):
        self.topology = KAryNCube(5, 2)
        self.faults = FaultState(self.topology)
        self.cycle = 0
        self.active = {}
        self.deadlock_recoveries = 0
        self.teardown_counts = {}
        self.victim_cap_hits = 0
        self.auditor = None
        self.routing_freeze = False
        self.reconfigurations = 0
        self.reconfig_downtime_cycles = 0
        self.reconfig_victims = []
        self.last_recovery_cycle = 0
        self.torn_down = []

    def _teardown(self, msg, reason, router):
        self.torn_down.append((msg.msg_id, reason))
        del self.active[msg.msg_id]


def tick(ctl, engine, cycle):
    engine.cycle = cycle
    ctl(engine)


class TestMonitorGating:
    def test_no_trigger_without_epoch_movement(self):
        ctl = ReconfigController(settings())
        engine = StubEngine()
        tick(ctl, engine, 8)  # snapshot
        engine.deadlock_recoveries = 10  # huge pressure, epoch static
        tick(ctl, engine, 16)
        assert ctl.state == ctl.MONITOR
        assert not engine.routing_freeze

    def test_no_trigger_below_threshold(self):
        ctl = ReconfigController(settings())
        engine = StubEngine()
        tick(ctl, engine, 8)
        engine.faults.fail_link(0)  # epoch moves
        engine.teardown_counts = {"fault": 1}  # pressure 1 < 3
        tick(ctl, engine, 16)
        assert ctl.state == ctl.MONITOR

    def test_trigger_freezes_routing_and_enters_drain(self):
        ctl = ReconfigController(settings())
        engine = StubEngine()
        tick(ctl, engine, 8)
        engine.faults.fail_link(0)
        engine.deadlock_recoveries = 1  # weight 3 -> pressure 3
        tick(ctl, engine, 16)
        assert ctl.state == ctl.DRAIN
        assert engine.routing_freeze

    def test_off_tick_cycles_are_no_ops(self):
        ctl = ReconfigController(settings())
        engine = StubEngine()
        tick(ctl, engine, 8)
        engine.faults.fail_link(0)
        engine.deadlock_recoveries = 1
        tick(ctl, engine, 13)  # not a multiple of check_every
        assert ctl.state == ctl.MONITOR

    def test_window_expiry_resets_the_snapshot(self):
        ctl = ReconfigController(settings())
        engine = StubEngine()
        tick(ctl, engine, 8)
        engine.deadlock_recoveries = 5
        tick(ctl, engine, 80)  # past the 64-cycle window: re-snapshot
        engine.faults.fail_link(0)
        tick(ctl, engine, 88)  # stale recoveries no longer counted
        assert ctl.state == ctl.MONITOR

    def test_static_power_on_faults_alone_never_trigger(self):
        engine = StubEngine()
        engine.faults.fail_link(0)  # epoch moved before the first tick
        ctl = ReconfigController(settings())
        tick(ctl, engine, 8)  # lazily adopts the post-placement epoch
        engine.deadlock_recoveries = 2
        tick(ctl, engine, 16)
        assert ctl.state == ctl.MONITOR


class TestDrainAndCommit:
    def _triggered(self):
        ctl = ReconfigController(settings())
        engine = StubEngine()
        tick(ctl, engine, 8)
        engine.faults.fail_link(0)
        engine.deadlock_recoveries = 1
        tick(ctl, engine, 16)
        assert ctl.state == ctl.DRAIN
        return ctl, engine

    def test_commit_waits_for_mid_route_messages(self):
        ctl, engine = self._triggered()
        engine.active = {1: StubMessage(1)}
        tick(ctl, engine, 17)
        assert ctl.state == ctl.DRAIN
        assert engine.reconfigurations == 0

    def test_commit_once_drained(self):
        ctl, engine = self._triggered()
        epoch_before = engine.faults.epoch
        tick(ctl, engine, 17)
        assert ctl.state == ctl.MONITOR
        assert not engine.routing_freeze
        assert engine.reconfigurations == 1
        assert engine.faults.epoch == epoch_before + 1
        assert engine.faults.unsafe_radius == 2
        assert engine.last_recovery_cycle == 17
        event = ctl.events[-1]
        assert event.committed
        assert event.downtime == 17 - 16

    def test_delivered_and_teardown_messages_do_not_block_commit(self):
        ctl, engine = self._triggered()
        engine.active = {
            1: StubMessage(1, header_phase=HeaderPhase.DELIVERED),
            2: StubMessage(2, teardown=True),
            3: StubMessage(3, path=False),  # frozen at source
        }
        tick(ctl, engine, 17)
        assert engine.reconfigurations == 1

    def test_timeout_ejects_stragglers_in_msg_id_order(self):
        ctl, engine = self._triggered()
        engine.active = {5: StubMessage(5), 2: StubMessage(2)}
        tick(ctl, engine, 17)
        assert engine.reconfigurations == 0
        tick(ctl, engine, 16 + 20)  # drain_timeout reached
        assert engine.torn_down == [(2, "reconfig"), (5, "reconfig")]
        assert engine.reconfig_victims == [2, 5]
        assert engine.reconfigurations == 1
        assert ctl.events[-1].ejected == 2

    def test_cooldown_blocks_immediate_retrigger(self):
        ctl, engine = self._triggered()
        tick(ctl, engine, 17)  # commit at 17, cooldown until 117
        engine.faults.fail_link(3)
        engine.deadlock_recoveries += 2
        tick(ctl, engine, 24)
        assert ctl.state == ctl.MONITOR
        tick(ctl, engine, 120)
        assert ctl.state == ctl.DRAIN


class TestFinalize:
    def test_finalize_cancels_an_active_drain(self):
        ctl = ReconfigController(settings())
        engine = StubEngine()
        tick(ctl, engine, 8)
        engine.faults.fail_link(0)
        engine.deadlock_recoveries = 1
        tick(ctl, engine, 16)
        engine.active = {1: StubMessage(1)}
        engine.cycle = 30
        epoch = engine.faults.epoch
        ctl.finalize(engine)
        assert not engine.routing_freeze
        assert engine.faults.epoch == epoch  # nothing committed
        assert engine.reconfigurations == 0
        assert engine.reconfig_downtime_cycles == 30 - 16
        event = ctl.events[-1]
        assert not event.committed

    def test_finalize_in_monitor_is_a_no_op(self):
        ctl = ReconfigController(settings())
        engine = StubEngine()
        ctl.finalize(engine)
        assert ctl.events == []


class TestEventHorizon:
    def test_monitor_horizon_is_next_check_tick(self):
        ctl = ReconfigController(settings())
        engine = StubEngine()
        engine.cycle = 10
        assert ctl.next_event_cycle(engine) == 16
        engine.cycle = 16
        assert ctl.next_event_cycle(engine) == 24

    def test_drain_horizon_is_every_cycle(self):
        ctl = ReconfigController(settings())
        engine = StubEngine()
        tick(ctl, engine, 8)
        engine.faults.fail_link(0)
        engine.deadlock_recoveries = 1
        engine.active = {1: StubMessage(1)}
        tick(ctl, engine, 16)
        assert ctl.state == ctl.DRAIN
        engine.cycle = 17
        assert ctl.next_event_cycle(engine) == 18


def test_pressure_weights_cover_all_counters():
    assert len(PRESSURE_WEIGHTS) == 5
