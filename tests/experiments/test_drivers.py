"""Smoke tests of the figure drivers at quick scale."""

import math

import pytest

from repro.experiments import QUICK, Series
from repro.experiments import ablation_k
from repro.experiments import fig12_fault_free
from repro.experiments import fig13_static_faults
from repro.experiments import fig14_fault_sweep
from repro.experiments import fig15_aggressive_vs_conservative
from repro.experiments import fig17_dynamic_faults
from repro.experiments import formula_table
from repro.experiments import theorem_table
from repro.experiments.common import fig14_load
from repro.experiments.report import (
    render_experiment,
    render_saturation_summary,
    render_series_table,
)

LOADS = (0.05, 0.2)


class TestFigureDrivers:
    def test_fig12(self):
        exp = fig12_fault_free.run(scale=QUICK, loads=LOADS)
        assert {s.label for s in exp.series} == {"TP", "DP", "MB-m"}
        for series in exp.series:
            assert len(series.points) == 2
            assert all(p.delivered > 0 for p in series.points)
        # Headline shape at low load: MB-m latency above TP.
        tp = exp.series_by_label("TP").points[0].latency
        mb = exp.series_by_label("MB-m").points[0].latency
        assert mb > tp

    def test_fig13(self):
        exp = fig13_static_faults.run(
            scale=QUICK, loads=(0.05,), fault_counts=(10,)
        )
        labels = {s.label for s in exp.series}
        assert labels == {"TP (10F)", "MB-m (10F)"}

    def test_fig14(self):
        exp = fig14_fault_sweep.run(
            scale=QUICK, loads_msg=(10,), fault_sweep=(0, 10)
        )
        assert len(exp.series) == 2
        for series in exp.series:
            assert [p.extra["node_faults"] for p in series.points] == [0, 10]
        text = fig14_fault_sweep.render(exp)
        assert "latency vs node faults" in text

    def test_fig15(self):
        exp = fig15_aggressive_vs_conservative.run(
            scale=QUICK, loads=(0.1,), fault_counts=(10,)
        )
        assert {s.label for s in exp.series} == {
            "Aggressive (10F)", "Conservative (10F)"
        }

    def test_fig17(self):
        exp = fig17_dynamic_faults.run(
            scale=QUICK, loads=(0.05,), fault_counts=(10,)
        )
        assert {s.label for s in exp.series} == {
            "w/o TAck (10F)", "with TAck (10F)"
        }

    def test_ablation(self):
        exp = ablation_k.run(
            scale=QUICK, paper_faults=5, load=0.1,
            k_values=(0, 3), m_values=(2, 6),
        )
        text = ablation_k.render(exp)
        assert "K sweep" in text and "m sweep" in text

    def test_fig14_load_conversion(self):
        assert fig14_load(50) == pytest.approx(0.32)
        assert fig14_load(1) == pytest.approx(0.0064)


class TestValidationTables:
    def test_formula_table_all_match(self):
        rows = formula_table.run(
            link_grid=(1, 3), length_grid=(1, 8), k_grid=(1, 3)
        )
        assert rows and all(r.match for r in rows)
        text = formula_table.render(rows)
        assert "0 mismatches" in text

    def test_theorem_table_within_bounds(self):
        rows = theorem_table.run(radix=10, n=2, depths=(1, 2))
        assert all(r.within_bound for r in rows)
        assert all(r.measured_backtracks >= r.depth for r in rows)
        text = theorem_table.render(rows)
        assert "Theorem 1" in text


class TestReport:
    def _series(self):
        from repro.experiments import Point

        s = Series(label="X")
        s.points = [
            Point(offered_load=0.1, latency=40.0, latency_ci=1.0,
                  throughput=0.1, delivered=10, dropped=0, killed=0),
            Point(offered_load=0.5, latency=200.0, latency_ci=9.0,
                  throughput=0.3, delivered=10, dropped=0, killed=0),
        ]
        return s

    def test_table_contains_values(self):
        text = render_series_table([self._series()], title="t")
        assert "40.0" in text and "0.3000" in text

    def test_saturation_summary(self):
        text = render_saturation_summary([self._series()])
        # Latency at 0.5 exceeds 3x zero-load -> saturation tput is 0.1.
        assert "0.1000" in text

    def test_saturation_math(self):
        assert self._series().saturation_throughput() == 0.1

    def test_nan_rendering(self):
        s = Series(label="empty")
        assert math.isnan(s.saturation_throughput())
        from repro.experiments import Experiment

        exp = Experiment(figure="F", title="T", scale_name="quick",
                         series=[s])
        assert "F" in render_experiment(exp)
