"""Unit tests for the experiment scaffolding."""

import math
import os

import pytest

from repro.experiments.common import (
    DEFAULT_LOADS,
    MESSAGE_LENGTH,
    PAPER,
    QUICK,
    REDUCED,
    Point,
    Series,
    base_config,
    experiment_scale,
    fig14_load,
    run_point,
)


class TestScale:
    def test_paper_scale_matches_paper(self):
        assert PAPER.k == 16 and PAPER.n == 2
        assert PAPER.fault_scale == 1.0
        assert PAPER.num_nodes == 256

    def test_reduced_fault_scaling_by_node_ratio(self):
        # 64/256 nodes -> 0.25: the paper's 20 faults become 5.
        assert REDUCED.faults(20) == 5
        assert REDUCED.faults(10) == 2  # round(2.5) == 2 (banker's)
        assert REDUCED.faults(1) == 1   # never below one
        assert REDUCED.faults(0) == 0

    def test_env_selects_scale(self, monkeypatch):
        monkeypatch.delenv("REPRO_PAPER_SCALE", raising=False)
        monkeypatch.delenv("REPRO_QUICK", raising=False)
        assert experiment_scale() is REDUCED
        monkeypatch.setenv("REPRO_QUICK", "1")
        assert experiment_scale() is QUICK
        monkeypatch.delenv("REPRO_QUICK")
        monkeypatch.setenv("REPRO_PAPER_SCALE", "1")
        assert experiment_scale() is PAPER


class TestBaseConfig:
    def test_uses_paper_workload(self):
        cfg = base_config(REDUCED, "tp")
        assert cfg.message_length == MESSAGE_LENGTH == 32
        assert cfg.traffic == "uniform"
        assert cfg.injection_queue_limit == 8

    def test_overrides(self):
        cfg = base_config(QUICK, "mb", offered_load=0.25, seed=9)
        assert cfg.offered_load == 0.25 and cfg.seed == 9
        assert cfg.protocol == "mb"


class TestFig14Load:
    def test_paper_values(self):
        # Text: 50 msgs/node/5000 cycles is 0.32 flits/node/cycle.
        assert fig14_load(50) == pytest.approx(0.32)
        assert fig14_load(30) == pytest.approx(0.192)

    def test_loads_span_saturation(self):
        assert DEFAULT_LOADS[0] <= 0.05
        assert DEFAULT_LOADS[-1] >= 0.32


class TestSeries:
    def _series(self, latencies, throughputs):
        s = Series(label="x")
        for lat, tput in zip(latencies, throughputs):
            s.points.append(
                Point(offered_load=tput, latency=lat, latency_ci=0.0,
                      throughput=tput, delivered=1, dropped=0, killed=0)
            )
        return s

    def test_saturation_knee(self):
        s = self._series([40, 45, 60, 300], [0.1, 0.2, 0.3, 0.31])
        assert s.saturation_throughput() == 0.3

    def test_saturation_all_below_knee(self):
        s = self._series([40, 41], [0.1, 0.2])
        assert s.saturation_throughput() == 0.2

    def test_saturation_empty(self):
        assert math.isnan(Series(label="e").saturation_throughput())

    def test_saturation_ignores_nan_points(self):
        s = self._series([40, float("nan"), 42], [0.1, 0.2, 0.3])
        assert s.saturation_throughput() == 0.3


class TestRunPoint:
    def test_replicated_point(self):
        rep = run_point(QUICK, "tp", {}, offered_load=0.05, base_seed=3)
        assert rep.delivered > 0
        assert not math.isnan(rep.latency_mean)
        assert len(rep.runs) >= 1

    def test_static_faults_applied(self):
        rep = run_point(
            QUICK, "tp", {}, offered_load=0.05,
            static_faults=2, base_seed=3,
        )
        assert rep.delivered > 0
