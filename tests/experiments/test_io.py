"""Round-trip tests for experiment JSON persistence."""

import math

import pytest

from repro.experiments.common import Experiment, Point, Series
from repro.experiments.io import (
    experiment_from_dict,
    experiment_to_dict,
    load_experiment,
    save_experiment,
)


def sample_experiment() -> Experiment:
    exp = Experiment(figure="Figure 12", title="t", scale_name="quick")
    s = Series(label="TP")
    s.points = [
        Point(offered_load=0.1, latency=40.5, latency_ci=1.25,
              throughput=0.099, delivered=120, dropped=1, killed=0,
              extra={"node_faults": 3}),
        Point(offered_load=0.2, latency=float("nan"),
              latency_ci=float("nan"), throughput=0.15, delivered=0,
              dropped=0, killed=0),
    ]
    exp.series.append(s)
    return exp


class TestRoundTrip:
    def test_dict_round_trip(self):
        exp = sample_experiment()
        restored = experiment_from_dict(experiment_to_dict(exp))
        assert restored.figure == exp.figure
        assert restored.series[0].label == "TP"
        p = restored.series[0].points[0]
        assert p.latency == 40.5
        assert p.extra == {"node_faults": 3}

    def test_nan_survives_as_nan(self):
        exp = sample_experiment()
        restored = experiment_from_dict(experiment_to_dict(exp))
        assert math.isnan(restored.series[0].points[1].latency)

    def test_file_round_trip(self, tmp_path):
        exp = sample_experiment()
        path = save_experiment(exp, tmp_path / "sub" / "fig12.json")
        assert path.exists()
        restored = load_experiment(path)
        assert restored.title == exp.title
        assert len(restored.series[0].points) == 2

    def test_version_check(self):
        data = experiment_to_dict(sample_experiment())
        data["format_version"] = 99
        with pytest.raises(ValueError, match="format version"):
            experiment_from_dict(data)

    def test_saturation_computable_after_load(self, tmp_path):
        exp = sample_experiment()
        path = save_experiment(exp, tmp_path / "x.json")
        restored = load_experiment(path)
        assert restored.series[0].saturation_throughput() >= 0
