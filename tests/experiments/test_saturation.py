"""Tests for the auto-knee saturation driver (DESIGN.md §9)."""

import math

import pytest

from repro.experiments import QUICK, find_knee, sweep_loads
from repro.experiments.saturation import (
    KneeProbe,
    KneeResult,
    render,
    snapshot,
)

# One knee search at quick scale is a handful of short simulations;
# share it across the assertions below.
KNEE_TOL = 0.02


@pytest.fixture(scope="module")
def uniform_knee():
    return find_knee(
        QUICK, "tp", {"k_unsafe": 0}, traffic="uniform",
        tolerance=KNEE_TOL,
    )


class TestFindKnee:
    def test_bracket_converged(self, uniform_knee):
        """The (unsaturated, saturated) bracket straddles the knee and
        is at most one bisection step wide."""
        lo, hi = uniform_knee.bracket
        assert lo == uniform_knee.knee_load
        assert lo < hi
        assert hi - lo <= KNEE_TOL + 1e-12

    def test_probe_verdicts_consistent(self, uniform_knee):
        """No unsaturated probe sits above a saturated one."""
        sat = [p.offered_load for p in uniform_knee.probes if p.saturated]
        unsat = [
            p.offered_load for p in uniform_knee.probes if not p.saturated
        ]
        assert unsat and sat
        assert max(unsat) < min(sat)

    def test_knee_is_a_real_measurement(self, uniform_knee):
        assert uniform_knee.knee_throughput > 0
        assert math.isfinite(uniform_knee.base_latency)
        loads = [p.offered_load for p in uniform_knee.probes]
        assert uniform_knee.knee_load in loads

    def test_matches_fig12_grid_saturation(self, uniform_knee):
        """Acceptance: the adaptive knee agrees with the fixed-grid
        saturation criterion of the Figure 12 sweeps — every grid load
        the sweep calls unsaturated lies at or below the knee bracket,
        within one bisection step."""
        series = sweep_loads(
            QUICK, "TP", "tp", {"k_unsafe": 0},
            loads=(0.05, 0.15, 0.25, 0.35, 0.45, 0.55),
        )
        base = series.points[0].latency
        threshold = uniform_knee.latency_factor * base
        lo, hi = uniform_knee.bracket
        for pt in series.points:
            if math.isnan(pt.latency):
                continue
            if pt.latency <= threshold:
                assert pt.offered_load <= hi + KNEE_TOL
            else:
                assert pt.offered_load >= lo - KNEE_TOL
        # And the knee throughput is at least the grid's estimate
        # minus one bisection step of load.
        grid_sat = series.saturation_throughput(
            uniform_knee.latency_factor
        )
        assert uniform_knee.knee_throughput >= grid_sat - KNEE_TOL


class TestPatternKnees:
    def test_bursty_saturates_below_uniform(self, uniform_knee):
        """Clumped injection hits the knee earlier than smooth
        injection at the same time-average load."""
        bursty = find_knee(
            QUICK, "tp", {"k_unsafe": 0}, traffic="bursty",
            traffic_params={"burst_on": 24, "burst_off": 72},
            tolerance=KNEE_TOL,
        )
        assert bursty.knee_load < uniform_knee.knee_load


class TestKneeEdgeCases:
    """Degenerate searches must fail loudly, not fabricate a knee.

    ``run_point`` is replaced by closed-form fakes so each case is
    exact and instant: an all-replications-undrained run raises
    RuntimeError (what :func:`repro.experiments.common.run_point` does
    when every replication fails to drain), and a drained run returns
    an object with ``latency_mean`` / ``throughput_mean``.
    """

    @staticmethod
    def _fake(latency_of):
        class Rep:
            def __init__(self, load):
                self.latency_mean = latency_of(load)
                self.throughput_mean = load

        def run_point(scale, protocol, protocol_params, load, **kwargs):
            lat = latency_of(load)
            if math.isinf(lat):
                raise RuntimeError("no replication drained")
            return Rep(load)

        return run_point

    def test_undrained_baseline_raises(self, monkeypatch):
        """Zero-load probe never drains → clear error, no probing loop."""
        monkeypatch.setattr(
            "repro.experiments.saturation.run_point",
            self._fake(lambda load: math.inf),
        )
        with pytest.raises(RuntimeError, match="no replication drained at"):
            find_knee(QUICK, "tp", traffic="wedged")

    def test_no_deliveries_at_baseline_raises(self, monkeypatch):
        monkeypatch.setattr(
            "repro.experiments.saturation.run_point",
            self._fake(lambda load: math.nan),
        )
        with pytest.raises(RuntimeError, match="delivered no messages"):
            find_knee(QUICK, "tp", traffic="silent")

    def test_first_probe_saturated_raises(self, monkeypatch):
        """Every load above the baseline saturates: the bracket is
        never established from below, so the driver must refuse to
        report ``knee_load == low_load`` (the old behavior)."""
        monkeypatch.setattr(
            "repro.experiments.saturation.run_point",
            self._fake(lambda load: 30.0 if load <= 0.02 else math.inf),
        )
        with pytest.raises(RuntimeError, match="at or below the zero-load"):
            find_knee(QUICK, "tp", traffic="cliff", low_load=0.02)

    def test_first_probe_saturated_but_bisectable_is_fine(self, monkeypatch):
        """If the first doubling probe saturates but bisection *does*
        find unsaturated loads above the baseline, the knee is real."""
        monkeypatch.setattr(
            "repro.experiments.saturation.run_point",
            self._fake(lambda load: 30.0 if load <= 0.03 else 1e6),
        )
        knee = find_knee(
            QUICK, "tp", traffic="steep", low_load=0.02, tolerance=0.005,
        )
        assert 0.02 < knee.knee_load <= 0.03

    def test_normal_search_unchanged(self, monkeypatch):
        monkeypatch.setattr(
            "repro.experiments.saturation.run_point",
            self._fake(lambda load: 30.0 if load <= 0.3 else 1e6),
        )
        knee = find_knee(QUICK, "tp", traffic="uniform", tolerance=0.01)
        assert 0.3 - 0.01 <= knee.knee_load <= 0.3

    def test_bad_tolerance_rejected(self):
        with pytest.raises(ValueError, match="tolerance"):
            find_knee(QUICK, "tp", tolerance=0.0)
        with pytest.raises(ValueError, match="tolerance"):
            find_knee(QUICK, "tp", tolerance=-0.01)

    def test_bad_load_range_rejected(self):
        with pytest.raises(ValueError, match="low_load"):
            find_knee(QUICK, "tp", low_load=0.5, max_load=0.4)


class TestReporting:
    def _result(self):
        return KneeResult(
            pattern="uniform", protocol="tp", scale_name="quick",
            knee_load=0.39, knee_throughput=0.36, base_latency=35.0,
            latency_factor=3.0, tolerance=0.02,
            probes=[
                KneeProbe(0.02, 35.0, 0.02, False),
                KneeProbe(0.40, 200.0, 0.36, True),
                KneeProbe(0.39, 60.0, 0.36, False),
            ],
        )

    def test_render_table(self):
        out = render([self._result()])
        assert "uniform" in out and "0.3900" in out

    def test_snapshot_is_compare_bench_compatible(self):
        import sys
        sys.path.insert(0, "benchmarks")
        try:
            from compare_bench import compare
        finally:
            sys.path.pop(0)
        snap = snapshot([self._result()])
        rows = {row["workload"]: row for row in snap["workloads"]}
        assert "uniform/tp" in rows
        cmp_rows, regressions = compare(
            rows, rows, threshold=0.05, key="knee_throughput"
        )
        assert not regressions
        assert cmp_rows[0]["delta"] == 0.0
