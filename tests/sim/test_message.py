"""Unit tests for the message / pipeline-state model."""

import pytest

from repro.network.channel import VCClass, VirtualChannel
from repro.sim.message import (
    ControlFlit,
    ControlKind,
    HeaderPhase,
    Message,
    MessageStatus,
)


def make_msg(inline=False, length=8) -> Message:
    return Message(
        msg_id=3, src=0, dst=9, length=length, offsets=(2, 1),
        created_cycle=5, inline_header=inline,
    )


class TestInitialState:
    def test_queued_with_header_at_source(self):
        msg = make_msg()
        assert msg.status is MessageStatus.QUEUED
        assert msg.header_phase is HeaderPhase.PENDING
        assert msg.header_router == 0
        assert msg.current_node() == 0

    def test_flit_accounting_decoupled_header(self):
        msg = make_msg(inline=False)
        assert msg.total_flits == 8
        assert msg.at_source == 8

    def test_flit_accounting_inline_header(self):
        msg = make_msg(inline=True)
        assert msg.total_flits == 9
        assert msg.at_source == 9

    def test_head_at_source(self):
        msg = make_msg()
        assert msg.head_link == -1
        assert msg.head_router == 0

    def test_conservation_initially(self):
        assert make_msg().flit_conservation_ok()

    def test_offsets_copied(self):
        msg = make_msg()
        assert msg.header.offsets == [2, 1]


class TestPathMutation:
    def _vc(self, ch=0, idx=0):
        return VirtualChannel(ch, idx, VCClass.ADAPTIVE)

    def test_extend_path_grows_arrays(self):
        msg = make_msg()
        msg.extend_path(self._vc(), 1, k=3, hold=True, dim=0, direction=1,
                        is_misroute=True)
        assert len(msg.path) == 1
        assert msg.path_nodes == [0, 1]
        assert msg.k_at == [3]
        assert msg.held == [True]
        assert msg.link_misroute == [True]
        assert msg.buffered == [0]
        assert len(msg.acks_at) == 2
        assert len(msg.tried) == 2
        assert msg.arrival_dims[-1] == (0, 1)

    def test_pop_path_shrinks(self):
        msg = make_msg()
        vc = self._vc()
        msg.extend_path(vc, 1, 0, False, 0, 1)
        popped = msg.pop_path()
        assert popped is vc
        assert msg.path_nodes == [0]
        assert len(msg.acks_at) == 1

    def test_pop_path_with_data_raises(self):
        msg = make_msg()
        msg.extend_path(self._vc(), 1, 0, False, 0, 1)
        msg.buffered[0] = 2
        with pytest.raises(RuntimeError):
            msg.pop_path()

    def test_is_terminal(self):
        msg = make_msg()
        assert not msg.is_terminal()
        msg.status = MessageStatus.DELIVERED
        assert msg.is_terminal()
        msg.status = MessageStatus.DROPPED
        assert msg.is_terminal()
        msg.status = MessageStatus.KILLED
        assert msg.is_terminal()

    def test_conservation_tracks_buffers(self):
        msg = make_msg()
        msg.extend_path(self._vc(), 1, 0, False, 0, 1)
        msg.at_source -= 2
        msg.buffered[0] = 1
        msg.ejected = 1
        assert msg.flit_conservation_ok()
        msg.killed_flits = 1
        assert not msg.flit_conservation_ok()


class TestControlFlit:
    def test_fields(self):
        msg = make_msg()
        tok = ControlFlit(ControlKind.ACK_POS, msg, 2, 10)
        assert tok.kind is ControlKind.ACK_POS
        assert tok.message is msg
        assert tok.position == 2
        assert tok.ready_cycle == 10

    def test_repr_readable(self):
        msg = make_msg()
        assert "ack+" in repr(ControlFlit(ControlKind.ACK_POS, msg, 2, 10))

    def test_all_kinds_distinct(self):
        values = [k.value for k in ControlKind]
        assert len(values) == len(set(values)) == 9
