"""Deadlock diagnosis, victim selection, and watchdog recovery.

Unit tests fabricate a wait-for cycle on an idle engine by reserving
virtual channels by hand; the end-to-end tests run the deliberately
deadlock-prone ``det`` configuration (``dateline=False`` — naive
wormhole on a torus) and assert the watchdog genuinely recovers the
resulting cyclic deadlocks.
"""

import pytest

from repro.sim import postmortem
from repro.sim.config import ResilienceConfig, SimulationConfig
from repro.sim.engine import DeadlockError
from repro.sim.message import MessageStatus
from repro.sim.simulator import NetworkSimulator

from tests.conftest import build_engine, drain_engine


def _reserve_all_out(engine, node, owner_id):
    """Reserve every free VC on every healthy channel out of ``node``."""
    topo = engine.topology
    for dim, direction in topo.ports(node):
        ch = topo.channel_id(node, dim, direction)
        for vc in engine.channels.vcs(ch):
            if vc.is_free:
                vc.reserve(owner_id)


def wedged_engine():
    """Two pending headers, each wanting only VCs held by the other."""
    engine = build_engine("tp", k=4, n=2)
    msg_a = engine.inject(0, 2)
    msg_b = engine.inject(1, 3)
    _reserve_all_out(engine, 0, msg_b.msg_id)
    _reserve_all_out(engine, 1, msg_a.msg_id)
    return engine, msg_a, msg_b


class TestDiagnose:
    def test_fabricated_cycle_is_found(self):
        engine, msg_a, msg_b = wedged_engine()
        diagnosis = postmortem.diagnose(engine)
        assert sorted(diagnosis.blocked) == [msg_a.msg_id, msg_b.msg_id]
        holders = {(e.waiter, e.holder) for e in diagnosis.edges}
        assert (msg_a.msg_id, msg_b.msg_id) in holders
        assert (msg_b.msg_id, msg_a.msg_id) in holders
        assert len(diagnosis.cycles) == 1
        assert set(diagnosis.cycles[0]) == {msg_a.msg_id, msg_b.msg_id}

    def test_render_names_cycle_and_edges(self):
        engine, msg_a, msg_b = wedged_engine()
        report = postmortem.diagnose(engine).render()
        assert "blocking cycle" in report
        assert "cycle 1:" in report
        assert f"msg {msg_a.msg_id}" in report
        assert "waits on" in report

    def test_render_without_edges_explains_itself(self):
        engine = build_engine("tp", k=4, n=2)
        engine.inject(0, 2)  # pending but nothing is held: no edges
        diagnosis = postmortem.diagnose(engine)
        assert diagnosis.edges == []
        assert "no wait-for edges" in diagnosis.render()

    def test_teardown_messages_are_not_blocked(self):
        engine, msg_a, _ = wedged_engine()
        msg_a.teardown = True
        diagnosis = postmortem.diagnose(engine)
        assert msg_a.msg_id not in diagnosis.blocked


class TestSelectVictim:
    def test_prefers_cycle_member_with_least_committed_data(self):
        engine, msg_a, msg_b = wedged_engine()
        diagnosis = postmortem.diagnose(engine)
        victim = postmortem.select_victim(diagnosis, engine)
        # Equal committed data (none): lowest id wins for determinism.
        assert victim is msg_a

    def test_skips_messages_already_in_teardown(self):
        engine, msg_a, msg_b = wedged_engine()
        msg_a.teardown = True
        diagnosis = postmortem.diagnose(engine)
        victim = postmortem.select_victim(diagnosis, engine)
        assert victim is msg_b

    def test_no_eligible_victim_returns_none(self):
        engine, msg_a, msg_b = wedged_engine()
        msg_a.teardown = True
        msg_b.teardown = True
        diagnosis = postmortem.diagnose(engine)
        assert postmortem.select_victim(diagnosis, engine) is None

    def test_capped_origins_are_skipped_and_counted(self):
        """A message ejected max_victim_ejections times (by origin, so
        retry clones share the budget) is never selected again."""
        engine, msg_a, msg_b = wedged_engine()
        cap = engine.config.resilience.max_victim_ejections
        engine._ejections_by_origin[msg_a.original_id] = cap
        diagnosis = postmortem.diagnose(engine)
        victim = postmortem.select_victim(diagnosis, engine)
        assert victim is msg_b
        assert engine.victim_cap_hits == 1

    def test_all_candidates_capped_returns_none(self):
        engine, msg_a, msg_b = wedged_engine()
        cap = engine.config.resilience.max_victim_ejections
        engine._ejections_by_origin[msg_a.original_id] = cap
        engine._ejections_by_origin[msg_b.original_id] = cap
        diagnosis = postmortem.diagnose(engine)
        assert postmortem.select_victim(diagnosis, engine) is None
        assert engine.victim_cap_hits == 1

    def test_frozen_source_held_messages_are_not_victims(self):
        """Under routing_freeze a path-empty header owns no VCs —
        ejecting it could not unblock anything."""
        engine, msg_a, msg_b = wedged_engine()
        engine.routing_freeze = True
        assert not msg_a.path and not msg_b.path
        diagnosis = postmortem.diagnose(engine)
        assert postmortem.select_victim(diagnosis, engine) is None
        assert engine.victim_cap_hits == 0


def gridlock_config(**overrides) -> SimulationConfig:
    """Naive (dateline-free) dimension-order: genuinely deadlocks."""
    base = dict(
        k=6, n=2, protocol="det", protocol_params={"dateline": False},
        offered_load=0.30, message_length=16,
        warmup_cycles=200, measure_cycles=1000, drain_cycles=30_000,
        seed=3, watchdog_cycles=120, max_header_wait=6000,
    )
    base.update(overrides)
    return SimulationConfig(**base)


class TestWatchdogRecovery:
    def test_gridlock_is_recovered_and_network_drains(self):
        sim = NetworkSimulator(gridlock_config())
        result = sim.run()
        assert result.deadlock_recoveries > 0
        assert result.deadlock_victims
        assert result.teardown_counts.get("deadlock", 0) > 0
        assert sim.engine.network_drained()

    def test_strict_mode_raises_with_rendered_diagnosis(self):
        cfg = gridlock_config(
            resilience=ResilienceConfig(deadlock_strict=True)
        )
        with pytest.raises(DeadlockError) as excinfo:
            NetworkSimulator(cfg).run()
        assert excinfo.value.diagnosis is not None
        assert "blocking cycle" in str(excinfo.value)
        assert "waits on" in str(excinfo.value)

    def test_victims_are_retried_from_the_source(self):
        sim = NetworkSimulator(gridlock_config())
        sim.run()
        engine = sim.engine
        assert engine.deadlock_victims
        # Every ejected victim's record is terminal: either superseded
        # by a source-retry clone or dropped after the retry budget.
        by_id = {r.msg_id: r for r in engine.records}
        for victim_id in engine.deadlock_victims:
            record = by_id[victim_id]
            assert record.superseded or record.status in (
                "DROPPED", "KILLED"
            )

    def test_recovery_budget_exhaustion_raises(self):
        cfg = gridlock_config(
            resilience=ResilienceConfig(max_deadlock_recoveries=1)
        )
        with pytest.raises(DeadlockError, match="recovery budget"):
            NetworkSimulator(cfg).run()


class TestFrozenMessageStillRaises:
    def test_unrecoverable_stall_raises_even_in_lenient_mode(self):
        # A wedged *teardown* message is ineligible as a victim, so the
        # watchdog must still fail loudly (matching the engine's
        # historical DeadlockError contract).
        engine = build_engine("tp", k=4, n=2, watchdog_cycles=10)
        msg = engine.inject(0, 2)
        for _ in range(3):
            engine.step()
        msg.teardown = True  # freeze: teardown that never progresses
        with pytest.raises(DeadlockError):
            for _ in range(200):
                engine.step()


class TestCycleWalk:
    def test_walk_closes_at_start(self):
        adjacency = {1: [2], 2: [3], 3: [1]}
        walk = postmortem._cycle_walk(adjacency, {1, 2, 3})
        assert walk == [1, 2, 3]

    def test_tarjan_finds_single_scc(self):
        adjacency = {1: [2], 2: [1], 3: [1]}
        sccs = postmortem._tarjan_sccs(adjacency)
        assert {1, 2} in sccs
        assert {3} in sccs
