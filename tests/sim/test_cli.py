"""CLI tests (repro-sim)."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_run_defaults(self):
        args = build_parser().parse_args(["run"])
        assert args.protocol == "tp"
        assert args.load == 0.1

    def test_figure_name(self):
        args = build_parser().parse_args(["figure", "12"])
        assert args.name == "12"

    def test_sweep_loads_parse(self):
        args = build_parser().parse_args(["sweep", "--loads", "0.1,0.2"])
        assert args.loads == "0.1,0.2"

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_sweep_profile_flags(self):
        args = build_parser().parse_args(
            ["sweep", "--profile", "--profile-out", "x.pstats"]
        )
        assert args.profile and args.profile_out == "x.pstats"

    def test_chaos_profile_flags(self):
        args = build_parser().parse_args(["chaos", "--profile"])
        assert args.profile and args.profile_out is None

    def test_run_has_no_profile_flag(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--profile"])


class TestExecution:
    def test_run_prints_summary(self, capsys):
        rc = main([
            "run", "--protocol", "tp", "--k", "4", "--load", "0.05",
            "--warmup", "100", "--cycles", "400",
        ])
        out = capsys.readouterr().out
        assert rc == 0
        assert "latency" in out and "throughput" in out

    def test_run_with_faults(self, capsys):
        rc = main([
            "run", "--protocol", "mb", "--k", "4", "--load", "0.05",
            "--faults", "2", "--warmup", "100", "--cycles", "400",
        ])
        assert rc == 0
        assert "delivered" in capsys.readouterr().out

    def test_unknown_figure_errors(self, capsys):
        assert main(["figure", "99"]) == 2

    def test_figure_formulas(self, capsys):
        assert main(["figure", "formulas"]) == 0
        assert "mismatches" in capsys.readouterr().out


class TestProfile:
    def test_sweep_profile_stderr_summary(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_QUICK", "1")
        rc = main(["sweep", "--loads", "0.05", "--profile"])
        captured = capsys.readouterr()
        assert rc == 0
        # The sweep table still lands on stdout untouched...
        assert "sweep: tp" in captured.out
        # ...while the cProfile report goes to stderr.
        assert "cumulative" in captured.err
        assert "function calls" in captured.err

    def test_chaos_profile_out_dumps_stats(self, capsys, monkeypatch,
                                           tmp_path):
        import pstats

        monkeypatch.setenv("REPRO_QUICK", "1")
        out = tmp_path / "chaos.pstats"
        rc = main([
            "chaos", "--seeds", "1", "--protocols", "tp",
            "--k", "4", "--bursts", "1", "--profile",
            "--profile-out", str(out),
        ])
        captured = capsys.readouterr()
        assert rc == 0
        assert out.exists()
        # The dump is a loadable pstats payload, not a text report.
        assert pstats.Stats(str(out)).total_calls > 0
        assert "cumulative" not in captured.err

    def test_profile_forces_serial_jobs(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_QUICK", "1")
        rc = main(["sweep", "--loads", "0.05", "--profile",
                   "--jobs", "4"])
        captured = capsys.readouterr()
        assert rc == 0
        assert "forces --jobs 1" in captured.err
