"""CLI tests (repro-sim)."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_run_defaults(self):
        args = build_parser().parse_args(["run"])
        assert args.protocol == "tp"
        assert args.load == 0.1

    def test_figure_name(self):
        args = build_parser().parse_args(["figure", "12"])
        assert args.name == "12"

    def test_sweep_loads_parse(self):
        args = build_parser().parse_args(["sweep", "--loads", "0.1,0.2"])
        assert args.loads == "0.1,0.2"

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestExecution:
    def test_run_prints_summary(self, capsys):
        rc = main([
            "run", "--protocol", "tp", "--k", "4", "--load", "0.05",
            "--warmup", "100", "--cycles", "400",
        ])
        out = capsys.readouterr().out
        assert rc == 0
        assert "latency" in out and "throughput" in out

    def test_run_with_faults(self, capsys):
        rc = main([
            "run", "--protocol", "mb", "--k", "4", "--load", "0.05",
            "--faults", "2", "--warmup", "100", "--cycles", "400",
        ])
        assert rc == 0
        assert "delivered" in capsys.readouterr().out

    def test_unknown_figure_errors(self, capsys):
        assert main(["figure", "99"]) == 2

    def test_figure_formulas(self, capsys):
        assert main(["figure", "formulas"]) == 0
        assert "mismatches" in capsys.readouterr().out
