"""Unit tests for the time-space diagram tracer."""

from repro.core.latency_model import t_pcs, t_scouting, t_wormhole
from repro.sim.trace import MessageTracer, trace_single_message


class TestTraceSingleMessage:
    def test_wr_trace_terminates_delivered(self):
        tracer = trace_single_message("det", 0, 3, length=4,
                                      protocol_params={"flow": "wr"})
        assert tracer.message.status.name == "DELIVERED"
        assert tracer.samples[-1].status == "DELIVERED"

    def test_sample_count_matches_latency(self):
        tracer = trace_single_message("det", 0, 3, length=4,
                                      protocol_params={"flow": "wr"})
        # One initial sample plus one per cycle until delivery.
        assert len(tracer.samples) == t_wormhole(3, 4) + 1

    def test_header_advances_monotonically_wr(self):
        tracer = trace_single_message("det", 0, 4, length=4,
                                      protocol_params={"flow": "wr"})
        headers = [
            s.header_router for s in tracer.samples
            if s.header_router is not None
        ]
        assert headers == sorted(headers)
        assert headers[-1] == 4

    def test_scouting_trace_shows_acks(self):
        tracer = trace_single_message("det", 0, 4, length=4,
                                      protocol_params={"flow": "sr", "k": 2})
        assert any(s.ack_positions for s in tracer.samples)
        assert len(tracer.samples) == t_scouting(4, 4, 2) + 1

    def test_pcs_data_waits_for_setup(self):
        tracer = trace_single_message("det", 0, 4, length=4,
                                      protocol_params={"flow": "pcs"})
        # No data beyond the source before the header reaches the
        # destination (cycle 4).
        for s in tracer.samples:
            if s.cycle <= 4:
                assert not s.data_at
        assert len(tracer.samples) == t_pcs(4, 4) + 1

    def test_scouting_gap_bounded_by_2k_minus_1(self):
        k = 2
        tracer = trace_single_message("det", 0, 6, length=8,
                                      protocol_params={"flow": "sr", "k": k})
        for s in tracer.samples:
            if s.header_router is None or not s.data_at:
                continue
            if s.header_router >= s.path_len and s.status == "ACTIVE":
                head = max(s.data_at)
                if s.header_router > head:
                    assert s.header_router - head <= 2 * k


class TestRendering:
    def test_render_contains_header_and_legend(self):
        tracer = trace_single_message("det", 0, 3, length=4,
                                      protocol_params={"flow": "wr"})
        text = tracer.render()
        assert "cycle" in text and "legend" in text
        assert "H" in text

    def test_render_empty(self):
        import random

        from repro.sim.config import SimulationConfig
        from repro.sim.engine import Engine
        from repro.sim.simulator import make_protocol

        cfg = SimulationConfig(k=4, n=2, protocol="tp", offered_load=0.0,
                               warmup_cycles=0, measure_cycles=0)
        engine = Engine(cfg, make_protocol("tp"), rng=random.Random(1))
        msg = engine.inject(0, 1)
        assert MessageTracer(engine, msg).render() == "(no samples)"

    def test_render_width_cap(self):
        tracer = trace_single_message("det", 0, 3, length=2,
                                      protocol_params={"flow": "wr"})
        text = tracer.render(max_width=2)
        assert "R0" in text and "R3" not in text
