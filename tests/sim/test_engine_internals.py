"""White-box tests of engine internals and uncommon branches."""

import random

import pytest

from repro.network.topology import KAryNCube, PLUS
from repro.sim.config import SimulationConfig
from repro.sim.engine import Engine
from repro.sim.message import ControlFlit, ControlKind, MessageStatus
from repro.sim.simulator import make_protocol

from tests.conftest import build_engine, drain_engine


class TestControlQueueGating:
    def test_token_waits_for_ready_cycle(self):
        engine = build_engine("tp", k=6)
        msg = engine.inject(0, 3, length=4)
        engine.step()  # header crosses link 1
        ch = msg.path[0].channel_id
        token = ControlFlit(
            ControlKind.RESUME, msg, 0, ready_cycle=engine.cycle + 5
        )
        engine.control_out[engine.topology.reverse_channel_id(ch)].push(
            token
        )
        engine._active_ctrl.add(engine.topology.reverse_channel_id(ch))
        sent_before = engine.control_flits_sent
        engine.step()
        # The future-dated token must not have crossed this cycle.
        assert token in list(
            engine.control_out[
                engine.topology.reverse_channel_id(ch)
            ]._queue
        )
        drain_engine(engine)

    def test_one_control_flit_per_channel_per_cycle(self):
        engine = build_engine("tp", k=6)
        # Two messages whose headers use the same first channel's
        # control path cannot both cross in one cycle.
        a = engine.inject(0, 2, length=4)
        b = engine.inject(0, 2, length=4)  # queued behind a
        engine.step()
        assert a.header_router == 1
        assert b.status is MessageStatus.QUEUED


class TestPathIndexOf:
    def test_finds_live_link(self):
        engine = build_engine("tp", k=6)
        msg = engine.inject(0, 3, length=4)
        for _ in range(3):
            engine.step()
        vc = msg.path[0]
        assert engine._path_index_of(msg, vc) == 0

    def test_ignores_released_links(self):
        engine = build_engine("tp", k=6)
        msg = engine.inject(0, 3, length=4)
        for _ in range(3):
            engine.step()
        vc = msg.path[0]
        msg.released[0] = True
        assert engine._path_index_of(msg, vc) is None


class TestInjectionQueueBehaviour:
    def test_inject_beyond_queue_head_stays_queued(self):
        engine = build_engine("tp", k=6)
        msgs = [engine.inject(0, 3, length=4) for _ in range(4)]
        assert msgs[0].status is MessageStatus.ACTIVE
        assert all(m.status is MessageStatus.QUEUED for m in msgs[1:])
        drain_engine(engine)
        assert all(m.status is MessageStatus.DELIVERED for m in msgs)

    def test_fifo_service_order(self):
        engine = build_engine("tp", k=6)
        msgs = [engine.inject(0, 3, length=4) for _ in range(3)]
        drain_engine(engine)
        deliveries = [m.delivered_cycle for m in msgs]
        assert deliveries == sorted(deliveries)


class TestMeasuredCounters:
    def test_data_flits_moved_counted(self):
        engine = build_engine("tp", k=6)
        engine.inject(0, 2, length=4)
        drain_engine(engine)
        # 4 flits x 2 links = 8 channel crossings.
        assert engine.data_flits_moved == 8

    def test_vc_grants_match_crossings(self):
        engine = build_engine("tp", k=6)
        msg = engine.inject(0, 2, length=4)
        drain_engine(engine)
        total_grants = sum(
            vc.grants
            for ch in range(engine.topology.num_channels)
            for vc in engine.channels.vcs(ch)
        )
        assert total_grants == engine.data_flits_moved


class TestDeadlockFreedomStress:
    """Long saturated runs must never trip the progress watchdog."""

    @pytest.mark.parametrize("protocol", ["dp", "tp"])
    def test_saturated_fault_free(self, protocol):
        cfg = SimulationConfig(
            k=6, n=2, protocol=protocol, offered_load=0.9,
            message_length=16, warmup_cycles=0, measure_cycles=4000,
            seed=31, watchdog_cycles=1500,
        )
        from repro.sim.simulator import NetworkSimulator

        sim = NetworkSimulator(cfg)
        sim.engine.run(4000)  # raises DeadlockError on failure
        assert sim.engine.delivered_messages > 100

    def test_saturated_with_faults_tp(self):
        from repro.sim.config import FaultConfig
        from repro.sim.simulator import NetworkSimulator

        cfg = SimulationConfig(
            k=6, n=2, protocol="tp", offered_load=0.8,
            message_length=16, warmup_cycles=0, measure_cycles=4000,
            seed=31, watchdog_cycles=1500,
            faults=FaultConfig(static_node_faults=4),
        )
        sim = NetworkSimulator(cfg)
        sim.engine.run(4000)
        assert sim.engine.delivered_messages > 100

    def test_conservative_tp_saturated_with_faults(self):
        from repro.sim.config import FaultConfig
        from repro.sim.simulator import NetworkSimulator

        cfg = SimulationConfig(
            k=6, n=2, protocol="tp",
            protocol_params={"k_unsafe": 3},
            offered_load=0.8, message_length=16,
            warmup_cycles=0, measure_cycles=4000, seed=31,
            watchdog_cycles=1500,
            faults=FaultConfig(static_node_faults=4),
        )
        sim = NetworkSimulator(cfg)
        sim.engine.run(4000)
        assert sim.engine.delivered_messages > 100
