"""Property tests for the event-driven engine core (DESIGN.md §11).

Two families, pinned with hypothesis:

* **ready-set membership** — the event engine's claim is that every
  item it leaves out of a ready set (a ``dm_quiet`` message, a
  ``parked`` header, an unattended injection queue) would have been a
  no-op under the brute-force scans.  The brute-force engine
  (``event_engine=False``) *is* that scan, so the two engines are run
  in lockstep over hypothesis-chosen workloads with random dynamic
  faults (the state mutations: epoch bumps, teardowns, kill flits) and
  their full observable state is compared after every cycle.  A
  message wrongly resting in a ready set diverges the very next cycle.
* **sorted-set order** — the incrementally maintained
  :class:`_SortedIntSet` (which replaced the per-cycle
  ``sorted(self._busy_queues)`` in the launch phase) must present
  exactly the ascending snapshot a fresh ``sorted()`` would, after any
  interleaving of adds and discards.

The CI hypothesis profile (tests/conftest.py) disables deadlines and
derandomizes example selection.
"""

import pytest

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.config import FaultConfig, SimulationConfig
from repro.sim.engine import _SortedIntSet
from repro.sim.simulator import NetworkSimulator


# ======================================================================
# _SortedIntSet: incremental order == fresh sorted() (launch-order pin)
# ======================================================================
@given(
    ops=st.lists(
        st.tuples(st.booleans(), st.integers(0, 40)),
        max_size=200,
    ),
)
@settings(max_examples=200)
def test_sorted_int_set_matches_sorted(ops):
    s = _SortedIntSet()
    model = set()
    for i, (is_add, value) in enumerate(ops):
        if is_add:
            s.add(value)
            model.add(value)
        else:
            s.discard(value)
            model.discard(value)
        assert (value in s) == (value in model)
        assert len(s) == len(model)
        assert bool(s) == bool(model)
        if i % 7 == 0:  # snapshot mid-sequence, not only at the end
            assert s.snapshot() == sorted(model)
    assert s.snapshot() == sorted(model)
    assert list(s) == sorted(model)


def test_sorted_int_set_snapshot_stable_against_mutation():
    """The launch loop iterates a snapshot while rescheduling nodes:
    later adds/discards must not mutate the list it is walking."""
    s = _SortedIntSet()
    for v in (5, 1, 9):
        s.add(v)
    snap = s.snapshot()
    assert snap == [1, 5, 9]
    s.add(3)
    s.discard(5)
    assert snap == [1, 5, 9]
    assert s.snapshot() == [1, 3, 9]


# ======================================================================
# Ready-set membership vs the brute-force scans, in lockstep
# ======================================================================
def _msg_state(msg):
    return (
        msg.status.name,
        msg.header_phase.name,
        msg.header_router,
        msg.tp_mode.name,
        msg.at_source,
        msg.head_link,
        msg.tail_idx,
        tuple(msg.buffered),
        tuple(msg.crossed),
        tuple(msg.released),
        msg.ejected,
        msg.wait_cycles,
        msg.consecutive_waits,
        msg.retries,
        msg.teardown,
    )


def _engine_state(engine):
    return {
        "active": {
            mid: _msg_state(m) for mid, m in engine.active.items()
        },
        "pending": sorted(engine.pending),
        "busy": engine._busy_queues.snapshot(),
        "delivered": engine.delivered_messages,
        "dropped": engine.dropped_messages,
        "killed": engine.killed_messages,
        "accepted": engine.accepted_messages,
        "moved": engine.data_flits_moved,
        "recoveries": engine.deadlock_recoveries,
    }


@given(
    protocol=st.sampled_from(["dp", "mb", "tp", "det"]),
    load=st.sampled_from([0.05, 0.12, 0.22, 0.32]),
    seed=st.integers(0, 30),
    dynamic_faults=st.integers(0, 3),
)
@settings(max_examples=30)
def test_ready_sets_match_brute_force_lockstep(
    protocol, load, seed, dynamic_faults
):
    """Cycle-for-cycle, the event engine equals the brute-force scan.

    Any ready-set membership error — a quiet message whose pipeline
    could move, a parked header whose decision changed without a wake,
    an unattended launchable queue — shows up as a state divergence on
    the first cycle the brute-force engine acts on the skipped item.
    """
    cfg = SimulationConfig(
        k=5, n=2, protocol=protocol,
        protocol_params={"k_unsafe": 3} if protocol == "tp" else {},
        offered_load=load, message_length=6,
        warmup_cycles=30, measure_cycles=150, drain_cycles=0,
        seed=seed, watchdog_cycles=150, max_header_wait=4000,
        faults=FaultConfig(
            dynamic_faults=dynamic_faults, dynamic_start=20
        ),
    )
    ev = NetworkSimulator(cfg.with_(event_engine=True)).engine
    bf = NetworkSimulator(cfg.with_(event_engine=False)).engine
    for cycle in range(1, cfg.total_cycles + 200):
        ev.step()
        bf.step()
        assert _engine_state(ev) == _engine_state(bf), (
            f"event/brute-force divergence at cycle {cycle} "
            f"(protocol={protocol}, load={load}, seed={seed}, "
            f"dyn={dynamic_faults})"
        )
    # That the skip paths genuinely engage (so this comparison proves
    # membership, not vacuity) is pinned separately by
    # test_determinism.test_event_engine_actually_parks_and_quiets —
    # an uncongested low-load example here may legitimately never park.
