"""Property tests for the event-driven engine core (DESIGN.md §11-12).

Three families, pinned with hypothesis:

* **ready-set membership** — the event engine's claim is that every
  item it leaves out of a ready set (a ``dm_quiet`` message, a
  ``parked`` header, an unattended injection queue) would have been a
  no-op under the brute-force scans.  The brute-force engine
  (``event_engine=False``) *is* that scan, so the two engines are run
  in lockstep over hypothesis-chosen workloads with random dynamic
  faults (the state mutations: epoch bumps, teardowns, kill flits) and
  their full observable state is compared after every cycle.  A
  message wrongly resting in a ready set diverges the very next cycle.
* **data-kernel equivalence** — the SoA flit-transport kernel
  (``data_kernel``, DESIGN.md §12) rides the same lockstep: the
  hypothesis property crosses it into the engine pair, and a pinned
  teardown-heavy chaos-gridlock scenario drives the kernel through
  deadlock-recovery victim ejection and reconfiguration epoch bumps —
  the paths where its row lifecycle (attach/touch/drop/resync) is
  hardest.
* **sorted-set order** — the incrementally maintained
  :class:`_SortedIntSet` (which replaced the per-cycle
  ``sorted(self._busy_queues)`` in the launch phase) must present
  exactly the ascending snapshot a fresh ``sorted()`` would, after any
  interleaving of adds and discards.

The CI hypothesis profile (tests/conftest.py) disables deadlines and
derandomizes example selection.
"""

import random

import pytest

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.faults.chaos import ChaosController
from repro.faults.injection import DynamicFaultSchedule
from repro.sim.config import (
    FaultConfig,
    ResilienceConfig,
    SimulationConfig,
)
from repro.sim.engine import _SortedIntSet
from repro.sim.simulator import NetworkSimulator


# ======================================================================
# _SortedIntSet: incremental order == fresh sorted() (launch-order pin)
# ======================================================================
@given(
    ops=st.lists(
        st.tuples(st.booleans(), st.integers(0, 40)),
        max_size=200,
    ),
)
@settings(max_examples=200)
def test_sorted_int_set_matches_sorted(ops):
    s = _SortedIntSet()
    model = set()
    for i, (is_add, value) in enumerate(ops):
        if is_add:
            s.add(value)
            model.add(value)
        else:
            s.discard(value)
            model.discard(value)
        assert (value in s) == (value in model)
        assert len(s) == len(model)
        assert bool(s) == bool(model)
        if i % 7 == 0:  # snapshot mid-sequence, not only at the end
            assert s.snapshot() == sorted(model)
    assert s.snapshot() == sorted(model)
    assert list(s) == sorted(model)


def test_sorted_int_set_snapshot_stable_against_mutation():
    """The launch loop iterates a snapshot while rescheduling nodes:
    later adds/discards must not mutate the list it is walking."""
    s = _SortedIntSet()
    for v in (5, 1, 9):
        s.add(v)
    snap = s.snapshot()
    assert snap == [1, 5, 9]
    s.add(3)
    s.discard(5)
    assert snap == [1, 5, 9]
    assert s.snapshot() == [1, 3, 9]


# ======================================================================
# Ready-set membership vs the brute-force scans, in lockstep
# ======================================================================
def _msg_state(msg):
    return (
        msg.status.name,
        msg.header_phase.name,
        msg.header_router,
        msg.tp_mode.name,
        msg.at_source,
        msg.head_link,
        msg.tail_idx,
        tuple(msg.buffered),
        tuple(msg.crossed),
        tuple(msg.released),
        msg.ejected,
        msg.wait_cycles,
        msg.consecutive_waits,
        msg.retries,
        msg.teardown,
    )


def _engine_state(engine):
    return {
        "active": {
            mid: _msg_state(m) for mid, m in engine.active.items()
        },
        "pending": sorted(engine.pending),
        "busy": engine._busy_queues.snapshot(),
        "delivered": engine.delivered_messages,
        "dropped": engine.dropped_messages,
        "killed": engine.killed_messages,
        "accepted": engine.accepted_messages,
        "moved": engine.data_flits_moved,
        # header_decisions is deliberately absent: the event engine's
        # parked shortcut skips pure re-decides the brute-force scan
        # repeats, so the call count differs while the outcomes match.
        "ejected": engine.flits_ejected,
        "recoveries": engine.deadlock_recoveries,
    }


@given(
    protocol=st.sampled_from(["dp", "mb", "tp", "det"]),
    load=st.sampled_from([0.05, 0.12, 0.22, 0.32]),
    seed=st.integers(0, 30),
    dynamic_faults=st.integers(0, 3),
    data_kernel=st.booleans(),
)
@settings(max_examples=30)
def test_ready_sets_match_brute_force_lockstep(
    protocol, load, seed, dynamic_faults, data_kernel
):
    """Cycle-for-cycle, the event engine equals the brute-force scan.

    Any ready-set membership error — a quiet message whose pipeline
    could move, a parked header whose decision changed without a wake,
    an unattended launchable queue — shows up as a state divergence on
    the first cycle the brute-force engine acts on the skipped item.
    The ``data_kernel`` cross runs the event engine's data phase
    through the SoA kernel while the oracle keeps the object walk, so
    a stale kernel row (a missed touch/resync after a path mutation)
    diverges the same way.
    """
    cfg = SimulationConfig(
        k=5, n=2, protocol=protocol,
        protocol_params={"k_unsafe": 3} if protocol == "tp" else {},
        offered_load=load, message_length=6,
        warmup_cycles=30, measure_cycles=150, drain_cycles=0,
        seed=seed, watchdog_cycles=150, max_header_wait=4000,
        faults=FaultConfig(
            dynamic_faults=dynamic_faults, dynamic_start=20
        ),
    )
    ev = NetworkSimulator(
        cfg.with_(event_engine=True, data_kernel=data_kernel)
    ).engine
    bf = NetworkSimulator(
        cfg.with_(event_engine=False, data_kernel=False)
    ).engine
    for cycle in range(1, cfg.total_cycles + 200):
        ev.step()
        bf.step()
        assert _engine_state(ev) == _engine_state(bf), (
            f"event/brute-force divergence at cycle {cycle} "
            f"(protocol={protocol}, load={load}, seed={seed}, "
            f"dyn={dynamic_faults}, kernel={data_kernel})"
        )
    # That the skip paths genuinely engage (so this comparison proves
    # membership, not vacuity) is pinned separately by
    # test_determinism.test_event_engine_actually_parks_and_quiets —
    # an uncongested low-load example here may legitimately never park.


# ======================================================================
# SoA data kernel vs the object walk under maximum lifecycle pressure
# ======================================================================
def _gridlock_reconfig_cfg(data_kernel: bool) -> SimulationConfig:
    """Deadlock-prone gridlock with chaos faults and reconfiguration.

    Dimension-order routing without the dateline gridlocks at this
    load, so the watchdog fires and deadlock recovery ejects victims;
    chaos bursts tear paths down mid-flight; the recovery pressure
    then pushes the reconfiguration controller through its
    drain/commit cycle, bumping restriction epochs.  Every kernel row
    lifecycle edge — attach, teardown drop, victim ejection, resync
    after a reconfig-frozen header re-decides — runs in one scenario.
    """
    return SimulationConfig(
        k=6, n=2, protocol="det", protocol_params={"dateline": False},
        offered_load=0.30, message_length=16,
        warmup_cycles=100, measure_cycles=800, drain_cycles=0,
        seed=3, watchdog_cycles=120, max_header_wait=6000,
        data_kernel=data_kernel,
        resilience=ResilienceConfig(
            reconfig=True, reconfig_check_every=16,
            reconfig_window=256, reconfig_threshold=2,
            reconfig_drain_timeout=120, reconfig_cooldown=300,
            reconfig_unsafe_radius=1,
        ),
    )


def test_kernel_walk_lockstep_chaos_gridlock():
    """Kernel and walk stay state-identical through victim ejection,
    chaos teardown bursts, and reconfiguration epoch bumps."""
    sims = []
    for dk in (True, False):
        sim = NetworkSimulator(_gridlock_reconfig_cfg(dk))
        sim.engine.dynamic_schedule = DynamicFaultSchedule()
        controller = ChaosController(
            sim.engine.dynamic_schedule,
            random.Random(77),
            burst_cycles=[300, 500],
            burst_size=2,
            node_fault_fraction=0.5,
        )
        sims.append((sim, controller))
    (kern, kern_chaos), (walk, walk_chaos) = sims
    total = kern.config.total_cycles
    for cycle in range(1, total + 1):
        for sim, chaos in sims:
            sim.engine.step()
            chaos(sim.engine)
            sim.reconfig(sim.engine)
        assert _engine_state(kern.engine) == _engine_state(walk.engine), (
            f"kernel/walk divergence at cycle {cycle}"
        )
    # Drain phase: traffic off, circular waits stop resolving through
    # fresh aborts, the watchdog expires, and deadlock recovery ejects
    # victims — the kernel's drop path under maximum pressure.
    for sim, _ in sims:
        sim.reconfig.finalize(sim.engine)
        sim.engine.traffic_enabled = False
    for cycle in range(4000):
        if not kern.engine.active and not any(kern.engine.queues):
            break
        for sim, _ in sims:
            sim.engine.step()
        assert _engine_state(kern.engine) == _engine_state(walk.engine), (
            f"kernel/walk divergence during drain cycle {cycle}"
        )
    # The scenario must actually exercise the hard paths — otherwise
    # the lockstep proves nothing about them.
    assert kern.engine.deadlock_recoveries > 0, (
        "gridlock never triggered deadlock-recovery victim ejection"
    )
    assert kern_chaos.faults_injected > 0, (
        "chaos bursts never landed a fault"
    )
    assert kern.engine.reconfigurations > 0, (
        "recovery pressure never committed a reconfiguration"
    )
    assert kern.engine.teardown_counts.get("fault", 0) > 0, (
        "chaos faults never tore a path down"
    )
    assert kern_chaos.faults_injected == walk_chaos.faults_injected
    assert kern.engine.reconfigurations == walk.engine.reconfigurations
    assert not kern.engine.active and not walk.engine.active
