"""Unit tests for simulation configuration."""

import pytest

from repro.sim.config import (
    FaultConfig,
    RecoveryConfig,
    SimulationConfig,
    paper_scale,
)


class TestValidation:
    def test_defaults_valid(self):
        cfg = SimulationConfig()
        assert cfg.total_cycles == cfg.warmup_cycles + cfg.measure_cycles

    def test_rejects_bad_load(self):
        with pytest.raises(ValueError):
            SimulationConfig(offered_load=1.5)
        with pytest.raises(ValueError):
            SimulationConfig(offered_load=-0.1)

    def test_rejects_bad_length(self):
        with pytest.raises(ValueError):
            SimulationConfig(message_length=0)

    def test_rejects_bad_queue_limit(self):
        with pytest.raises(ValueError):
            SimulationConfig(injection_queue_limit=0)

    def test_rejects_bad_depth(self):
        with pytest.raises(ValueError):
            SimulationConfig(buffer_depth=0)


class TestWith:
    def test_with_replaces_fields(self):
        cfg = SimulationConfig(k=8)
        cfg2 = cfg.with_(k=16, offered_load=0.2)
        assert cfg2.k == 16 and cfg2.offered_load == 0.2
        assert cfg.k == 8  # original untouched

    def test_with_validates(self):
        with pytest.raises(ValueError):
            SimulationConfig().with_(offered_load=2.0)

    def test_paper_scale(self):
        cfg = paper_scale(SimulationConfig(k=8))
        assert cfg.k == 16
        assert cfg.measure_cycles >= 10_000


class TestSubConfigs:
    def test_fault_config_defaults(self):
        fc = FaultConfig()
        assert fc.static_node_faults == 0
        assert fc.keep_connected

    def test_recovery_defaults(self):
        rc = RecoveryConfig()
        assert not rc.tail_ack
        assert not rc.retransmit
        assert rc.max_source_retries >= 1
