"""Unit tests for RunResult aggregation over a controlled engine."""

import math

import pytest

from repro.sim.stats import MessageRecord, RunResult, summarize


class StubTopology:
    num_nodes = 64


class StubEngine:
    """Minimal engine surface that summarize() consumes."""

    def __init__(self, records, measure_cycles=1000,
                 delivered_flits=3200, offered_flits=4000,
                 accepted_flits=3600):
        self.records = records
        self.topology = StubTopology()
        self.cycle = 5000
        self._measure = measure_cycles
        self.measured_delivered_flits = delivered_flits
        self.measured_offered_flits = offered_flits
        self.measured_accepted_flits = accepted_flits
        self.retransmissions = 1
        self.source_retries = 2
        self.control_flits_sent = 77
        self.drop_reasons = {"x": 1}
        self.deadlock_recoveries = 0
        self.deadlock_victims = []
        self.teardown_counts = {}
        self.victim_cap_hits = 0
        self.reconfigurations = 0
        self.reconfig_downtime_cycles = 0
        self.reconfig_victims = []
        self.auditor = None
        self.active = {}
        self.queues = [[] for _ in range(self.topology.num_nodes)]

    def measure_window_cycles(self):
        return self._measure


def rec(msg_id, status="DELIVERED", created=600, delivered=700,
        superseded=False, hops=5, distance=4):
    return MessageRecord(
        msg_id=msg_id, src=0, dst=1, status=status, created=created,
        injected=created + 1, delivered=delivered, distance=distance,
        hops=hops, misroutes=1, backtracks=0, detours=1,
        retransmits=0, superseded=superseded,
    )


class TestSummarize:
    def test_latency_over_measured_window_only(self):
        records = [
            rec(1, created=100, delivered=150),   # warmup: excluded
            rec(2, created=600, delivered=700),   # counted: 100
            rec(3, created=800, delivered=860),   # counted: 60
        ]
        result = summarize(StubEngine(records), warmup=500)
        assert result.latency_count == 2
        assert result.latency_mean == pytest.approx(80.0)

    def test_superseded_records_excluded(self):
        records = [
            rec(1, status="KILLED", delivered=None, superseded=True),
            rec(2),
        ]
        result = summarize(StubEngine(records), warmup=500)
        assert result.delivered == 1
        assert result.killed == 0  # the superseded kill doesn't count

    def test_throughput_normalization(self):
        result = summarize(StubEngine([rec(1)]), warmup=500)
        # 3200 flits / (1000 cycles * 64 nodes) = 0.05.
        assert result.throughput == pytest.approx(0.05)
        assert result.offered_load == pytest.approx(4000 / 64000)
        assert result.accepted_load == pytest.approx(3600 / 64000)

    def test_drop_and_kill_counts(self):
        records = [
            rec(1),
            rec(2, status="DROPPED", delivered=None),
            rec(3, status="KILLED", delivered=None),
            rec(4, status="DROPPED", delivered=None, created=10),  # warmup
        ]
        result = summarize(StubEngine(records), warmup=500)
        assert result.dropped == 1
        assert result.killed == 1
        assert result.delivery_ratio == pytest.approx(1 / 3)

    def test_empty_run_is_nan_not_crash(self):
        result = summarize(StubEngine([]), warmup=500)
        assert math.isnan(result.latency_mean)
        assert result.delivered == 0
        assert math.isnan(result.delivery_ratio)

    def test_behavioral_means(self):
        records = [rec(1, hops=4), rec(2, hops=8)]
        result = summarize(StubEngine(records), warmup=500)
        assert result.mean_hops == 6.0
        assert result.total_detours == 2

    def test_counters_passed_through(self):
        result = summarize(StubEngine([rec(1)]), warmup=500)
        assert result.retransmissions == 1
        assert result.source_retries == 2
        assert result.control_flits == 77
        assert result.drop_reasons == {"x": 1}

    def test_zero_window_raises(self):
        """A zero-length window means throughput has no denominator —
        refusing loudly beats silently normalizing by a fabricated 1."""
        engine = StubEngine([rec(1)], measure_cycles=0)
        with pytest.raises(ValueError, match="measurement window"):
            summarize(engine, warmup=500)

    def test_drained_flag(self):
        engine = StubEngine([rec(1)])
        assert summarize(engine, warmup=500).drained
        engine = StubEngine([rec(1)])
        engine.active = {7: object()}  # a message still in flight
        assert not summarize(engine, warmup=500).drained
        engine = StubEngine([rec(1)])
        engine.queues[3].append(object())  # a message never launched
        assert not summarize(engine, warmup=500).drained


class TestRunResultProperties:
    def test_delivery_ratio_all_delivered(self):
        result = RunResult(
            cycles=10, num_nodes=4, latency_mean=1, latency_ci95=0,
            latency_count=5, throughput=0.1, offered_load=0.1,
            accepted_load=0.1, delivered=5, dropped=0, killed=0,
            retransmissions=0, source_retries=0, mean_hops=1.0,
            mean_misroutes=0.0, mean_backtracks=0.0, total_detours=0,
            control_flits=0,
        )
        assert result.delivery_ratio == 1.0
