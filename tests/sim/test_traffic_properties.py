"""Property-based tests for the workload contract (DESIGN.md §9).

Three families, pinned with hypothesis:

* **destination contract** — for every pattern, over arbitrary healthy
  subsets, a returned destination is healthy and never the source;
* **gap-sampling exactness** — :class:`BernoulliInjection`'s
  cycle-chunked arrivals are exactly the success positions of the flat
  inversion-method Bernoulli realization, and the
  ``idle_cycles``/``skip_cycles`` fast path is arrival-for-arrival and
  RNG-draw-for-draw equivalent to calling ``arrivals`` on every cycle
  (the fast-forward contract, for both Bernoulli and bursty timing);
* **offered-load accuracy** — the time-average arrival rate matches
  the configured offered load within statistical tolerance, including
  the bursty ON-state rescaling.

The CI hypothesis profile (tests/conftest.py) disables deadlines and
derandomizes example selection.
"""

import math
import random

import pytest

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.network.topology import KAryNCube
from repro.sim.config import SimulationConfig
from repro.sim.traffic import (
    BernoulliInjection,
    BurstyInjection,
    TrafficGenerator,
    make_injection_process,
)

TOPOLOGY = KAryNCube(6, 2)
NUM_NODES = TOPOLOGY.num_nodes

PATTERN_PARAMS = {
    "uniform": {},
    "hotspot": {"hotspot_fraction": 0.5, "hotspot_count": 3},
    "transpose": {},
    "complement": {},
    "tornado": {},
    "nearest": {},
    "bursty": {},
}


# ======================================================================
# Destination contract
# ======================================================================
@given(
    pattern=st.sampled_from(sorted(PATTERN_PARAMS)),
    seed=st.integers(0, 2**16),
    dead=st.sets(st.integers(0, NUM_NODES - 1), max_size=NUM_NODES - 1),
    src=st.integers(0, NUM_NODES - 1),
)
def test_destination_healthy_and_never_self(pattern, seed, dead, src):
    """Any pattern, any healthy subset: destinations are healthy
    non-self nodes, or None (source sends nowhere right now)."""
    healthy = [n for n in range(NUM_NODES) if n not in dead]
    if src in dead:
        healthy.append(src)
        healthy.sort()
    gen = TrafficGenerator(
        pattern, TOPOLOGY, random.Random(seed),
        healthy_nodes=healthy, params=PATTERN_PARAMS[pattern],
    )
    healthy_set = set(healthy)
    for _ in range(20):
        dst = gen.destination(src)
        if dst is not None:
            assert dst in healthy_set
            assert dst != src


@given(
    pattern=st.sampled_from(sorted(PATTERN_PARAMS)),
    seed=st.integers(0, 2**16),
    survivors=st.sets(
        st.integers(0, NUM_NODES - 1), min_size=2, max_size=8
    ),
)
def test_healthy_update_respected(pattern, seed, survivors):
    """After set_healthy_nodes, no pattern ever targets a dead node —
    the non-uniform-sampling regression (hotspot weight must move)."""
    gen = TrafficGenerator(
        pattern, TOPOLOGY, random.Random(seed),
        params=PATTERN_PARAMS[pattern],
    )
    alive = sorted(survivors)
    gen.set_healthy_nodes(alive)
    src = alive[0]
    for _ in range(30):
        dst = gen.destination(src)
        assert dst is None or (dst in survivors and dst != src)


# ======================================================================
# Gap-sampling exactness (the fast-forward contract)
# ======================================================================
def _flat_reference(p, seed, total_trials):
    """Success positions of the inversion-method realization over a
    flat trial index space — the ground truth arrivals()."""
    rng = random.Random(seed)
    if p <= 0.0:
        return []
    log_q = math.log(1.0 - p) if p < 1.0 else None

    def draw():
        if log_q is None:
            return 0
        return int(math.log(1.0 - rng.random()) / log_q)

    out = []
    pos = draw()
    while pos < total_trials:
        out.append(pos)
        pos += 1 + draw()
    return out


@given(
    p=st.floats(0.001, 0.9),
    seed=st.integers(0, 2**16),
    num_slots=st.integers(1, 40),
    cycles=st.integers(1, 200),
)
def test_arrivals_match_flat_realization(p, seed, num_slots, cycles):
    """Cycle-chunked arrivals == the flat Bernoulli realization."""
    proc = BernoulliInjection(p, random.Random(seed))
    got = [
        cycle * num_slots + pos
        for cycle in range(cycles)
        for pos in proc.arrivals(num_slots)
    ]
    want = [
        t for t in _flat_reference(p, seed, cycles * num_slots + 10_000)
        if t < cycles * num_slots
    ]
    assert got == want


def _schedule_with_skips(proc, num_slots, cycles, skip_rng):
    """Arrivals as (cycle, pos), taking the skip fast path whenever the
    process declares idle cycles — mimicking engine fast-forward."""
    out = []
    cycle = 0
    while cycle < cycles:
        idle = proc.idle_cycles(num_slots)
        if idle > 0:
            skip = min(idle, cycles - cycle, 1 + skip_rng.randrange(64))
            proc.skip_cycles(skip, num_slots)
            cycle += skip
            continue
        out.extend((cycle, pos) for pos in proc.arrivals(num_slots))
        cycle += 1
    return out


@pytest.mark.parametrize("kind", ["bernoulli", "bursty"])
@given(
    p=st.floats(0.001, 0.5),
    seed=st.integers(0, 2**16),
    num_slots=st.integers(1, 24),
    cycles=st.integers(1, 150),
)
def test_skip_path_equals_per_cycle_path(kind, p, seed, num_slots, cycles):
    """idle_cycles/skip_cycles must leave the process — and the shared
    RNG stream — exactly where per-cycle arrivals() calls would."""
    def build(s):
        rng = random.Random(s)
        if kind == "bernoulli":
            return BernoulliInjection(p, rng), rng
        return BurstyInjection(min(2 * p, 1.0), 0.0, 8, 24, rng), rng

    plain_proc, plain_rng = build(seed)
    plain = [
        (cycle, pos)
        for cycle in range(cycles)
        for pos in plain_proc.arrivals(num_slots)
    ]
    fast_proc, fast_rng = build(seed)
    fast = _schedule_with_skips(
        fast_proc, num_slots, cycles, random.Random(seed + 1)
    )
    assert fast == plain
    # Identical RNG stream position afterwards: the next draws agree.
    assert [plain_rng.random() for _ in range(3)] == [
        fast_rng.random() for _ in range(3)
    ]


# ======================================================================
# Offered-load accuracy
# ======================================================================
@settings(max_examples=20)
@given(
    load=st.floats(0.02, 0.4),
    seed=st.integers(0, 2**16),
    bursty=st.booleans(),
)
def test_time_average_load_matches_config(load, seed, bursty):
    """Arrivals per trial ~= offered_load / message_length, within
    5 sigma — bursty timing rescales the ON state to preserve the
    time-average (make_injection_process)."""
    cfg = SimulationConfig(
        offered_load=load,
        message_length=8,
        traffic="bursty" if bursty else "uniform",
        traffic_params={"burst_on": 16, "burst_off": 48} if bursty else {},
    )
    proc = make_injection_process(cfg, random.Random(seed))
    num_slots, cycles = 36, 3000
    count = sum(
        1 for _ in range(cycles) for _pos in proc.arrivals(num_slots)
    )
    p = load / cfg.message_length
    trials = cycles * num_slots
    sigma = math.sqrt(trials * p * (1 - p))
    # Bursty dwell clumping inflates the variance of the count by
    # roughly the mean dwell scale; widen the band accordingly.
    slack = 5 * sigma * (6 if bursty else 1)
    assert abs(count - trials * p) < slack
