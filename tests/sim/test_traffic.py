"""Unit tests for the traffic generators."""

import random

import pytest

from repro.network.topology import KAryNCube
from repro.sim.traffic import TrafficGenerator


class TestUniform:
    def test_never_self(self, torus8):
        gen = TrafficGenerator("uniform", torus8, random.Random(1))
        for src in (0, 17, 63):
            for _ in range(100):
                assert gen.destination(src) != src

    def test_covers_many_destinations(self, torus8):
        gen = TrafficGenerator("uniform", torus8, random.Random(1))
        seen = {gen.destination(0) for _ in range(600)}
        assert len(seen) > torus8.num_nodes // 2

    def test_respects_healthy_set(self, torus8):
        healthy = [0, 1, 2, 3]
        gen = TrafficGenerator(
            "uniform", torus8, random.Random(1), healthy_nodes=healthy
        )
        for _ in range(50):
            assert gen.destination(0) in {1, 2, 3}

    def test_none_when_alone(self, torus8):
        gen = TrafficGenerator(
            "uniform", torus8, random.Random(1), healthy_nodes=[5]
        )
        assert gen.destination(5) is None

    def test_set_healthy_nodes_updates(self, torus8):
        gen = TrafficGenerator("uniform", torus8, random.Random(1))
        gen.set_healthy_nodes([0, 9])
        assert gen.destination(0) == 9


class TestDeterministicPatterns:
    def test_nearest_is_one_hop(self, torus8):
        gen = TrafficGenerator("nearest", torus8, random.Random(1))
        for src in range(0, 64, 5):
            dst = gen.destination(src)
            assert torus8.distance(src, dst) == 1

    def test_transpose_swaps_coords(self, torus8):
        gen = TrafficGenerator("transpose", torus8, random.Random(1))
        src = torus8.node_id((2, 5))
        assert gen.destination(src) == torus8.node_id((5, 2))

    def test_transpose_diagonal_is_none(self, torus8):
        gen = TrafficGenerator("transpose", torus8, random.Random(1))
        assert gen.destination(torus8.node_id((3, 3))) is None

    def test_tornado_half_ring(self, torus8):
        gen = TrafficGenerator("tornado", torus8, random.Random(1))
        src = torus8.node_id((1, 0))
        dst = gen.destination(src)
        assert torus8.coords(dst) == ((1 + 3) % 8, 0)

    def test_complement(self, torus8):
        gen = TrafficGenerator("complement", torus8, random.Random(1))
        src = torus8.node_id((1, 2))
        assert gen.destination(src) == torus8.node_id((6, 5))

    def test_pattern_excludes_failed_partner(self, torus8):
        gen = TrafficGenerator("transpose", torus8, random.Random(1))
        partner = torus8.node_id((5, 2))
        gen.set_healthy_nodes(
            [n for n in range(64) if n != partner]
        )
        assert gen.destination(torus8.node_id((2, 5))) is None


class TestHotspot:
    PARAMS = {"hotspot_fraction": 1.0, "hotspot_nodes": [8, 24, 40]}

    def test_all_traffic_hits_hot_nodes(self, torus8):
        gen = TrafficGenerator(
            "hotspot", torus8, random.Random(1), params=self.PARAMS
        )
        for _ in range(100):
            assert gen.destination(0) in {8, 24, 40}

    def test_hot_source_excluded(self, torus8):
        gen = TrafficGenerator(
            "hotspot", torus8, random.Random(1), params=self.PARAMS
        )
        for _ in range(100):
            assert gen.destination(8) in {24, 40}

    def test_default_hot_nodes_evenly_spaced(self, torus8):
        gen = TrafficGenerator(
            "hotspot", torus8, random.Random(1),
            params={"hotspot_fraction": 1.0, "hotspot_count": 4},
        )
        assert gen.pattern_impl.hotspots == [0, 16, 32, 48]

    def test_dead_hot_node_redistributes(self, torus8):
        """Regression: a hotspot dying mid-run must move its weight to
        the surviving hot nodes, not keep targeting the corpse."""
        gen = TrafficGenerator(
            "hotspot", torus8, random.Random(1), params=self.PARAMS
        )
        gen.set_healthy_nodes([n for n in range(64) if n != 24])
        seen = {gen.destination(0) for _ in range(200)}
        assert 24 not in seen
        assert seen == {8, 40}

    def test_whole_hot_set_dead_degrades_to_uniform(self, torus8):
        gen = TrafficGenerator(
            "hotspot", torus8, random.Random(1), params=self.PARAMS
        )
        alive = [n for n in range(64) if n not in {8, 24, 40}]
        gen.set_healthy_nodes(alive)
        seen = {gen.destination(0) for _ in range(400)}
        assert seen <= set(alive) - {0}
        assert len(seen) > 30  # genuinely uniform, not a corpse target

    def test_revived_hot_node_restored(self, torus8):
        gen = TrafficGenerator(
            "hotspot", torus8, random.Random(1), params=self.PARAMS
        )
        gen.set_healthy_nodes([n for n in range(64) if n != 24])
        gen.set_healthy_nodes(list(range(64)))
        seen = {gen.destination(0) for _ in range(200)}
        assert seen == {8, 24, 40}

    def test_bad_params_rejected(self, torus8):
        with pytest.raises(ValueError):
            TrafficGenerator(
                "hotspot", torus8, random.Random(1),
                params={"hotspot_fraction": 1.5},
            )
        with pytest.raises(ValueError):
            TrafficGenerator(
                "hotspot", torus8, random.Random(1),
                params={"hotspot_nodes": [999]},
            )


class TestValidation:
    def test_unknown_pattern(self, torus8):
        with pytest.raises(ValueError):
            TrafficGenerator("zipf", torus8, random.Random(1))

    def test_pattern_list_documented(self):
        assert "uniform" in TrafficGenerator.PATTERNS
