"""The paper's deterministic-pattern validation battery must pass."""

import pytest

from repro.sim import validation


class TestNearestNeighbor:
    @pytest.mark.parametrize("flow", ["wr", "sr", "pcs"])
    def test_zero_contention_latency(self, flow):
        checks = validation.nearest_neighbor_latency(flow, k=6, length=6)
        for check in checks:
            assert check.passed, check


class TestRingUtilization:
    def test_per_channel_crossings_exact(self):
        checks = validation.ring_utilization(distance=3, k=6, length=4)
        for check in checks:
            assert check.passed, check

    def test_other_distance(self):
        checks = validation.ring_utilization(distance=2, k=8, length=3)
        for check in checks:
            assert check.passed, check


class TestBattery:
    def test_full_battery_renders(self):
        checks = validation.validate()
        text = validation.render(checks)
        assert "0 failures" in text
        assert all(c.passed for c in checks)

    def test_check_tolerance_logic(self):
        exact = validation.ValidationCheck("x", 10, 10, 0)
        assert exact.passed
        off = validation.ValidationCheck("x", 10, 11, 0)
        assert not off.passed
        close = validation.ValidationCheck("x", 10, 10.5, 0.1)
        assert close.passed
