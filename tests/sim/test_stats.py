"""Unit tests for the statistics machinery."""

import math

import pytest

from repro.sim.stats import (
    MessageRecord,
    mean_confidence_interval,
    repeat_until_confident,
    t_critical_95,
)


class TestConfidenceInterval:
    def test_empty(self):
        mean, half = mean_confidence_interval([])
        assert math.isnan(mean) and math.isnan(half)

    def test_single_sample_infinite(self):
        mean, half = mean_confidence_interval([10.0])
        assert mean == 10.0 and math.isinf(half)

    def test_identical_samples_zero_width(self):
        mean, half = mean_confidence_interval([5.0] * 10)
        assert mean == 5.0 and half == 0.0

    def test_known_case(self):
        samples = [1.0, 2.0, 3.0, 4.0, 5.0]
        mean, half = mean_confidence_interval(samples)
        assert mean == 3.0
        # s = sqrt(2.5), t(4) = 2.776 -> half = 2.776 * sqrt(2.5/5)
        assert half == pytest.approx(2.776 * math.sqrt(0.5), rel=1e-6)

    def test_width_shrinks_with_more_samples(self):
        base = [1.0, 2.0, 3.0, 4.0]
        _, narrow = mean_confidence_interval(base * 10)
        _, wide = mean_confidence_interval(base)
        assert narrow < wide

    def test_t_table(self):
        assert t_critical_95(1) == pytest.approx(12.706)
        assert t_critical_95(30) == pytest.approx(2.042)
        assert t_critical_95(1000) == pytest.approx(1.96)
        with pytest.raises(ValueError):
            t_critical_95(0)


class TestMessageRecord:
    def _rec(self, **kw):
        base = dict(
            msg_id=1, src=0, dst=5, status="DELIVERED", created=10,
            injected=11, delivered=50, distance=4, hops=4, misroutes=0,
            backtracks=0, detours=0, retransmits=0, superseded=False,
        )
        base.update(kw)
        return MessageRecord(**base)

    def test_latency(self):
        assert self._rec().latency == 40

    def test_latency_none_when_undelivered(self):
        assert self._rec(delivered=None, status="DROPPED").latency is None

    def test_frozen(self):
        rec = self._rec()
        with pytest.raises(AttributeError):
            rec.status = "KILLED"


class TestRepeatUntilConfident:
    def _fake_result(self, latency, throughput=0.1):
        from repro.sim.stats import RunResult

        return RunResult(
            cycles=100, num_nodes=64, latency_mean=latency,
            latency_ci95=1.0, latency_count=50, throughput=throughput,
            offered_load=0.1, accepted_load=0.1, delivered=50, dropped=0,
            killed=0, retransmissions=0, source_retries=0, mean_hops=4.0,
            mean_misroutes=0.0, mean_backtracks=0.0, total_detours=0,
            control_flits=0,
        )

    def test_stops_early_when_tight(self):
        calls = []

        def run_one(seed):
            calls.append(seed)
            return self._fake_result(latency=40.0)

        result = repeat_until_confident(run_one, min_runs=2, max_runs=8)
        assert len(calls) == 2  # identical means -> zero-width CI
        assert result.latency_mean == 40.0
        assert result.relative_ci == 0.0

    def test_runs_more_when_noisy(self):
        values = iter([10.0, 90.0, 50.0, 48.0, 52.0, 50.0, 49.0, 51.0])

        def run_one(seed):
            return self._fake_result(latency=next(values))

        result = repeat_until_confident(
            run_one, min_runs=2, max_runs=8, target_relative_ci=0.05
        )
        assert len(result.runs) > 2

    def test_respects_max_runs(self):
        import itertools

        values = itertools.cycle([1.0, 100.0])

        def run_one(seed):
            return self._fake_result(latency=next(values))

        result = repeat_until_confident(run_one, min_runs=2, max_runs=3)
        assert len(result.runs) == 3

    def test_distinct_seeds(self):
        seeds = []

        def run_one(seed):
            seeds.append(seed)
            return self._fake_result(latency=40.0)

        repeat_until_confident(run_one, min_runs=2, max_runs=4, base_seed=7)
        assert seeds == [7, 8]

    def test_validation(self):
        with pytest.raises(ValueError):
            repeat_until_confident(lambda s: None, min_runs=0)

    def test_aggregates_counts(self):
        def run_one(seed):
            return self._fake_result(latency=40.0)

        result = repeat_until_confident(run_one, min_runs=2, max_runs=2)
        assert result.delivered == 100
        assert result.dropped == 0
