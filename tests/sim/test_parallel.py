"""Tests for parallel replication campaigns (``repro.sim.parallel``).

The contract under test: a parallel campaign must be *bit-identical*
to the serial one — same ordered run list, same aggregate — with the
worker count resolved from the ``--jobs`` argument or the
``REPRO_JOBS`` environment variable.
"""

import dataclasses

import pytest

from repro.experiments.common import QUICK, Scale, run_point
from repro.sim.config import SimulationConfig
from repro.sim.parallel import (
    replicate_parallel,
    resolve_jobs,
    run_configs,
    run_one_config,
)
from repro.sim.stats import (
    RunResult,
    aggregate_replications,
    repeat_until_confident,
)


def quick_config(seed: int, load: float = 0.05) -> SimulationConfig:
    """A tiny, fast configuration that still exercises the full engine."""
    return SimulationConfig(
        k=5, n=2, protocol="tp", offered_load=load,
        warmup_cycles=100, measure_cycles=400, seed=seed,
    )


def fake_run(latency: float, drained: bool = True) -> RunResult:
    return RunResult(
        cycles=100, num_nodes=25, latency_mean=latency,
        latency_ci95=1.0, latency_count=50, throughput=0.1,
        offered_load=0.1, accepted_load=0.1, delivered=50, dropped=0,
        killed=0, retransmissions=0, source_retries=0, mean_hops=4.0,
        mean_misroutes=0.0, mean_backtracks=0.0, total_detours=0,
        control_flits=0, drained=drained,
    )


class TestResolveJobs:
    def test_default_is_serial(self, monkeypatch):
        monkeypatch.delenv("REPRO_JOBS", raising=False)
        assert resolve_jobs() == 1

    def test_env_variable(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "7")
        assert resolve_jobs() == 7

    def test_explicit_arg_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "7")
        assert resolve_jobs(3) == 3

    def test_unparsable_env_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "lots")
        with pytest.raises(ValueError, match="positive integer"):
            resolve_jobs()

    def test_nonpositive_rejected(self, monkeypatch):
        with pytest.raises(ValueError, match=">= 1"):
            resolve_jobs(0)
        monkeypatch.setenv("REPRO_JOBS", "-2")
        with pytest.raises(ValueError, match=">= 1"):
            resolve_jobs()


class TestRunConfigs:
    def test_preserves_input_order(self):
        """Pool results must line up index-for-index with the configs,
        never arrive in completion order."""
        configs = [quick_config(seed) for seed in (11, 12, 13)]
        serial = [run_one_config(cfg) for cfg in configs]
        parallel = run_configs(configs, jobs=2)
        assert len(parallel) == len(serial)
        for a, b in zip(serial, parallel):
            assert dataclasses.asdict(a) == dataclasses.asdict(b)

    def test_serial_path_without_pool(self, monkeypatch):
        monkeypatch.delenv("REPRO_JOBS", raising=False)
        results = run_configs([quick_config(21)])
        assert len(results) == 1
        assert results[0].delivered > 0


class TestParallelEqualsSerial:
    def test_replicate_parallel_matches_serial(self):
        serial = repeat_until_confident(
            lambda seed: run_one_config(quick_config(seed)),
            min_runs=1, max_runs=2, base_seed=5,
        )
        parallel = replicate_parallel(
            quick_config, min_runs=1, max_runs=2, base_seed=5, jobs=2,
        )
        assert len(parallel.runs) == len(serial.runs)
        for a, b in zip(serial.runs, parallel.runs):
            assert dataclasses.asdict(a) == dataclasses.asdict(b)
        assert parallel.latency_mean == serial.latency_mean
        assert parallel.latency_ci95 == serial.latency_ci95
        assert parallel.throughput_mean == serial.throughput_mean
        assert parallel.converged == serial.converged

    def test_run_point_env_jobs_matches_serial(self, monkeypatch):
        """The REPRO_JOBS>=2 path through run_point reproduces the
        serial ReplicatedResult exactly."""
        monkeypatch.delenv("REPRO_JOBS", raising=False)
        serial = run_point(QUICK, "tp", None, offered_load=0.05)
        monkeypatch.setenv("REPRO_JOBS", "2")
        parallel = run_point(QUICK, "tp", None, offered_load=0.05)
        assert len(parallel.runs) == len(serial.runs)
        for a, b in zip(serial.runs, parallel.runs):
            assert dataclasses.asdict(a) == dataclasses.asdict(b)
        assert parallel.latency_mean == serial.latency_mean
        assert parallel.throughput_mean == serial.throughput_mean
        assert parallel.converged == serial.converged

    def test_replicate_parallel_validation(self):
        with pytest.raises(ValueError):
            replicate_parallel(quick_config, min_runs=0)
        with pytest.raises(ValueError):
            replicate_parallel(quick_config, min_runs=3, max_runs=2)


class TestConvergedFlag:
    def test_single_run_never_converges(self):
        """The n=1 CI half-width is infinite: one replication cannot
        certify its interval, and the aggregate must say so."""
        rep = aggregate_replications([fake_run(40.0)])
        assert rep.converged is False

    def test_identical_runs_converge(self):
        rep = aggregate_replications([fake_run(40.0), fake_run(40.0)])
        assert rep.converged is True
        assert rep.relative_ci == 0.0

    def test_max_runs_one_flagged_unconverged(self):
        rep = repeat_until_confident(
            lambda seed: fake_run(40.0), min_runs=1, max_runs=1,
        )
        assert len(rep.runs) == 1
        assert rep.converged is False

    def test_noisy_runs_unconverged_at_cap(self):
        values = iter([10.0, 90.0, 50.0])
        rep = repeat_until_confident(
            lambda seed: fake_run(next(values)), min_runs=2, max_runs=3,
        )
        assert rep.converged is False


class TestUndrainedHandling:
    def test_undrained_runs_counted(self):
        rep = aggregate_replications(
            [fake_run(40.0), fake_run(41.0, drained=False)]
        )
        assert rep.undrained_runs == 1

    def test_all_undrained_point_fails(self, monkeypatch):
        """With no drain budget at a moderate load, every replication
        leaves messages in flight — the point is pure noise and must
        raise instead of charting truncated latencies."""
        monkeypatch.delenv("REPRO_JOBS", raising=False)
        no_drain = Scale(
            k=5, n=2, warmup=100, measure=300, drain=0,
            replications=1, max_replications=1, fault_scale=0.1,
            name="nodrain",
        )
        with pytest.raises(RuntimeError, match="never drained"):
            run_point(no_drain, "tp", None, offered_load=0.2)

    def test_partial_undrained_warns(self, monkeypatch):
        monkeypatch.delenv("REPRO_JOBS", raising=False)
        crafted = aggregate_replications(
            [fake_run(40.0), fake_run(41.0, drained=False)]
        )
        monkeypatch.setattr(
            "repro.experiments.common.repeat_until_confident",
            lambda *a, **k: crafted,
        )
        with pytest.warns(RuntimeWarning, match="did not drain"):
            rep = run_point(QUICK, "tp", None, offered_load=0.05)
        assert rep.undrained_runs == 1
