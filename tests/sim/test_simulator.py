"""Unit tests for the simulator facade and protocol factory."""

import pytest

from repro.core.two_phase import TwoPhaseProtocol
from repro.routing.duato import DuatoProtocol
from repro.routing.mb import MBmProtocol
from repro.routing.oblivious import DimensionOrderProtocol
from repro.sim.config import FaultConfig, SimulationConfig
from repro.sim.simulator import NetworkSimulator, make_protocol, run_config


class TestFactory:
    def test_known_protocols(self):
        assert isinstance(make_protocol("dp"), DuatoProtocol)
        assert isinstance(make_protocol("mb"), MBmProtocol)
        assert isinstance(make_protocol("tp"), TwoPhaseProtocol)
        assert isinstance(make_protocol("det"), DimensionOrderProtocol)

    def test_params_forwarded(self):
        proto = make_protocol("tp", k_unsafe=3, misroute_limit=4)
        assert proto.flow_control.k_unsafe == 3
        assert proto.misroute_limit == 4

    def test_unknown_name(self):
        with pytest.raises(ValueError, match="unknown protocol"):
            make_protocol("chaos")

    def test_bad_params_surface(self):
        with pytest.raises(TypeError):
            make_protocol("dp", k_unsafe=3)


class TestNetworkSimulator:
    def test_static_faults_placed(self):
        cfg = SimulationConfig(
            k=6, n=2, protocol="tp",
            faults=FaultConfig(static_node_faults=4),
            warmup_cycles=10, measure_cycles=10, seed=5,
        )
        sim = NetworkSimulator(cfg)
        assert len(sim.faults.faulty_nodes) == 4
        assert sim.faults.healthy_nodes_connected()

    def test_traffic_excludes_faulty_nodes(self):
        cfg = SimulationConfig(
            k=6, n=2, protocol="tp",
            faults=FaultConfig(static_node_faults=4),
            warmup_cycles=10, measure_cycles=10, seed=5,
        )
        sim = NetworkSimulator(cfg)
        assert set(sim.traffic.healthy_nodes).isdisjoint(
            sim.faults.faulty_nodes
        )

    def test_dynamic_schedule_built(self):
        cfg = SimulationConfig(
            k=6, n=2, protocol="tp",
            faults=FaultConfig(dynamic_faults=3),
            warmup_cycles=100, measure_cycles=100,
        )
        sim = NetworkSimulator(cfg)
        assert sim.engine.dynamic_schedule is not None
        assert len(sim.engine.dynamic_schedule.events) == 3

    def test_run_config_one_shot(self):
        cfg = SimulationConfig(
            k=5, n=2, protocol="tp", offered_load=0.05,
            warmup_cycles=100, measure_cycles=400, seed=3,
        )
        result = run_config(cfg)
        assert result.delivered > 0
        assert result.latency_count == len(result.latencies)

    def test_same_seed_reproducible(self):
        cfg = SimulationConfig(
            k=5, n=2, protocol="tp", offered_load=0.08,
            warmup_cycles=100, measure_cycles=500, seed=42,
        )
        a = run_config(cfg)
        b = run_config(cfg)
        assert a.latency_mean == b.latency_mean
        assert a.throughput == b.throughput
        assert a.delivered == b.delivered

    def test_different_seed_differs(self):
        base = SimulationConfig(
            k=5, n=2, protocol="tp", offered_load=0.08,
            warmup_cycles=100, measure_cycles=500, seed=1,
        )
        a = run_config(base)
        b = run_config(base.with_(seed=2))
        assert (a.latency_mean, a.delivered) != (b.latency_mean, b.delivered)

    def test_explicit_protocol_instance(self):
        cfg = SimulationConfig(
            k=5, n=2, protocol="tp", offered_load=0.05,
            warmup_cycles=50, measure_cycles=200,
        )
        proto = TwoPhaseProtocol(k_unsafe=3)
        sim = NetworkSimulator(cfg, protocol=proto)
        assert sim.protocol is proto
        result = sim.run()
        assert result.delivered > 0

    def test_results_before_run_rejected(self):
        """Summarizing an engine that never ran has no measurement
        window to normalize throughput by; it must refuse loudly."""
        cfg = SimulationConfig(k=5, n=2, protocol="tp",
                               warmup_cycles=10, measure_cycles=10)
        with pytest.raises(ValueError, match="measurement window"):
            NetworkSimulator(cfg).results()
