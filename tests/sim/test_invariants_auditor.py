"""Runtime invariant auditor: clean runs stay clean, corruption is
pinned to a message/channel/cycle, and the engine raises
:class:`InvariantError` from :meth:`Engine.step` when auditing is on.
"""

import pytest

from repro.sim.config import ResilienceConfig, SimulationConfig
from repro.sim.invariants import InvariantAuditor, InvariantError, audit
from repro.sim.message import MessageStatus
from repro.sim.simulator import NetworkSimulator

from tests.conftest import build_engine


def audited_engine(**overrides):
    return build_engine(
        "tp", k=6, n=2,
        resilience=ResilienceConfig(audit_invariants=True, audit_every=1),
        **overrides,
    )


class TestCleanRuns:
    def test_full_simulation_audits_clean(self):
        cfg = SimulationConfig(
            k=6, n=2, protocol="tp", offered_load=0.10,
            message_length=8, warmup_cycles=100, measure_cycles=400,
            seed=7,
            resilience=ResilienceConfig(
                audit_invariants=True, audit_every=10
            ),
        )
        sim = NetworkSimulator(cfg)
        result = sim.run()
        assert result.invariant_checks > 0
        assert sim.engine.auditor.violations_found == 0
        assert result.delivered > 0

    def test_auditor_disabled_by_default(self):
        engine = build_engine("tp", k=6, n=2)
        assert engine.auditor is None

    def test_one_shot_audit_on_idle_engine(self):
        engine = build_engine("tp", k=6, n=2)
        assert audit(engine) == []


class TestCorruptionDetection:
    def test_flit_conservation_violation(self):
        engine = audited_engine()
        msg = engine.inject(0, 3)
        msg.killed_flits += 1  # flits destroyed out of thin air
        violations = audit(engine)
        kinds = {v.kind for v in violations}
        assert "flit-conservation" in kinds
        bad = next(v for v in violations if v.kind == "flit-conservation")
        assert bad.msg_id == msg.msg_id

    def test_buffer_bounds_violation(self):
        engine = audited_engine()
        msg = engine.inject(0, 3)
        for _ in range(6):
            engine.step()
        assert msg.path, "message should have reserved its first link"
        msg.buffered[0] = engine.config.buffer_depth + 5
        violations = InvariantAuditor(engine).audit()
        assert any(v.kind == "buffer-bounds" for v in violations)

    def test_vc_state_violation(self):
        engine = audited_engine()
        vc = engine.channels.vc(0, 0)
        vc.owner = 999  # FREE VC with an owner
        violations = audit(engine)
        assert any(v.kind == "vc-state" for v in violations)

    def test_orphaned_reservation_violation(self):
        engine = audited_engine()
        engine.channels.vc(0, 0).reserve(999)  # no such message
        violations = audit(engine)
        assert any(v.kind == "orphaned-reservation" for v in violations)

    def test_index_violation(self):
        engine = audited_engine()
        msg = engine.inject(0, 3)
        # Terminal status while still indexed in the active map.
        msg.status = MessageStatus.DELIVERED
        violations = InvariantAuditor(engine).audit()
        assert any(v.kind == "index" for v in violations)


class TestEngineIntegration:
    def test_step_raises_invariant_error_on_corruption(self):
        engine = audited_engine()
        msg = engine.inject(0, 3)
        for _ in range(4):
            engine.step()
        msg.killed_flits += 3
        with pytest.raises(InvariantError) as excinfo:
            for _ in range(4):
                engine.step()
        assert excinfo.value.violations
        assert "flit-conservation" in str(excinfo.value)

    def test_audit_every_gates_the_frequency(self):
        engine = build_engine(
            "tp", k=6, n=2,
            resilience=ResilienceConfig(
                audit_invariants=True, audit_every=8
            ),
        )
        for _ in range(16):
            engine.step()
        assert engine.auditor.checks_run == 2

    def test_violation_str_names_cycle_message_channel(self):
        engine = audited_engine()
        engine.channels.vc(5, 1).reserve(42)
        violation = next(
            v for v in audit(engine) if v.kind == "orphaned-reservation"
        )
        text = str(violation)
        assert "msg 42" in text
        assert "ch 5" in text
        assert "cycle" in text
