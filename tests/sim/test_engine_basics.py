"""Engine behaviour tests: injection, ejection, queues, bookkeeping."""

import random

import pytest

from repro.network.topology import PLUS
from repro.sim.config import SimulationConfig
from repro.sim.engine import DeadlockError, Engine
from repro.sim.message import MessageStatus
from repro.sim.simulator import NetworkSimulator, make_protocol

from tests.conftest import build_engine, drain_engine, run_to_completion


class TestInjection:
    def test_inject_rejects_self_loop(self):
        engine = build_engine("tp")
        with pytest.raises(ValueError):
            engine.inject(3, 3)

    def test_second_message_waits_in_queue(self):
        engine = build_engine("tp", k=8)
        first = engine.inject(0, 4, length=8)
        second = engine.inject(0, 4, length=8)
        assert first.status is MessageStatus.ACTIVE
        assert second.status is MessageStatus.QUEUED

    def test_queued_message_launches_after_first_clears_source(self):
        engine = build_engine("tp", k=8)
        engine.inject(0, 4, length=4)
        second = engine.inject(0, 4, length=4)
        drain_engine(engine)
        assert second.status is MessageStatus.DELIVERED

    def test_per_source_serialization_orders_delivery(self):
        engine = build_engine("tp", k=8)
        first = engine.inject(0, 4, length=8)
        second = engine.inject(0, 4, length=8)
        drain_engine(engine)
        assert first.delivered_cycle < second.delivered_cycle


class TestEjectionSharing:
    def test_two_messages_same_destination_share_pe_link(self):
        engine = build_engine("tp", k=8, message_length=16)
        a = engine.inject(0, 2, length=16)
        b = engine.inject(4, 2, length=16)  # same destination, other side
        drain_engine(engine)
        assert a.status is MessageStatus.DELIVERED
        assert b.status is MessageStatus.DELIVERED
        # Sharing the single ejection link must slow at least one of
        # them beyond its idle-network latency (2 hops + 16 flits = 18).
        latencies = sorted(
            m.delivered_cycle - m.created_cycle for m in (a, b)
        )
        assert latencies[1] > 18


class TestCongestionControl:
    def test_queue_limit_rejects_offered_traffic(self):
        cfg = SimulationConfig(
            k=4, n=2, protocol="tp", offered_load=1.0,
            message_length=32, injection_queue_limit=2,
            warmup_cycles=0, measure_cycles=300,
        )
        sim = NetworkSimulator(cfg)
        sim.engine.run(300)
        assert sim.engine.rejected_messages > 0
        for queue in sim.engine.queues:
            assert len(queue) <= 2

    def test_accepted_not_above_offered(self):
        cfg = SimulationConfig(
            k=4, n=2, protocol="tp", offered_load=0.5,
            warmup_cycles=50, measure_cycles=400,
        )
        result = NetworkSimulator(cfg).run()
        assert result.accepted_load <= result.offered_load + 1e-9


class TestBookkeeping:
    def test_records_appended_on_delivery(self):
        engine = build_engine("tp", k=8)
        engine.inject(0, 5, length=4)
        drain_engine(engine)
        assert len(engine.records) == 1
        rec = engine.records[0]
        assert rec.status == "DELIVERED"
        assert rec.hops >= rec.distance

    def test_network_drained_after_completion(self):
        engine = build_engine("tp", k=8)
        engine.inject(0, 5, length=4)
        drain_engine(engine)
        assert engine.network_drained()

    def test_message_removed_from_tracking(self):
        engine = build_engine("tp", k=8)
        msg = engine.inject(0, 5, length=4)
        drain_engine(engine)
        assert msg.msg_id not in engine.active
        assert msg.msg_id not in engine.messages

    def test_flit_conservation_throughout_run(self):
        engine = build_engine("tp", k=8)
        msgs = [
            engine.inject(0, 9, length=6),
            engine.inject(5, 60, length=6),
            engine.inject(33, 12, length=6),
        ]
        for _ in range(200):
            engine.step()
            for msg in msgs:
                assert msg.flit_conservation_ok()
            if all(m.is_terminal() for m in msgs):
                break

    def test_control_flits_counted_for_decoupled_header(self):
        engine = build_engine("mb", k=8)
        engine.inject(0, 4, length=4)
        drain_engine(engine)
        # Header hops + path ack hops at minimum.
        assert engine.control_flits_sent >= 8

    def test_inline_protocol_uses_no_control_flits(self):
        engine = build_engine("dp", k=8)
        engine.inject(0, 4, length=4)
        drain_engine(engine)
        assert engine.control_flits_sent == 0


class TestWatchdog:
    def test_deadlock_error_on_artificial_stall(self):
        engine = build_engine("tp", k=4, watchdog_cycles=50)
        msg = engine.inject(0, 5, length=4)
        # Freeze the message so nothing ever progresses.
        msg.teardown = True
        engine.pending.pop(msg.msg_id, None)
        with pytest.raises(DeadlockError):
            for _ in range(200):
                engine.step()

    def test_no_watchdog_when_idle_without_messages(self):
        engine = build_engine("tp", k=4, watchdog_cycles=10)
        for _ in range(100):
            engine.step()  # no messages: idle is fine


class TestMeasurementWindow:
    def test_throughput_counted_only_in_window(self):
        cfg = SimulationConfig(
            k=4, n=2, protocol="tp", offered_load=0.1,
            warmup_cycles=200, measure_cycles=200, drain_cycles=2000,
            seed=5,
        )
        sim = NetworkSimulator(cfg)
        sim.engine.run(cfg.total_cycles)
        measured_at_end = sim.engine.measured_delivered_flits
        sim.engine.drain(cfg.drain_cycles)
        assert sim.engine.measured_delivered_flits == measured_at_end

    def test_measure_window_cycles(self):
        engine = build_engine("tp", warmup_cycles=10, measure_cycles=100)
        assert engine.measure_window_cycles() == 0
        engine.run(10)
        assert engine.measure_window_cycles() == 0
        engine.run(30)
        assert engine.measure_window_cycles() == 30
        engine.run(200)
        assert engine.measure_window_cycles() == 100
