"""Determinism regression suite (the engine refactor's safety net).

Two simulations built from the same :class:`SimulationConfig` (same
seed) must be *byte-identical*: every field of the resulting
:class:`RunResult` — including the full latency sample list, the
deadlock-victim order, and every counter — must match exactly.  This is
what makes aggressive scheduling refactors in the engine safe to land,
and it is the foundation of the parallel campaign runner's
serial-equivalence guarantee (a worker process replays the same config
and must reach the same result).

The matrix covers every flow-control mechanism of the paper: wormhole
(DP), scouting SR(K) (TP conservative), PCS (MB-m), TP aggressive, and
plain dimension-order — plus a dynamic-fault scenario and a
deadlock-recovery scenario, which exercise the teardown/kill machinery.

Every pinned config additionally runs with the quiescence fast-forward
forced on and forced off: the two paths must produce byte-identical
RunResults (the event-horizon jump may only skip cycles that are
provably no-ops), including under a chaos hook and composed through
``parallel.run_configs``.

The event-driven engine core (``SimulationConfig.event_engine``,
DESIGN.md §11) gets the same treatment crossed with the fast-forward
switch: every pinned config runs with the ready-set scheduler forced on
and forced off at each fast-forward setting, and the four paths must be
byte-identical — the brute-force scans are the oracle the event paths
are measured against.

The SoA flit-transport kernel (``SimulationConfig.data_kernel``,
DESIGN.md §12) closes the matrix: every pinned config runs with the
kernel forced on and forced off at each (event engine, fast-forward)
setting — the object walk is the kernel's oracle — including the
chaos-hooked scenario and composition through ``parallel.run_configs``.
"""

import dataclasses
import random

import pytest

from repro.faults.chaos import ChaosController
from repro.faults.injection import DynamicFaultSchedule
from repro.sim.config import (
    FaultConfig,
    RecoveryConfig,
    ResilienceConfig,
    SimulationConfig,
)
from repro.sim.parallel import run_configs
from repro.sim.simulator import NetworkSimulator


def run_twice(cfg: SimulationConfig):
    return NetworkSimulator(cfg).run(), NetworkSimulator(cfg).run()


def run_ff_pair(cfg: SimulationConfig):
    """The same config with fast-forward forced on and forced off."""
    on = NetworkSimulator(cfg.with_(fast_forward=True)).run()
    off = NetworkSimulator(cfg.with_(fast_forward=False)).run()
    return on, off


def run_ev_pair(cfg: SimulationConfig, fast_forward: bool = True):
    """The same config with the event engine forced on and forced off."""
    on = NetworkSimulator(
        cfg.with_(event_engine=True, fast_forward=fast_forward)
    ).run()
    off = NetworkSimulator(
        cfg.with_(event_engine=False, fast_forward=fast_forward)
    ).run()
    return on, off


def run_dk_pair(cfg: SimulationConfig, event_engine: bool = True,
                fast_forward: bool = True):
    """The same config with the SoA data kernel forced on and off."""
    on = NetworkSimulator(cfg.with_(
        data_kernel=True, event_engine=event_engine,
        fast_forward=fast_forward,
    )).run()
    off = NetworkSimulator(cfg.with_(
        data_kernel=False, event_engine=event_engine,
        fast_forward=fast_forward,
    )).run()
    return on, off


def assert_identical(a, b):
    """Field-by-field equality, reported per field for diagnosis."""
    da = dataclasses.asdict(a)
    db = dataclasses.asdict(b)
    assert set(da) == set(db)
    for name in da:
        assert da[name] == db[name], (
            f"RunResult.{name} differs between identical-config runs: "
            f"{da[name]!r} != {db[name]!r}"
        )


PROTOCOL_MATRIX = [
    # (id, protocol, protocol_params)
    ("wr-dp", "dp", {}),
    ("pcs-mb", "mb", {}),
    ("tp-aggressive", "tp", {"k_unsafe": 0}),
    ("sr-tp-conservative", "tp", {"k_unsafe": 3}),
    ("det", "det", {}),
]


def _protocol_cfg(protocol, params):
    return SimulationConfig(
        k=6, n=2, protocol=protocol, protocol_params=params,
        offered_load=0.10, message_length=8,
        warmup_cycles=150, measure_cycles=600, drain_cycles=2000,
        seed=17,
    )


def _static_fault_cfg():
    return SimulationConfig(
        k=6, n=2, protocol="tp", offered_load=0.08, message_length=8,
        warmup_cycles=150, measure_cycles=600, drain_cycles=2000,
        seed=9, faults=FaultConfig(static_node_faults=3),
    )


def _dynamic_fault_cfg():
    return SimulationConfig(
        k=6, n=2, protocol="tp", offered_load=0.08, message_length=8,
        warmup_cycles=150, measure_cycles=800, drain_cycles=4000,
        seed=19,
        faults=FaultConfig(dynamic_faults=4, dynamic_start=150),
        recovery=RecoveryConfig(tail_ack=True, retransmit=True),
    )


def _hardware_ack_cfg():
    return SimulationConfig(
        k=6, n=2, protocol="tp", protocol_params={"k_unsafe": 3},
        offered_load=0.10, message_length=8, hardware_acks=True,
        warmup_cycles=150, measure_cycles=600, drain_cycles=2000,
        seed=21,
    )


def _deadlock_recovery_cfg():
    return SimulationConfig(
        k=6, n=2, protocol="det", protocol_params={"dateline": False},
        offered_load=0.30, message_length=16,
        warmup_cycles=100, measure_cycles=800, drain_cycles=8000,
        seed=3, watchdog_cycles=120, max_header_wait=6000,
    )


def _low_load_idle_cfg():
    # Mostly-quiescent run: the fast-forward path dominates here.
    return SimulationConfig(
        k=6, n=2, protocol="tp", offered_load=0.005, message_length=8,
        warmup_cycles=300, measure_cycles=2500, drain_cycles=2000,
        seed=5,
    )


def _audited_cfg():
    # Invariant-audit ticks are part of the event horizon.
    return SimulationConfig(
        k=5, n=2, protocol="tp", offered_load=0.02, message_length=8,
        warmup_cycles=150, measure_cycles=900, drain_cycles=2000,
        seed=13,
        resilience=ResilienceConfig(audit_invariants=True, audit_every=25),
    )


def _reconfig_cfg():
    # Online reconfiguration: accumulating dynamic link faults push
    # recovery pressure over the threshold, so the controller's
    # monitor/drain/commit cycle (and its event horizon) is exercised.
    return SimulationConfig(
        k=6, n=2, protocol="tp", offered_load=0.08, message_length=8,
        warmup_cycles=150, measure_cycles=800, drain_cycles=4000,
        seed=9, watchdog_cycles=120, max_header_wait=6000,
        faults=FaultConfig(dynamic_faults=8, dynamic_start=150),
        resilience=ResilienceConfig(
            audit_invariants=True, audit_every=20,
            reconfig=True, reconfig_check_every=16,
            reconfig_window=256, reconfig_threshold=2,
            reconfig_drain_timeout=120, reconfig_cooldown=300,
            reconfig_unsafe_radius=2,
        ),
    )


def _reconfig_idle_cfg():
    # Reconfiguration armed but never triggered on a mostly-quiescent
    # network: the controller's monitor ticks join the event horizon
    # and must not break the quiescence skip.
    return SimulationConfig(
        k=6, n=2, protocol="tp", offered_load=0.005, message_length=8,
        warmup_cycles=300, measure_cycles=2500, drain_cycles=2000,
        seed=5,
        resilience=ResilienceConfig(
            audit_invariants=True, audit_every=50, reconfig=True,
        ),
    )


#: Workload-catalog matrix (EXPERIMENTS.md): every traffic pattern must
#: honor the injection-process fast-forward contract, including bursty
#: dwell draws and the hotspot/bursty combination.  Low load so the
#: quiescence skip path genuinely engages for each pattern.
TRAFFIC_MATRIX = [
    # (id, traffic, traffic_params)
    ("hotspot", "hotspot", {"hotspot_fraction": 0.4, "hotspot_count": 2}),
    ("transpose", "transpose", {}),
    ("complement", "complement", {}),
    ("tornado", "tornado", {}),
    ("bursty", "bursty", {"burst_on": 24, "burst_off": 96}),
    ("hotspot-bursty", "hotspot",
     {"hotspot_fraction": 0.4, "burst_on": 24, "burst_off": 96,
      "burst_off_load": 0.1}),
]


def _traffic_cfg(traffic, params):
    return SimulationConfig(
        k=6, n=2, protocol="tp", offered_load=0.02, message_length=8,
        traffic=traffic, traffic_params=params,
        warmup_cycles=200, measure_cycles=1500, drain_cycles=2000,
        seed=23,
    )


#: Every pinned configuration of this suite, by id; the fast-forward
#: equivalence test runs each with the skip path forced on and off.
PINNED_CONFIGS = {
    **{
        f"proto-{pid}": (lambda p=proto, kw=params: _protocol_cfg(p, kw))
        for pid, proto, params in PROTOCOL_MATRIX
    },
    **{
        f"traffic-{tid}": (lambda t=traffic, kw=params: _traffic_cfg(t, kw))
        for tid, traffic, params in TRAFFIC_MATRIX
    },
    "static-faults": _static_fault_cfg,
    "dynamic-faults": _dynamic_fault_cfg,
    "hardware-acks": _hardware_ack_cfg,
    "deadlock-recovery": _deadlock_recovery_cfg,
    "low-load-idle": _low_load_idle_cfg,
    "audited": _audited_cfg,
    "reconfig": _reconfig_cfg,
    "reconfig-idle": _reconfig_idle_cfg,
}


@pytest.mark.parametrize(
    "protocol,params",
    [m[1:] for m in PROTOCOL_MATRIX],
    ids=[m[0] for m in PROTOCOL_MATRIX],
)
def test_protocol_determinism(protocol, params):
    cfg = _protocol_cfg(protocol, params)
    a, b = run_twice(cfg)
    assert a.delivered > 0
    assert_identical(a, b)


@pytest.mark.parametrize("seed", [1, 2, 3])
def test_seed_sensitivity_and_stability(seed):
    """Each seed is stable; different seeds genuinely differ."""
    base = SimulationConfig(
        k=5, n=2, protocol="tp", offered_load=0.08, message_length=8,
        warmup_cycles=100, measure_cycles=500, drain_cycles=1500,
    )
    a, b = run_twice(base.with_(seed=seed))
    assert_identical(a, b)
    other = NetworkSimulator(base.with_(seed=seed + 10)).run()
    assert (a.latency_mean, a.delivered) != (
        other.latency_mean, other.delivered
    )


def test_static_fault_determinism():
    cfg = _static_fault_cfg()
    a, b = run_twice(cfg)
    assert a.delivered > 0
    assert_identical(a, b)


def test_dynamic_fault_determinism():
    """Dynamic faults drive kill-flit teardown and retransmission."""
    cfg = _dynamic_fault_cfg()
    a, b = run_twice(cfg)
    assert a.delivered > 0
    assert a.teardown_counts.get("fault", 0) > 0, (
        "scenario must actually exercise fault teardown"
    )
    assert_identical(a, b)


def test_reconfig_determinism():
    """Online reconfiguration (drain, ejection order, commit cycle)
    must replay exactly, and the pinned scenario must actually
    reconfigure — otherwise its matrix entries prove nothing."""
    cfg = _reconfig_cfg()
    a, b = run_twice(cfg)
    assert a.delivered > 0
    assert a.reconfigurations > 0, (
        "scenario must actually commit a reconfiguration"
    )
    assert_identical(a, b)


def test_reconfig_idle_never_triggers():
    """The idle pinned config arms the controller without firing it."""
    result = NetworkSimulator(_reconfig_idle_cfg()).run()
    assert result.reconfigurations == 0
    assert result.reconfig_downtime == 0


def test_hardware_ack_determinism():
    """The dedicated-ack wires use a separate active set in the engine."""
    cfg = _hardware_ack_cfg()
    a, b = run_twice(cfg)
    assert a.delivered > 0
    assert_identical(a, b)


def test_deadlock_recovery_determinism():
    """Victim selection and ejection order must replay exactly."""
    cfg = _deadlock_recovery_cfg()
    a, b = run_twice(cfg)
    assert a.deadlock_recoveries > 0, (
        "gridlock scenario must actually trigger recovery"
    )
    assert a.deadlock_victims == b.deadlock_victims
    assert_identical(a, b)


# ======================================================================
# Quiescence fast-forward: forced on vs forced off must be identical.
# ======================================================================
@pytest.mark.parametrize("name", sorted(PINNED_CONFIGS))
def test_fast_forward_on_off_identical(name):
    """The event-horizon jump may only skip provably no-op cycles."""
    on, off = run_ff_pair(PINNED_CONFIGS[name]())
    assert_identical(on, off)


def test_fast_forward_actually_skips_cycles():
    """The low-load pinned config must exercise the skip path."""
    sim = NetworkSimulator(_low_load_idle_cfg().with_(fast_forward=True))
    sim.run()
    assert sim.engine.fast_forwarded_cycles > 0


@pytest.mark.parametrize(
    "traffic,params",
    [m[1:] for m in TRAFFIC_MATRIX],
    ids=[m[0] for m in TRAFFIC_MATRIX],
)
def test_traffic_patterns_exercise_skip_path(traffic, params):
    """Each catalog pattern's pinned config must genuinely fast-forward
    (otherwise its on/off equivalence test proves nothing)."""
    sim = NetworkSimulator(
        _traffic_cfg(traffic, params).with_(fast_forward=True)
    )
    result = sim.run()
    assert result.delivered > 0
    assert sim.engine.fast_forwarded_cycles > 0


def _chaos_hooked_run(fast_forward: bool, event_engine: bool = True,
                      data_kernel: bool = True):
    """One chaos-hooked simulation; returns (RunResult, controller)."""
    cfg = SimulationConfig(
        k=6, n=2, protocol="tp", offered_load=0.05, message_length=8,
        warmup_cycles=100, measure_cycles=600, drain_cycles=3000,
        seed=7, watchdog_cycles=120, max_header_wait=6000,
        resilience=ResilienceConfig(audit_invariants=True, audit_every=20),
        fast_forward=fast_forward, event_engine=event_engine,
        data_kernel=data_kernel,
    )
    sim = NetworkSimulator(cfg)
    engine = sim.engine
    engine.dynamic_schedule = DynamicFaultSchedule()
    controller = ChaosController(
        engine.dynamic_schedule,
        random.Random(4242),
        burst_cycles=[250, 450],
        burst_size=2,
        node_fault_fraction=0.25,
    )
    result = sim.run(on_cycle=controller)
    return result, controller


def test_chaos_hook_fast_forward_identical():
    """The chaos hook declares its next event; skipping must not change
    which bursts fire, where, or what they hit."""
    on_result, on_ctrl = _chaos_hooked_run(True)
    off_result, off_ctrl = _chaos_hooked_run(False)
    assert on_ctrl.faults_injected == off_ctrl.faults_injected
    assert on_ctrl.triggers_hit == off_ctrl.triggers_hit
    assert on_ctrl.faults_injected > 0, (
        "scenario must actually inject chaos faults"
    )
    assert_identical(on_result, off_result)


def test_undeclared_hook_disables_fast_forward():
    """A hook without next_event_cycle sees every single cycle."""
    cfg = _low_load_idle_cfg().with_(fast_forward=True)
    sim = NetworkSimulator(cfg)
    seen = []
    sim.run(on_cycle=lambda engine: seen.append(engine.cycle))
    assert seen == list(range(1, cfg.total_cycles + 1))
    assert sim.engine.fast_forwarded_cycles == 0


def test_parallel_run_configs_fast_forward_composition():
    """parallel.run_configs composes with fast-forward: a parallel
    fast-forwarded campaign equals a serial cycle-by-cycle one."""
    base = SimulationConfig(
        k=5, n=2, protocol="tp", offered_load=0.03, message_length=8,
        warmup_cycles=100, measure_cycles=500, drain_cycles=1500,
    )
    seeds = (1, 2, 3)
    on = run_configs(
        [base.with_(seed=s, fast_forward=True) for s in seeds], jobs=2
    )
    off = run_configs(
        [base.with_(seed=s, fast_forward=False) for s in seeds], jobs=1
    )
    for a, b in zip(on, off):
        assert_identical(a, b)


def test_parallel_run_configs_reconfig_composition():
    """Reconfiguration-enabled runs survive the same parallel/serial,
    fast-forward on/off cross — workers rebuild the controller from the
    config and must replay the drain/commit sequence exactly."""
    base = _reconfig_cfg()
    seeds = (9, 19)
    on = run_configs(
        [base.with_(seed=s, fast_forward=True) for s in seeds], jobs=2
    )
    off = run_configs(
        [base.with_(seed=s, fast_forward=False) for s in seeds], jobs=1
    )
    assert any(r.reconfigurations > 0 for r in on)
    for a, b in zip(on, off):
        assert_identical(a, b)


# ======================================================================
# Event-driven engine core: ready-set scheduling forced on vs the
# brute-force scans, crossed with the fast-forward switch (DESIGN.md
# §11 — this matrix is the rewrite's acceptance bar).
# ======================================================================
@pytest.mark.parametrize("ff", [True, False], ids=["ff-on", "ff-off"])
@pytest.mark.parametrize("name", sorted(PINNED_CONFIGS))
def test_event_engine_on_off_identical(name, ff):
    """The ready sets may only skip work the full scans prove no-op."""
    on, off = run_ev_pair(PINNED_CONFIGS[name](), fast_forward=ff)
    assert_identical(on, off)


def test_event_engine_actually_parks_and_quiets():
    """A loaded run must exercise every ready-set layer — otherwise the
    on/off matrix proves nothing about the skip paths."""
    cfg = _protocol_cfg("tp", {"k_unsafe": 0}).with_(
        offered_load=0.25, event_engine=True
    )
    sim = NetworkSimulator(cfg)
    engine = sim.engine
    saw_parked = saw_quiet = False
    seen_attn = []
    # The launch phase consumes the attention set, so sample it on
    # entry (after the earlier phases added terminal/ejected sources).
    orig_traffic = engine._phase_traffic

    def spy_traffic():
        if engine._launch_attn:
            seen_attn.append(engine.cycle)
        orig_traffic()

    engine._phase_traffic = spy_traffic
    for _ in range(cfg.total_cycles):
        engine.step()
        saw_parked = saw_parked or any(
            m.parked for m in engine.pending.values()
        )
        saw_quiet = saw_quiet or any(
            m.dm_quiet for m in engine.active.values()
        )
    saw_attn = bool(seen_attn)
    assert saw_parked, "no routing header ever parked"
    assert saw_quiet, "no message ever went data-movement quiet"
    assert saw_attn, "the launch attention set never armed"


def test_chaos_hook_event_engine_identical():
    """Chaos-driven fault bursts (teardown, kill flits, retransmits)
    must hit the same victims on the event and brute-force paths."""
    on_result, on_ctrl = _chaos_hooked_run(True, event_engine=True)
    off_result, off_ctrl = _chaos_hooked_run(True, event_engine=False)
    assert on_ctrl.faults_injected == off_ctrl.faults_injected
    assert on_ctrl.triggers_hit == off_ctrl.triggers_hit
    assert on_ctrl.faults_injected > 0
    assert_identical(on_result, off_result)


def test_parallel_run_configs_event_engine_composition():
    """Workers replaying event-engine configs must equal a serial
    brute-force campaign (the parallel runner's serial-equivalence
    guarantee composed with the ready-set scheduler)."""
    base = SimulationConfig(
        k=5, n=2, protocol="tp", offered_load=0.08, message_length=8,
        warmup_cycles=100, measure_cycles=500, drain_cycles=1500,
    )
    seeds = (1, 2, 3)
    on = run_configs(
        [base.with_(seed=s, event_engine=True) for s in seeds], jobs=2
    )
    off = run_configs(
        [base.with_(seed=s, event_engine=False) for s in seeds], jobs=1
    )
    for a, b in zip(on, off):
        assert_identical(a, b)


def test_parallel_run_configs_event_engine_reconfig_composition():
    """The hardest composition: reconfiguration drain/commit epochs,
    dynamic faults, and audit ticks under the event engine across
    parallel workers."""
    base = _reconfig_cfg()
    seeds = (9, 19)
    on = run_configs(
        [base.with_(seed=s, event_engine=True) for s in seeds], jobs=2
    )
    off = run_configs(
        [base.with_(seed=s, event_engine=False) for s in seeds], jobs=1
    )
    assert any(r.reconfigurations > 0 for r in on)
    for a, b in zip(on, off):
        assert_identical(a, b)


# ======================================================================
# SoA flit-transport kernel: data_kernel on vs the object-walk oracle,
# crossed with the event-engine and fast-forward switches (DESIGN.md
# §12 — the kernel's byte-identity acceptance bar).
# ======================================================================
@pytest.mark.parametrize("ff", [True, False], ids=["ff-on", "ff-off"])
@pytest.mark.parametrize("ev", [True, False], ids=["ev-on", "ev-off"])
@pytest.mark.parametrize("name", sorted(PINNED_CONFIGS))
def test_data_kernel_on_off_identical(name, ev, ff):
    """The kernel may reorder work internally but never its effects:
    every pinned config must produce a byte-identical RunResult with
    the SoA data phase on and off, at every scheduler setting."""
    on, off = run_dk_pair(
        PINNED_CONFIGS[name](), event_engine=ev, fast_forward=ff
    )
    assert_identical(on, off)


def test_data_kernel_actually_engages():
    """A loaded run must actually execute kernel cycles — otherwise
    the on/off matrix only proves the fallback path works."""
    cfg = _protocol_cfg("tp", {"k_unsafe": 0}).with_(
        offered_load=0.25, data_kernel=True
    )
    sim = NetworkSimulator(cfg)
    sim.run()
    assert sim.engine.kernel_cycles > 0, (
        "the SoA kernel never ran a data phase"
    )
    # The low-occupancy fallback must engage too: idle stretches stay
    # on the object walk.
    assert sim.engine.kernel_cycles < sim.engine.cycle


def test_chaos_hook_data_kernel_identical():
    """Chaos-driven teardown bursts must leave kernel rows and object
    lists agreeing — same victims, same RunResult, with and without
    the SoA data phase."""
    on_result, on_ctrl = _chaos_hooked_run(True, data_kernel=True)
    off_result, off_ctrl = _chaos_hooked_run(True, data_kernel=False)
    assert on_ctrl.faults_injected == off_ctrl.faults_injected
    assert on_ctrl.triggers_hit == off_ctrl.triggers_hit
    assert on_ctrl.faults_injected > 0
    assert_identical(on_result, off_result)


def test_parallel_run_configs_data_kernel_composition():
    """Workers replaying kernel-on configs must equal a serial
    object-walk campaign — numpy state is rebuilt per process and may
    not leak into results."""
    base = SimulationConfig(
        k=5, n=2, protocol="tp", offered_load=0.12, message_length=8,
        warmup_cycles=100, measure_cycles=500, drain_cycles=1500,
    )
    seeds = (1, 2, 3)
    on = run_configs(
        [base.with_(seed=s, data_kernel=True) for s in seeds], jobs=2
    )
    off = run_configs(
        [base.with_(seed=s, data_kernel=False) for s in seeds], jobs=1
    )
    for a, b in zip(on, off):
        assert_identical(a, b)
