"""Determinism regression suite (the engine refactor's safety net).

Two simulations built from the same :class:`SimulationConfig` (same
seed) must be *byte-identical*: every field of the resulting
:class:`RunResult` — including the full latency sample list, the
deadlock-victim order, and every counter — must match exactly.  This is
what makes aggressive scheduling refactors in the engine safe to land,
and it is the foundation of the parallel campaign runner's
serial-equivalence guarantee (a worker process replays the same config
and must reach the same result).

The matrix covers every flow-control mechanism of the paper: wormhole
(DP), scouting SR(K) (TP conservative), PCS (MB-m), TP aggressive, and
plain dimension-order — plus a dynamic-fault scenario and a
deadlock-recovery scenario, which exercise the teardown/kill machinery.
"""

import dataclasses

import pytest

from repro.sim.config import FaultConfig, RecoveryConfig, SimulationConfig
from repro.sim.simulator import NetworkSimulator


def run_twice(cfg: SimulationConfig):
    return NetworkSimulator(cfg).run(), NetworkSimulator(cfg).run()


def assert_identical(a, b):
    """Field-by-field equality, reported per field for diagnosis."""
    da = dataclasses.asdict(a)
    db = dataclasses.asdict(b)
    assert set(da) == set(db)
    for name in da:
        assert da[name] == db[name], (
            f"RunResult.{name} differs between identical-config runs: "
            f"{da[name]!r} != {db[name]!r}"
        )


PROTOCOL_MATRIX = [
    # (id, protocol, protocol_params)
    ("wr-dp", "dp", {}),
    ("pcs-mb", "mb", {}),
    ("tp-aggressive", "tp", {"k_unsafe": 0}),
    ("sr-tp-conservative", "tp", {"k_unsafe": 3}),
    ("det", "det", {}),
]


@pytest.mark.parametrize(
    "protocol,params",
    [m[1:] for m in PROTOCOL_MATRIX],
    ids=[m[0] for m in PROTOCOL_MATRIX],
)
def test_protocol_determinism(protocol, params):
    cfg = SimulationConfig(
        k=6, n=2, protocol=protocol, protocol_params=params,
        offered_load=0.10, message_length=8,
        warmup_cycles=150, measure_cycles=600, drain_cycles=2000,
        seed=17,
    )
    a, b = run_twice(cfg)
    assert a.delivered > 0
    assert_identical(a, b)


@pytest.mark.parametrize("seed", [1, 2, 3])
def test_seed_sensitivity_and_stability(seed):
    """Each seed is stable; different seeds genuinely differ."""
    base = SimulationConfig(
        k=5, n=2, protocol="tp", offered_load=0.08, message_length=8,
        warmup_cycles=100, measure_cycles=500, drain_cycles=1500,
    )
    a, b = run_twice(base.with_(seed=seed))
    assert_identical(a, b)
    other = NetworkSimulator(base.with_(seed=seed + 10)).run()
    assert (a.latency_mean, a.delivered) != (
        other.latency_mean, other.delivered
    )


def test_static_fault_determinism():
    cfg = SimulationConfig(
        k=6, n=2, protocol="tp", offered_load=0.08, message_length=8,
        warmup_cycles=150, measure_cycles=600, drain_cycles=2000,
        seed=9, faults=FaultConfig(static_node_faults=3),
    )
    a, b = run_twice(cfg)
    assert a.delivered > 0
    assert_identical(a, b)


def test_dynamic_fault_determinism():
    """Dynamic faults drive kill-flit teardown and retransmission."""
    cfg = SimulationConfig(
        k=6, n=2, protocol="tp", offered_load=0.08, message_length=8,
        warmup_cycles=150, measure_cycles=800, drain_cycles=4000,
        seed=11,
        faults=FaultConfig(dynamic_faults=4, dynamic_start=150),
        recovery=RecoveryConfig(tail_ack=True, retransmit=True),
    )
    a, b = run_twice(cfg)
    assert a.delivered > 0
    assert a.teardown_counts.get("fault", 0) > 0, (
        "scenario must actually exercise fault teardown"
    )
    assert_identical(a, b)


def test_hardware_ack_determinism():
    """The dedicated-ack wires use a separate active set in the engine."""
    cfg = SimulationConfig(
        k=6, n=2, protocol="tp", protocol_params={"k_unsafe": 3},
        offered_load=0.10, message_length=8, hardware_acks=True,
        warmup_cycles=150, measure_cycles=600, drain_cycles=2000,
        seed=21,
    )
    a, b = run_twice(cfg)
    assert a.delivered > 0
    assert_identical(a, b)


def test_deadlock_recovery_determinism():
    """Victim selection and ejection order must replay exactly."""
    cfg = SimulationConfig(
        k=6, n=2, protocol="det", protocol_params={"dateline": False},
        offered_load=0.30, message_length=16,
        warmup_cycles=100, measure_cycles=800, drain_cycles=8000,
        seed=3, watchdog_cycles=120, max_header_wait=6000,
    )
    a, b = run_twice(cfg)
    assert a.deadlock_recoveries > 0, (
        "gridlock scenario must actually trigger recovery"
    )
    assert a.deadlock_victims == b.deadlock_victims
    assert_identical(a, b)
