"""RouteCache: memoized candidate sets and epoch invalidation."""

from repro.faults.model import FaultState
from repro.network.topology import KAryNCube
from repro.routing.cache import RouteCache
from repro.routing.dimension_order import deterministic_route


def _setup(k=5, n=2):
    topo = KAryNCube(k, n)
    faults = FaultState(topo)
    return topo, faults, RouteCache(topo, faults)


def _fresh_adaptive(topo, faults, node, dst, require_safe):
    """Reference computation, bypassing any cache."""
    out = []
    for dim, direction in topo.profitable_ports(node, dst):
        ch = topo.channel_id(node, dim, direction)
        if faults.channel_faulty[ch]:
            continue
        if require_safe is True and faults.channel_unsafe[ch]:
            continue
        if require_safe is False and not faults.channel_unsafe[ch]:
            continue
        out.append((dim, direction, ch, topo.channel(ch).dst))
    return tuple(out)


def test_adaptive_candidates_match_fresh_computation():
    topo, faults, cache = _setup()
    for require_safe in (None, True, False):
        for dst in (7, 13, 24):
            got = cache.adaptive_candidates(0, dst, require_safe)
            assert got == _fresh_adaptive(topo, faults, 0, dst, require_safe)
            # Second lookup hits the memo and must be the same object.
            assert cache.adaptive_candidates(0, dst, require_safe) is got


def test_epoch_bump_invalidates_fault_dependent_entries():
    topo, faults, cache = _setup()
    dst = 13
    before = cache.adaptive_candidates(0, dst, None)
    assert before  # there are profitable healthy ports initially

    # Kill one of the cached candidate channels; the stale entry would
    # still list it.
    victim = before[0][2]
    epoch0 = faults.epoch
    faults.fail_link(victim)
    assert faults.epoch > epoch0, "every fault mutation must bump epoch"

    after = cache.adaptive_candidates(0, dst, None)
    assert victim not in [ch for _, _, ch, _ in after]
    assert after == _fresh_adaptive(topo, faults, 0, dst, None)


def test_node_fault_and_unsafe_marking_invalidate():
    topo, faults, cache = _setup()
    dst = 13
    cache.adaptive_candidates(0, dst, True)
    epoch0 = faults.epoch
    faults.fail_node(12)
    assert faults.epoch > epoch0
    # Safe-only view reflects the new unsafe designations immediately.
    assert cache.adaptive_candidates(0, dst, True) == _fresh_adaptive(
        topo, faults, 0, dst, True
    )


def test_misroute_candidates_theorem2_order():
    topo, faults, cache = _setup()
    node, dst = 0, 6  # both dimensions profitable
    arrival = (0, +1)
    out = cache.misroute_candidates(node, dst, arrival, allow_u_turn=True)
    assert out, "torus routers always have unprofitable ports"
    # No profitable ports, no faulty channels.
    for dim, direction, ch, nxt in out:
        assert not topo.is_profitable(node, dst, dim, direction)
        assert not faults.channel_faulty[ch]
        assert topo.channel(ch).dst == nxt
    # Same-dimension misroutes come first (Theorem 2 premise iii) and
    # the U-turn (reverse of arrival) comes last.
    dims = [dim for dim, _, _, _ in out]
    same = [i for i, d in enumerate(dims) if d == arrival[0]]
    other = [i for i, d in enumerate(dims) if d != arrival[0]]
    assert out[-1][:2] == (arrival[0], -arrival[1])
    assert all(i < j for i in same[:-1] for j in other if i != len(out) - 1)
    # Without permission there is no U-turn.
    no_u = cache.misroute_candidates(node, dst, arrival, allow_u_turn=False)
    assert (arrival[0], -arrival[1]) not in [c[:2] for c in no_u]


def test_escape_cache_survives_epoch_bumps():
    topo, faults, cache = _setup()
    node, dst = 0, 13
    first = cache.escape(node, dst)
    det = deterministic_route(topo, node, dst)
    assert det is not None and first is not None
    assert first[:3] == det
    assert first[3] == topo.channel_id(node, det[0], det[1])
    faults.fail_node(24)
    # Pure topology function: the identical memoized entry survives.
    assert cache.escape(node, dst) is first
    # Arrived-at-destination: no escape hop.
    assert cache.escape(dst, dst) is None
