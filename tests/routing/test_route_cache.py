"""RouteCache: memoized candidate sets and epoch invalidation."""

from repro.core.two_phase import TwoPhaseProtocol
from repro.faults.model import FaultState
from repro.network.topology import PLUS, KAryNCube
from repro.routing.base import Action
from repro.routing.cache import RouteCache
from repro.routing.dimension_order import deterministic_route
from repro.routing.duato import DuatoProtocol
from repro.sim.message import Message

from tests.conftest import make_context


def _setup(k=5, n=2):
    topo = KAryNCube(k, n)
    faults = FaultState(topo)
    return topo, faults, RouteCache(topo, faults)


def _fresh_adaptive(topo, faults, node, dst, require_safe):
    """Reference computation, bypassing any cache."""
    out = []
    for dim, direction in topo.profitable_ports(node, dst):
        ch = topo.channel_id(node, dim, direction)
        if faults.channel_faulty[ch]:
            continue
        if require_safe is True and faults.channel_unsafe[ch]:
            continue
        if require_safe is False and not faults.channel_unsafe[ch]:
            continue
        out.append((dim, direction, ch, topo.channel(ch).dst))
    return tuple(out)


def test_adaptive_candidates_match_fresh_computation():
    topo, faults, cache = _setup()
    for require_safe in (None, True, False):
        for dst in (7, 13, 24):
            got = cache.adaptive_candidates(0, dst, require_safe)
            assert got == _fresh_adaptive(topo, faults, 0, dst, require_safe)
            # Second lookup hits the memo and must be the same object.
            assert cache.adaptive_candidates(0, dst, require_safe) is got


def test_epoch_bump_invalidates_fault_dependent_entries():
    topo, faults, cache = _setup()
    dst = 13
    before = cache.adaptive_candidates(0, dst, None)
    assert before  # there are profitable healthy ports initially

    # Kill one of the cached candidate channels; the stale entry would
    # still list it.
    victim = before[0][2]
    epoch0 = faults.epoch
    faults.fail_link(victim)
    assert faults.epoch > epoch0, "every fault mutation must bump epoch"

    after = cache.adaptive_candidates(0, dst, None)
    assert victim not in [ch for _, _, ch, _ in after]
    assert after == _fresh_adaptive(topo, faults, 0, dst, None)


def test_node_fault_and_unsafe_marking_invalidate():
    topo, faults, cache = _setup()
    dst = 13
    cache.adaptive_candidates(0, dst, True)
    epoch0 = faults.epoch
    faults.fail_node(12)
    assert faults.epoch > epoch0
    # Safe-only view reflects the new unsafe designations immediately.
    assert cache.adaptive_candidates(0, dst, True) == _fresh_adaptive(
        topo, faults, 0, dst, True
    )


def test_misroute_candidates_theorem2_order():
    topo, faults, cache = _setup()
    node, dst = 0, 6  # both dimensions profitable
    arrival = (0, +1)
    out = cache.misroute_candidates(node, dst, arrival, allow_u_turn=True)
    assert out, "torus routers always have unprofitable ports"
    # No profitable ports, no faulty channels.
    for dim, direction, ch, nxt in out:
        assert not topo.is_profitable(node, dst, dim, direction)
        assert not faults.channel_faulty[ch]
        assert topo.channel(ch).dst == nxt
    # Same-dimension misroutes come first (Theorem 2 premise iii) and
    # the U-turn (reverse of arrival) comes last.
    dims = [dim for dim, _, _, _ in out]
    same = [i for i, d in enumerate(dims) if d == arrival[0]]
    other = [i for i, d in enumerate(dims) if d != arrival[0]]
    assert out[-1][:2] == (arrival[0], -arrival[1])
    assert all(i < j for i in same[:-1] for j in other if i != len(out) - 1)
    # Without permission there is no U-turn.
    no_u = cache.misroute_candidates(node, dst, arrival, allow_u_turn=False)
    assert (arrival[0], -arrival[1]) not in [c[:2] for c in no_u]


def test_escape_cache_survives_epoch_bumps():
    topo, faults, cache = _setup()
    node, dst = 0, 13
    first = cache.escape(node, dst)
    det = deterministic_route(topo, node, dst)
    assert det is not None and first is not None
    assert first[:3] == det
    assert first[3] == topo.channel_id(node, det[0], det[1])
    faults.fail_node(24)
    # Pure topology function: the identical memoized entry survives.
    assert cache.escape(node, dst) is first
    # Arrived-at-destination: no escape hop.
    assert cache.escape(dst, dst) is None


class TestEscapeCacheFaultSafety:
    """The escape memo deliberately survives epoch bumps ("fault status
    of the escape channel is the caller's concern") — these tests pin
    the caller-side contract that makes never clearing it safe: with a
    *stale warm entry* in the cache, a fault landing on the cached
    escape channel can never route a header into it, an unsafe marking
    admits it only under scouting flow control, and a reconfiguration
    restriction leaves it usable by design (the escape network's
    deadlock freedom does not depend on restrictions)."""

    def _setup(self, torus8):
        faults = FaultState(torus8)
        ctx = make_context(torus8, faults=faults)
        dst = torus8.node_id((3, 0))  # dim 0 the only profitable dim
        det_ch = torus8.channel_id(0, 0, PLUS)
        # Warm the escape memo before any fault exists.
        entry = ctx.cache.escape(0, dst)
        assert entry is not None and entry[3] == det_ch
        return ctx, faults, dst, det_ch, entry

    @staticmethod
    def _msg(topo, dst):
        return Message(
            msg_id=1, src=0, dst=dst, length=4,
            offsets=topo.offsets(0, dst), created_cycle=0,
            inline_header=True,
        )

    def test_faulted_escape_channel_never_reserved(self, torus8):
        ctx, faults, dst, det_ch, entry = self._setup(torus8)
        faults.fail_link(det_ch)
        # The stale entry survives the epoch bump (by design) ...
        assert ctx.cache.escape(0, dst) is entry
        # ... yet no protocol routes a header into the dead channel:
        # every caller re-checks channel_faulty live.
        for proto in (TwoPhaseProtocol(), DuatoProtocol()):
            d = proto.decide(ctx, self._msg(torus8, dst))
            if d.action is Action.RESERVE:
                assert d.vc.channel_id != det_ch
        # Duato has no detour fallback: the faulty escape aborts.
        d = DuatoProtocol().decide(ctx, self._msg(torus8, dst))
        assert d.action is Action.ABORT

    def test_unsafe_escape_channel_only_under_scouting(self, torus8):
        ctx, faults, dst, det_ch, entry = self._setup(torus8)
        # A node fault two hops ahead marks the escape channel's head
        # node at-risk, so the cached channel is now unsafe.
        faults.fail_node(torus8.node_id((2, 0)))
        assert faults.channel_unsafe[det_ch]
        assert ctx.cache.escape(0, dst) is entry
        msg = self._msg(torus8, dst)
        d = TwoPhaseProtocol(k_unsafe=3).decide(ctx, msg)
        if d.action is Action.RESERVE and d.vc.channel_id == det_ch:
            # Entering the fault vicinity must have switched the
            # header to scouting (SR) flow control.
            assert msg.header.sr
            assert d.k == 3

    def test_restricted_escape_channel_stays_usable(self, torus8):
        ctx, faults, dst, det_ch, entry = self._setup(torus8)
        faults.reconfigure([det_ch])
        assert faults.channel_restricted[det_ch]
        assert ctx.cache.escape(0, dst) is entry
        # Restrictions prune the optimistic adaptive set ...
        assert det_ch not in [
            c[2] for c in ctx.cache.adaptive_candidates(0, dst, None)
        ]
        # ... but the escape layer is exempt (steering, not
        # correctness): DP falls back to the deterministic escape VC
        # on the restricted channel instead of wedging.
        d = TwoPhaseProtocol().decide(ctx, self._msg(torus8, dst))
        assert d.action is Action.RESERVE
        assert d.vc.channel_id == det_ch
        assert d.vc.vclass.is_deterministic
