"""Unit tests for the selection-function helpers."""

from repro.faults.model import FaultState
from repro.network.topology import MINUS, PLUS, KAryNCube
from repro.routing.selection import (
    adaptive_candidate,
    free_vc_any_class,
    misroute_ports,
    port_usable,
)

from tests.conftest import make_context


class TestAdaptiveCandidate:
    def test_finds_profitable_adaptive(self, torus8):
        ctx = make_context(torus8)
        got = adaptive_candidate(ctx, 0, 9, require_safe=None)
        assert got is not None
        dim, direction, vc = got
        assert torus8.is_profitable(0, 9, dim, direction)
        assert vc.is_free

    def test_none_at_destination(self, torus8):
        ctx = make_context(torus8)
        assert adaptive_candidate(ctx, 4, 4, require_safe=None) is None

    def test_skips_faulty_channel(self, torus8):
        faults = FaultState(torus8)
        # Destination one hop +x away; fail that link.
        dst = torus8.neighbor(0, 0, PLUS)
        faults.fail_link(torus8.channel_id(0, 0, PLUS))
        ctx = make_context(torus8, faults=faults)
        assert adaptive_candidate(ctx, 0, dst, require_safe=None) is None

    def test_skips_busy_adaptive(self, torus8):
        ctx = make_context(torus8)
        dst = torus8.neighbor(0, 0, PLUS)
        ch = torus8.channel_id(0, 0, PLUS)
        ctx.channels.free_adaptive(ch).reserve(7)
        assert adaptive_candidate(ctx, 0, dst, require_safe=None) is None

    def test_require_safe_filters_unsafe(self, torus8):
        faults = FaultState(torus8)
        # Failing a node two hops along +x makes the channel into its
        # neighbor unsafe.
        mid = torus8.neighbor(0, 0, PLUS)
        faults.fail_node(torus8.neighbor(mid, 0, PLUS))
        ctx = make_context(torus8, faults=faults)
        ch = torus8.channel_id(0, 0, PLUS)
        assert ctx.faults.channel_unsafe[ch]
        assert adaptive_candidate(ctx, 0, mid, require_safe=True) is None
        got = adaptive_candidate(ctx, 0, mid, require_safe=False)
        assert got is not None and got[:2] == (0, PLUS)

    def test_prefers_earlier_dimension(self, torus8):
        ctx = make_context(torus8)
        dst = torus8.node_id((2, 2))
        got = adaptive_candidate(ctx, 0, dst, require_safe=None)
        assert got[:2] == (0, PLUS)


class TestFreeVCAnyClass:
    def test_returns_first_free(self, torus8):
        ctx = make_context(torus8)
        vc = free_vc_any_class(ctx, 0)
        assert vc.index == 0

    def test_exhausts_pool(self, torus8):
        ctx = make_context(torus8)
        for vc in ctx.channels.vcs(0):
            vc.reserve(1)
        assert free_vc_any_class(ctx, 0) is None


class TestMisroutePorts:
    def test_excludes_profitable(self, torus8):
        ctx = make_context(torus8)
        dst = torus8.node_id((3, 3))
        ports = misroute_ports(ctx, 0, dst, arrival=None, allow_u_turn=False)
        for dim, direction in ports:
            assert not torus8.is_profitable(0, dst, dim, direction)

    def test_excludes_reverse_of_arrival(self, torus8):
        ctx = make_context(torus8)
        dst = torus8.node_id((3, 3))
        ports = misroute_ports(
            ctx, 0, dst, arrival=(0, PLUS), allow_u_turn=False
        )
        assert (0, MINUS) not in ports

    def test_u_turn_appended_last(self, torus8):
        ctx = make_context(torus8)
        dst = torus8.node_id((3, 3))
        ports = misroute_ports(
            ctx, 0, dst, arrival=(0, PLUS), allow_u_turn=True
        )
        assert ports[-1] == (0, MINUS)

    def test_same_dimension_preferred(self, torus8):
        """Theorem 2 premise iii: misroute in the input dimension."""
        ctx = make_context(torus8)
        # Destination 3 hops along +x: both y ports and -x are
        # unprofitable; arriving along x must rank dim 0 first.
        dst = torus8.node_id((3, 0))
        ports = misroute_ports(
            ctx, torus8.node_id((1, 0)), dst, arrival=(1, PLUS),
            allow_u_turn=False,
        )
        assert ports[0][0] == 1

    def test_skips_faulty(self, torus8):
        faults = FaultState(torus8)
        faults.fail_link(torus8.channel_id(0, 1, PLUS))
        ctx = make_context(torus8, faults=faults)
        dst = torus8.node_id((3, 0))
        ports = misroute_ports(ctx, 0, dst, arrival=None, allow_u_turn=False)
        assert (1, PLUS) not in ports


class TestPortUsable:
    def test_healthy(self, torus8):
        ctx = make_context(torus8)
        assert port_usable(ctx, 0, 0, PLUS)

    def test_faulty(self, torus8):
        faults = FaultState(torus8)
        faults.fail_link(torus8.channel_id(0, 0, PLUS))
        ctx = make_context(torus8, faults=faults)
        assert not port_usable(ctx, 0, 0, PLUS)
