"""Unit tests for dimension-order routing and dateline classes."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.network.channel import VCClass
from repro.network.topology import MINUS, PLUS, KAryNCube
from repro.routing.dimension_order import (
    crosses_wrap,
    dateline_class,
    deterministic_route,
    next_hop,
)


class TestNextHop:
    def test_none_at_destination(self, torus8):
        assert next_hop(torus8, 7, 7) is None

    def test_lowest_dimension_first(self, torus8):
        src = torus8.node_id((0, 0))
        dst = torus8.node_id((2, 3))
        assert next_hop(torus8, src, dst) == (0, PLUS)

    def test_moves_to_higher_dim_when_low_done(self, torus8):
        src = torus8.node_id((2, 0))
        dst = torus8.node_id((2, 3))
        assert next_hop(torus8, src, dst) == (1, PLUS)

    def test_short_way_around(self, torus8):
        src = torus8.node_id((0, 0))
        dst = torus8.node_id((7, 0))
        assert next_hop(torus8, src, dst) == (0, MINUS)

    def test_full_path_is_minimal(self, torus8):
        src, dst = 3, 60
        node = src
        hops = 0
        while node != dst:
            dim, direction = next_hop(torus8, node, dst)
            node = torus8.neighbor(node, dim, direction)
            hops += 1
            assert hops <= torus8.distance(src, dst)
        assert hops == torus8.distance(src, dst)

    @given(st.integers(min_value=3, max_value=9), st.data())
    @settings(max_examples=50, deadline=None)
    def test_always_profitable(self, k, data):
        topo = KAryNCube(k, 2)
        nodes = st.integers(min_value=0, max_value=topo.num_nodes - 1)
        src, dst = data.draw(nodes), data.draw(nodes)
        if src == dst:
            return
        dim, direction = next_hop(topo, src, dst)
        assert topo.is_profitable(src, dst, dim, direction)


class TestDateline:
    def test_no_wrap_needed(self, torus8):
        src = torus8.node_id((1, 0))
        dst = torus8.node_id((3, 0))
        assert not crosses_wrap(torus8, src, dst, 0, PLUS)
        assert dateline_class(torus8, src, dst, 0, PLUS) is (
            VCClass.DETERMINISTIC_1
        )

    def test_wrap_ahead_uses_class0(self, torus8):
        src = torus8.node_id((6, 0))
        dst = torus8.node_id((1, 0))
        assert crosses_wrap(torus8, src, dst, 0, PLUS)
        assert dateline_class(torus8, src, dst, 0, PLUS) is (
            VCClass.DETERMINISTIC_0
        )

    def test_after_wrap_switches_to_class1(self, torus8):
        src = torus8.node_id((0, 0))
        dst = torus8.node_id((1, 0))
        assert not crosses_wrap(torus8, src, dst, 0, PLUS)

    def test_negative_direction_wrap(self, torus8):
        src = torus8.node_id((1, 0))
        dst = torus8.node_id((6, 0))
        assert crosses_wrap(torus8, src, dst, 0, MINUS)

    def test_class1_never_uses_wrap_edge(self, torus8):
        """The dateline invariant that breaks ring cycles."""
        k = torus8.k
        for t in range(k):
            dst = torus8.node_id((t, 0))
            # Positive wrap edge leaves coordinate k-1.
            src = torus8.node_id((k - 1, 0))
            if t != k - 1:
                cls = dateline_class(torus8, src, dst, 0, PLUS)
                assert cls is VCClass.DETERMINISTIC_0
            # Negative wrap edge leaves coordinate 0.
            src = torus8.node_id((0, 0))
            if t != 0:
                cls = dateline_class(torus8, src, dst, 0, MINUS)
                assert cls is VCClass.DETERMINISTIC_0

    def test_class0_edges_acyclic_per_ring(self, torus8):
        """Class-0 edges never cover a whole ring for any destination."""
        k = torus8.k
        for t in range(k):
            dst = torus8.node_id((t, 0))
            class0_edges = 0
            for c in range(k):
                src = torus8.node_id((c, 0))
                if c == t:
                    continue
                hop = next_hop(torus8, src, dst)
                if hop is None or hop[0] != 0:
                    continue
                if dateline_class(torus8, src, dst, 0, hop[1]) is (
                    VCClass.DETERMINISTIC_0
                ):
                    class0_edges += 1
            assert class0_edges < k


class TestDeterministicRoute:
    def test_returns_none_at_destination(self, torus8):
        assert deterministic_route(torus8, 5, 5) is None

    def test_combines_hop_and_class(self, torus8):
        src = torus8.node_id((6, 2))
        dst = torus8.node_id((1, 2))
        dim, direction, vclass = deterministic_route(torus8, src, dst)
        assert (dim, direction) == (0, PLUS)
        assert vclass is VCClass.DETERMINISTIC_0

    def test_walk_terminates_everywhere(self, torus8):
        for src in (0, 9, 33):
            for dst in range(0, torus8.num_nodes, 7):
                node, steps = src, 0
                while node != dst:
                    det = deterministic_route(torus8, node, dst)
                    node = torus8.neighbor(node, det[0], det[1])
                    steps += 1
                    assert steps <= 2 * torus8.k
