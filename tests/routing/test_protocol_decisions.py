"""Unit tests for DP / MB-m / TP routing decisions on crafted contexts."""

import pytest

from repro.core.two_phase import TwoPhaseProtocol
from repro.faults.model import FaultState
from repro.network.channel import VCClass
from repro.network.topology import MINUS, PLUS, KAryNCube
from repro.routing.base import Action
from repro.routing.duato import DuatoProtocol
from repro.routing.mb import MBmProtocol
from repro.sim.message import Message, TPMode

from tests.conftest import make_context


def make_msg(topo: KAryNCube, src: int, dst: int,
             inline: bool = False) -> Message:
    return Message(
        msg_id=1, src=src, dst=dst, length=4,
        offsets=topo.offsets(src, dst), created_cycle=0,
        inline_header=inline,
    )


class TestDuatoDecisions:
    def test_takes_profitable_adaptive(self, torus8):
        ctx = make_context(torus8)
        msg = make_msg(torus8, 0, torus8.node_id((2, 1)), inline=True)
        d = DuatoProtocol().decide(ctx, msg)
        assert d.action is Action.RESERVE
        assert d.vc.vclass is VCClass.ADAPTIVE

    def test_falls_back_to_deterministic(self, torus8):
        ctx = make_context(torus8)
        dst = torus8.node_id((2, 0))
        msg = make_msg(torus8, 0, dst, inline=True)
        # Exhaust the adaptive VC on the only profitable port.
        ch = torus8.channel_id(0, 0, PLUS)
        ctx.channels.free_adaptive(ch).reserve(9)
        d = DuatoProtocol().decide(ctx, msg)
        assert d.action is Action.RESERVE
        assert d.vc.vclass.is_deterministic

    def test_waits_when_escape_busy(self, torus8):
        ctx = make_context(torus8)
        dst = torus8.node_id((2, 0))
        msg = make_msg(torus8, 0, dst, inline=True)
        ch = torus8.channel_id(0, 0, PLUS)
        for vc in ctx.channels.vcs(ch):
            vc.reserve(9)
        d = DuatoProtocol().decide(ctx, msg)
        assert d.action is Action.WAIT

    def test_aborts_on_faulty_escape(self, torus8):
        faults = FaultState(torus8)
        faults.fail_link(torus8.channel_id(0, 0, PLUS))
        ctx = make_context(torus8, faults=faults)
        dst = torus8.node_id((2, 0))
        msg = make_msg(torus8, 0, dst, inline=True)
        d = DuatoProtocol().decide(ctx, msg)
        assert d.action is Action.ABORT

    def test_adaptive_on_other_dimension_used_before_abort(self, torus8):
        faults = FaultState(torus8)
        faults.fail_link(torus8.channel_id(0, 0, PLUS))
        ctx = make_context(torus8, faults=faults)
        dst = torus8.node_id((2, 2))  # profitable in both dimensions
        msg = make_msg(torus8, 0, dst, inline=True)
        d = DuatoProtocol().decide(ctx, msg)
        assert d.action is Action.RESERVE
        assert d.port[0] == 1


class TestMBmDecisions:
    def test_profitable_first(self, torus8):
        ctx = make_context(torus8)
        msg = make_msg(torus8, 0, torus8.node_id((2, 1)))
        d = MBmProtocol().decide(ctx, msg)
        assert d.action is Action.RESERVE
        assert not d.is_misroute

    def test_skips_tried_channels(self, torus8):
        ctx = make_context(torus8)
        dst = torus8.node_id((2, 0))
        msg = make_msg(torus8, 0, dst)
        msg.tried[0].add(torus8.channel_id(0, 0, PLUS))
        d = MBmProtocol().decide(ctx, msg)
        assert d.action is Action.RESERVE
        assert d.is_misroute  # only unprofitable ports remain

    def test_misroutes_when_profitable_busy(self, torus8):
        ctx = make_context(torus8)
        dst = torus8.node_id((2, 0))
        msg = make_msg(torus8, 0, dst)
        for vc in ctx.channels.vcs(torus8.channel_id(0, 0, PLUS)):
            vc.reserve(9)
        d = MBmProtocol().decide(ctx, msg)
        assert d.action is Action.RESERVE
        assert d.is_misroute

    def test_backtracks_when_budget_spent(self, torus8):
        ctx = make_context(torus8)
        dst = torus8.node_id((2, 0))
        msg = make_msg(torus8, 0, dst)
        # Pretend the header moved one hop and exhausted everything.
        ch = torus8.channel_id(0, 0, PLUS)
        vc = ctx.channels.free_adaptive(ch)
        vc.reserve(msg.msg_id)
        msg.extend_path(vc, torus8.neighbor(0, 0, PLUS), 0, False, 0, PLUS)
        msg.header_router = 1
        msg.header.apply_hop(0, PLUS, torus8.k)
        msg.header.misroutes = 6
        node = msg.current_node()
        for dim in range(torus8.n):
            for direction in (PLUS, MINUS):
                msg.tried[1].add(torus8.channel_id(node, dim, direction))
        d = MBmProtocol().decide(ctx, msg)
        assert d.action is Action.BACKTRACK

    def test_waits_with_backoff_at_source(self, torus8):
        ctx = make_context(torus8)
        dst = torus8.node_id((2, 0))
        msg = make_msg(torus8, 0, dst)
        for dim in range(torus8.n):
            for direction in (PLUS, MINUS):
                msg.tried[0].add(torus8.channel_id(0, dim, direction))
        proto = MBmProtocol(max_retries=2, retry_backoff=10)
        msg.header.misroutes = proto.misroute_limit
        d = proto.decide(ctx, msg)
        assert d.action is Action.WAIT
        assert msg.retries == 1
        assert msg.retry_wait == ctx.cycle + 10
        assert not msg.tried[0]  # history cleared for the retry

    def test_aborts_after_max_retries(self, torus8):
        ctx = make_context(torus8)
        msg = make_msg(torus8, 0, torus8.node_id((2, 0)))
        proto = MBmProtocol(max_retries=0)
        msg.header.misroutes = proto.misroute_limit
        for dim in range(torus8.n):
            for direction in (PLUS, MINUS):
                msg.tried[0].add(torus8.channel_id(0, dim, direction))
        d = proto.decide(ctx, msg)
        assert d.action is Action.ABORT

    def test_misroute_limit_respected(self, torus8):
        ctx = make_context(torus8)
        dst = torus8.node_id((2, 0))
        msg = make_msg(torus8, 0, dst)
        msg.tried[0].add(torus8.channel_id(0, 0, PLUS))
        msg.header.misroutes = 6
        d = MBmProtocol(misroute_limit=6).decide(ctx, msg)
        # Cannot misroute (budget spent), cannot backtrack (source):
        # must retry/wait.
        assert d.action is Action.WAIT

    def test_invalid_limit(self):
        with pytest.raises(ValueError):
            MBmProtocol(misroute_limit=-1)


class TestTwoPhaseDP:
    def test_safe_adaptive_first(self, torus8):
        ctx = make_context(torus8)
        msg = make_msg(torus8, 0, torus8.node_id((2, 1)))
        d = TwoPhaseProtocol().decide(ctx, msg)
        assert d.action is Action.RESERVE
        assert d.vc.vclass is VCClass.ADAPTIVE
        assert not msg.header.sr

    def test_blocks_on_busy_safe_deterministic(self, torus8):
        ctx = make_context(torus8)
        dst = torus8.node_id((2, 0))
        msg = make_msg(torus8, 0, dst)
        for vc in ctx.channels.vcs(torus8.channel_id(0, 0, PLUS)):
            vc.reserve(9)
        d = TwoPhaseProtocol().decide(ctx, msg)
        assert d.action is Action.WAIT
        assert msg.tp_mode is TPMode.DP

    def test_switches_to_sr_on_unsafe_adaptive(self, torus8):
        faults = FaultState(torus8)
        mid = torus8.neighbor(0, 0, PLUS)
        beyond = torus8.neighbor(mid, 0, PLUS)
        faults.fail_node(torus8.neighbor(beyond, 0, PLUS))
        ctx = make_context(torus8, faults=faults)
        # Destination = beyond: the profitable channel 0->mid is safe,
        # mid->beyond is unsafe (beyond is adjacent to the fault).
        msg = make_msg(torus8, mid, beyond)
        proto = TwoPhaseProtocol(k_unsafe=3)
        d = proto.decide(ctx, msg)
        assert d.action is Action.RESERVE
        assert msg.header.sr
        assert d.k == 3

    def test_aggressive_keeps_k_zero(self, torus8):
        faults = FaultState(torus8)
        mid = torus8.neighbor(0, 0, PLUS)
        beyond = torus8.neighbor(mid, 0, PLUS)
        faults.fail_node(torus8.neighbor(beyond, 0, PLUS))
        ctx = make_context(torus8, faults=faults)
        msg = make_msg(torus8, mid, beyond)
        d = TwoPhaseProtocol.aggressive().decide(ctx, msg)
        assert d.action is Action.RESERVE
        assert d.k == 0

    def test_enters_detour_when_no_way_forward(self, torus8):
        faults = FaultState(torus8)
        # Fail both profitable next nodes from the source corner.
        dst = torus8.node_id((2, 2))
        faults.fail_node(torus8.node_id((1, 0)))
        faults.fail_node(torus8.node_id((0, 1)))
        ctx = make_context(torus8, faults=faults)
        msg = make_msg(torus8, 0, dst)
        d = TwoPhaseProtocol().decide(ctx, msg)
        assert msg.tp_mode is TPMode.DETOUR
        assert msg.header.detour
        # The detour decision itself misroutes (hold set).
        assert d.action is Action.RESERVE
        assert d.hold
        assert d.is_misroute


class TestTwoPhaseDetour:
    def _detour_msg(self, topo, ctx, src, dst):
        msg = make_msg(topo, src, dst)
        msg.tp_mode = TPMode.DETOUR
        msg.header.detour = True
        return msg

    def test_profitable_any_safety(self, torus8):
        ctx = make_context(torus8)
        msg = self._detour_msg(torus8, ctx, 0, torus8.node_id((2, 1)))
        d = TwoPhaseProtocol().decide(ctx, msg)
        assert d.action is Action.RESERVE
        assert d.hold
        assert not d.is_misroute

    def test_retry_then_abort_at_source(self, torus8):
        ctx = make_context(torus8)
        dst = torus8.node_id((2, 0))
        proto = TwoPhaseProtocol(max_retries=1, retry_backoff=5)
        msg = self._detour_msg(torus8, ctx, 0, dst)
        msg.header.misroutes = proto.misroute_limit
        for dim in range(torus8.n):
            for direction in (PLUS, MINUS):
                msg.tried[0].add(torus8.channel_id(0, dim, direction))
        d1 = proto.decide(ctx, msg)
        assert d1.action is Action.WAIT and msg.retries == 1
        # History was cleared by the retry; re-fill and let the backoff
        # elapse to exhaust the budget.
        ctx.cycle += 10
        for dim in range(torus8.n):
            for direction in (PLUS, MINUS):
                msg.tried[0].add(torus8.channel_id(0, dim, direction))
        d2 = proto.decide(ctx, msg)
        assert d2.action is Action.ABORT

    def test_backtrack_preferred_over_u_turn(self, torus8):
        ctx = make_context(torus8)
        dst = torus8.node_id((4, 0))
        msg = self._detour_msg(torus8, ctx, 0, dst)
        nxt = torus8.neighbor(0, 0, PLUS)
        ch = torus8.channel_id(0, 0, PLUS)
        vc = ctx.channels.free_adaptive(ch)
        vc.reserve(msg.msg_id)
        msg.extend_path(vc, nxt, 0, True, 0, PLUS)
        msg.header_router = 1
        msg.header.apply_hop(0, PLUS, torus8.k)
        # Everything from nxt is tried except the U-turn.
        for dim in range(torus8.n):
            for direction in (PLUS, MINUS):
                msg.tried[1].add(torus8.channel_id(nxt, dim, direction))
        d = TwoPhaseProtocol().decide(ctx, msg)
        assert d.action is Action.BACKTRACK

    def test_u_turn_when_backtrack_impossible(self, torus8):
        ctx = make_context(torus8)
        dst = torus8.node_id((4, 0))
        msg = self._detour_msg(torus8, ctx, 0, dst)
        nxt = torus8.neighbor(0, 0, PLUS)
        ch = torus8.channel_id(0, 0, PLUS)
        vc = ctx.channels.free_adaptive(ch)
        vc.reserve(msg.msg_id)
        msg.extend_path(vc, nxt, 0, True, 0, PLUS)
        msg.header_router = 1
        msg.header.apply_hop(0, PLUS, torus8.k)
        msg.head_link = 0  # first data flit advanced to nxt: no retreat
        for dim in range(torus8.n):
            for direction in (PLUS, MINUS):
                port_ch = torus8.channel_id(nxt, dim, direction)
                if port_ch != torus8.channel_id(nxt, 0, MINUS):
                    msg.tried[1].add(port_ch)
        d = TwoPhaseProtocol().decide(ctx, msg)
        assert d.action is Action.RESERVE
        assert d.is_misroute
        assert d.port == (0, MINUS)
