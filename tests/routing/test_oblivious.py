"""Unit tests for the dimension-order validation protocol."""

import pytest

from repro.core.flow_control import FlowControlKind
from repro.faults.model import FaultState
from repro.network.topology import PLUS
from repro.routing.base import Action
from repro.routing.oblivious import DimensionOrderProtocol
from repro.sim.message import Message

from tests.conftest import make_context


def make_msg(topo, src, dst, inline):
    return Message(
        msg_id=1, src=src, dst=dst, length=4,
        offsets=topo.offsets(src, dst), created_cycle=0,
        inline_header=inline,
    )


class TestConstruction:
    def test_wr_is_inline(self):
        proto = DimensionOrderProtocol(flow="wr")
        assert proto.inline_header
        assert proto.flow_control.kind is FlowControlKind.WORMHOLE

    def test_sr_decoupled_with_k(self):
        proto = DimensionOrderProtocol(flow="sr", k=2)
        assert not proto.inline_header
        assert proto.flow_control.k_safe == 2

    def test_pcs_decoupled(self):
        proto = DimensionOrderProtocol(flow="pcs")
        assert not proto.inline_header
        assert proto.flow_control.kind is FlowControlKind.PCS

    def test_rejects_unknown_flow(self):
        with pytest.raises(ValueError):
            DimensionOrderProtocol(flow="quantum")


class TestDecisions:
    def test_takes_dimension_order_hop(self, torus8):
        ctx = make_context(torus8)
        dst = torus8.node_id((2, 3))
        msg = make_msg(torus8, 0, dst, inline=True)
        d = DimensionOrderProtocol(flow="wr").decide(ctx, msg)
        assert d.action is Action.RESERVE
        assert d.port == (0, PLUS)
        assert d.vc.vclass.is_deterministic

    def test_waits_on_busy(self, torus8):
        ctx = make_context(torus8)
        dst = torus8.node_id((2, 0))
        msg = make_msg(torus8, 0, dst, inline=True)
        for vc in ctx.channels.vcs(torus8.channel_id(0, 0, PLUS)):
            vc.reserve(9)
        d = DimensionOrderProtocol(flow="wr").decide(ctx, msg)
        assert d.action is Action.WAIT

    def test_aborts_on_fault(self, torus8):
        faults = FaultState(torus8)
        faults.fail_link(torus8.channel_id(0, 0, PLUS))
        ctx = make_context(torus8, faults=faults)
        dst = torus8.node_id((2, 0))
        msg = make_msg(torus8, 0, dst, inline=True)
        d = DimensionOrderProtocol(flow="wr").decide(ctx, msg)
        assert d.action is Action.ABORT

    def test_sr_programs_its_k(self, torus8):
        ctx = make_context(torus8)
        dst = torus8.node_id((2, 0))
        msg = make_msg(torus8, 0, dst, inline=False)
        d = DimensionOrderProtocol(flow="sr", k=2).decide(ctx, msg)
        assert d.action is Action.RESERVE
        assert d.k == 2
