"""Graph-theoretic properties of the torus and its fault resilience."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.faults.model import FaultState
from repro.network.topology import KAryNCube


class TestTorusRegularity:
    @pytest.mark.parametrize("k,n", [(4, 2), (8, 2), (3, 3), (5, 2)])
    def test_vertex_transitive_degree(self, k, n):
        topo = KAryNCube(k, n)
        for node in range(0, topo.num_nodes, max(1, topo.num_nodes // 7)):
            assert len(set(topo.neighbors(node))) == 2 * n

    def test_bisection_channels(self):
        # A k-ary 2-cube has 2k channels crossing each dimension cut.
        topo = KAryNCube(8, 2)
        crossing = [
            c for c in topo.channels
            if c.dim == 0
            and topo.coords(c.src)[0] == 3 and topo.coords(c.dst)[0] == 4
        ]
        assert len(crossing) == topo.k

    def test_diameter(self):
        topo = KAryNCube(8, 2)
        assert max(
            topo.distance(0, d) for d in range(topo.num_nodes)
        ) == 2 * (topo.k // 2)

    def test_average_distance_uniform(self):
        # Mean minimal distance on a k-ary 2-cube is ~k/2 (k even).
        topo = KAryNCube(8, 2)
        total = sum(topo.distance(0, d) for d in range(topo.num_nodes))
        mean = total / (topo.num_nodes - 1)
        assert 3.9 < mean < 4.2


class TestFaultResilience:
    def test_budget_minus_one_faults_never_disconnect(self):
        """2n - 1 random node faults leave the healthy net connected
        (the theorem budget guarantees a healthy neighbor exists)."""
        topo = KAryNCube(6, 2)
        for seed in range(12):
            rng = random.Random(seed)
            faults = FaultState(topo)
            nodes = rng.sample(range(topo.num_nodes), 3)
            faults.fail_nodes(nodes)
            assert faults.healthy_nodes_connected(), nodes

    def test_2n_faults_can_disconnect(self):
        topo = KAryNCube(6, 2)
        faults = FaultState(topo)
        faults.fail_nodes(topo.neighbors(0))  # isolate node 0
        assert not faults.healthy_nodes_connected()
        assert len(faults.faulty_nodes) == 2 * topo.n

    @given(seed=st.integers(min_value=0, max_value=2000))
    @settings(max_examples=30, deadline=None)
    def test_healthy_distance_at_least_minimal(self, seed):
        rng = random.Random(seed)
        topo = KAryNCube(6, 2)
        faults = FaultState(topo)
        faults.fail_nodes(rng.sample(range(1, topo.num_nodes - 1), 3))
        src, dst = 0, topo.num_nodes - 1
        if faults.is_node_faulty(src) or faults.is_node_faulty(dst):
            return
        healthy = faults.shortest_healthy_distance(src, dst)
        if healthy is not None:
            assert healthy >= topo.distance(src, dst)

    @given(seed=st.integers(min_value=0, max_value=2000))
    @settings(max_examples=30, deadline=None)
    def test_unsafe_channels_border_faults(self, seed):
        """Every unsafe channel's head node has a faulty incident
        channel, and vice versa (Figure 3's marking rule)."""
        rng = random.Random(seed)
        topo = KAryNCube(6, 2)
        faults = FaultState(topo)
        faults.fail_nodes(rng.sample(range(topo.num_nodes), 2))
        for ch_id in range(topo.num_channels):
            if not faults.channel_unsafe[ch_id]:
                continue
            head = topo.channel(ch_id).dst
            incident_faulty = any(
                faults.channel_faulty[topo.channel_id(head, d, s)]
                for d, s in topo.ports(head)
            )
            assert incident_faulty
