"""Unit tests for physical-channel bandwidth allocation primitives."""

import pytest

from repro.network.link import ControlQueue, RoundRobinArbiter


class TestControlQueue:
    def test_fifo_order(self):
        q = ControlQueue()
        for i in range(5):
            q.push(i)
        assert [q.pop() for _ in range(5)] == [0, 1, 2, 3, 4]

    def test_len_and_bool(self):
        q = ControlQueue()
        assert not q
        q.push("x")
        assert q and len(q) == 1

    def test_peek_does_not_remove(self):
        q = ControlQueue()
        q.push("a")
        assert q.peek() == "a"
        assert len(q) == 1

    def test_peek_empty_returns_none(self):
        assert ControlQueue().peek() is None

    def test_sent_counter(self):
        q = ControlQueue()
        q.push(1)
        q.push(2)
        q.pop()
        q.pop()
        assert q.sent == 2

    def test_drain_empties_and_returns_all(self):
        q = ControlQueue()
        for i in range(3):
            q.push(i)
        assert q.drain() == [0, 1, 2]
        assert not q


class TestRoundRobinArbiter:
    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            RoundRobinArbiter(0)

    def test_single_requester(self):
        arb = RoundRobinArbiter(1)
        assert arb.grant([True]) == 0
        assert arb.grant([False]) is None

    def test_rotates_among_requesters(self):
        arb = RoundRobinArbiter(3)
        grants = [arb.grant([True, True, True]) for _ in range(6)]
        assert grants == [0, 1, 2, 0, 1, 2]

    def test_skips_idle_requesters(self):
        arb = RoundRobinArbiter(3)
        assert arb.grant([False, True, False]) == 1
        assert arb.grant([True, False, True]) == 2
        assert arb.grant([True, False, True]) == 0

    def test_none_when_no_requests(self):
        arb = RoundRobinArbiter(4)
        assert arb.grant([False] * 4) is None

    def test_wrong_width_raises(self):
        arb = RoundRobinArbiter(2)
        with pytest.raises(ValueError):
            arb.grant([True])

    def test_grant_from_candidate_list(self):
        arb = RoundRobinArbiter(4)
        assert arb.grant_from([2, 3]) == 2
        assert arb.grant_from([2, 3]) == 3
        assert arb.grant_from([2, 3]) == 2

    def test_grant_from_empty(self):
        assert RoundRobinArbiter(4).grant_from([]) is None

    def test_grant_from_fairness_across_all(self):
        arb = RoundRobinArbiter(3)
        seen = [arb.grant_from([0, 1, 2]) for _ in range(9)]
        assert seen.count(0) == seen.count(1) == seen.count(2) == 3

    def test_grant_from_matches_grant(self):
        a = RoundRobinArbiter(4)
        b = RoundRobinArbiter(4)
        requests = [
            [True, False, True, False],
            [False, True, True, True],
            [True, True, False, False],
        ]
        for req in requests * 3:
            want = a.grant(req)
            got = b.grant_from([i for i, r in enumerate(req) if r])
            assert want == got
