"""Unit tests for the virtual channel trio model and the channel bank."""

import pytest

from repro.network.channel import (
    ChannelBank,
    ChannelStateError,
    VCClass,
    VCState,
    VirtualChannel,
    build_vc_classes,
)


class TestVCClasses:
    def test_layout_has_two_deterministic_classes(self):
        classes = build_vc_classes(1)
        assert classes == [
            VCClass.DETERMINISTIC_0,
            VCClass.DETERMINISTIC_1,
            VCClass.ADAPTIVE,
        ]

    def test_adaptive_count_scales(self):
        assert build_vc_classes(3).count(VCClass.ADAPTIVE) == 3

    def test_requires_one_adaptive(self):
        with pytest.raises(ValueError):
            build_vc_classes(0)

    def test_deterministic_predicate(self):
        assert VCClass.DETERMINISTIC_0.is_deterministic
        assert VCClass.DETERMINISTIC_1.is_deterministic
        assert not VCClass.ADAPTIVE.is_deterministic


class TestVirtualChannel:
    def test_initially_free(self):
        vc = VirtualChannel(0, 0, VCClass.ADAPTIVE)
        assert vc.is_free
        assert vc.owner is None
        assert vc.state is VCState.FREE

    def test_reserve_sets_owner(self):
        vc = VirtualChannel(0, 0, VCClass.ADAPTIVE)
        vc.reserve(42)
        assert not vc.is_free
        assert vc.owner == 42

    def test_double_reserve_raises(self):
        vc = VirtualChannel(0, 0, VCClass.ADAPTIVE)
        vc.reserve(1)
        with pytest.raises(ChannelStateError):
            vc.reserve(2)

    def test_release_frees(self):
        vc = VirtualChannel(0, 0, VCClass.ADAPTIVE)
        vc.reserve(1)
        vc.release()
        assert vc.is_free
        assert vc.owner is None

    def test_release_free_raises(self):
        vc = VirtualChannel(0, 0, VCClass.ADAPTIVE)
        with pytest.raises(ChannelStateError):
            vc.release()

    def test_reserve_release_cycle(self):
        vc = VirtualChannel(3, 1, VCClass.DETERMINISTIC_0)
        for owner in range(5):
            vc.reserve(owner)
            assert vc.owner == owner
            vc.release()


class TestChannelBank:
    def test_vcs_per_channel(self):
        bank = ChannelBank(num_channels=10, num_adaptive=2)
        assert bank.vcs_per_channel == 4
        assert len(bank.vcs(0)) == 4

    def test_free_adaptive_prefers_adaptive_class(self):
        bank = ChannelBank(4, 1)
        vc = bank.free_adaptive(2)
        assert vc is not None
        assert vc.vclass is VCClass.ADAPTIVE

    def test_free_adaptive_skips_reserved(self):
        bank = ChannelBank(4, 2)
        first = bank.free_adaptive(0)
        first.reserve(1)
        second = bank.free_adaptive(0)
        assert second is not first
        assert second.vclass is VCClass.ADAPTIVE

    def test_free_adaptive_none_when_exhausted(self):
        bank = ChannelBank(4, 1)
        bank.free_adaptive(0).reserve(1)
        assert bank.free_adaptive(0) is None

    def test_deterministic_lookup_by_class(self):
        bank = ChannelBank(4, 1)
        vc0 = bank.deterministic(1, VCClass.DETERMINISTIC_0)
        vc1 = bank.deterministic(1, VCClass.DETERMINISTIC_1)
        assert vc0.index == 0 and vc1.index == 1

    def test_deterministic_rejects_adaptive_class(self):
        bank = ChannelBank(4, 1)
        with pytest.raises(ValueError):
            bank.deterministic(0, VCClass.ADAPTIVE)

    def test_all_free_initially(self):
        bank = ChannelBank(6, 1)
        assert bank.all_free()
        assert bank.reserved_count() == 0

    def test_reserved_count_tracks(self):
        bank = ChannelBank(6, 1)
        bank.vc(0, 0).reserve(1)
        bank.vc(3, 2).reserve(2)
        assert bank.reserved_count() == 2
        assert not bank.all_free()

    def test_any_free(self):
        bank = ChannelBank(2, 1)
        assert bank.any_free(0)
        for vc in bank.vcs(0):
            vc.reserve(9)
        assert not bank.any_free(0)
        assert bank.any_free(1)
