"""Unit tests for the k-ary n-cube topology."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.network.topology import MINUS, PLUS, KAryNCube


# ---------------------------------------------------------------------------
# Construction
# ---------------------------------------------------------------------------
class TestConstruction:
    def test_node_count(self):
        assert KAryNCube(4, 2).num_nodes == 16
        assert KAryNCube(16, 2).num_nodes == 256
        assert KAryNCube(3, 3).num_nodes == 27

    def test_channel_count_is_2n_per_node(self):
        topo = KAryNCube(5, 2)
        assert topo.num_channels == topo.num_nodes * 2 * topo.n

    def test_rejects_radix_below_3(self):
        with pytest.raises(ValueError):
            KAryNCube(2, 2)

    def test_rejects_zero_dimensions(self):
        with pytest.raises(ValueError):
            KAryNCube(4, 0)

    def test_repr_mentions_parameters(self):
        assert "k=4" in repr(KAryNCube(4, 2))


# ---------------------------------------------------------------------------
# Coordinates
# ---------------------------------------------------------------------------
class TestCoordinates:
    def test_coords_of_zero(self, torus4):
        assert torus4.coords(0) == (0, 0)

    def test_coords_dimension_zero_fastest(self, torus4):
        assert torus4.coords(1) == (1, 0)
        assert torus4.coords(4) == (0, 1)

    def test_node_id_roundtrip_all_nodes(self, torus4):
        for node in range(torus4.num_nodes):
            assert torus4.node_id(torus4.coords(node)) == node

    def test_node_id_wraps_coordinates(self, torus4):
        assert torus4.node_id((4, 0)) == torus4.node_id((0, 0))
        assert torus4.node_id((-1, 0)) == torus4.node_id((3, 0))

    def test_node_id_rejects_wrong_arity(self, torus4):
        with pytest.raises(ValueError):
            torus4.node_id((1, 2, 3))

    def test_coords_rejects_out_of_range(self, torus4):
        with pytest.raises(ValueError):
            torus4.coords(16)
        with pytest.raises(ValueError):
            torus4.coords(-1)

    @given(st.integers(min_value=3, max_value=7),
           st.integers(min_value=1, max_value=3),
           st.data())
    @settings(max_examples=40, deadline=None)
    def test_roundtrip_property(self, k, n, data):
        topo = KAryNCube(k, n)
        node = data.draw(st.integers(min_value=0,
                                     max_value=topo.num_nodes - 1))
        assert topo.node_id(topo.coords(node)) == node


# ---------------------------------------------------------------------------
# Neighborhood
# ---------------------------------------------------------------------------
class TestNeighbors:
    def test_every_node_has_2n_distinct_neighbors(self, torus4):
        for node in range(torus4.num_nodes):
            neighbors = torus4.neighbors(node)
            assert len(neighbors) == 4
            assert len(set(neighbors)) == 4
            assert node not in neighbors

    def test_neighbor_wraps_around(self, torus4):
        edge = torus4.node_id((3, 0))
        assert torus4.neighbor(edge, 0, PLUS) == torus4.node_id((0, 0))
        assert torus4.neighbor(0, 0, MINUS) == edge

    def test_neighbor_involution(self, torus8):
        for node in (0, 13, 37, 63):
            for dim in range(torus8.n):
                for direction in (PLUS, MINUS):
                    step = torus8.neighbor(node, dim, direction)
                    back = torus8.neighbor(step, dim, -direction)
                    assert back == node

    def test_neighbor_rejects_bad_direction(self, torus4):
        with pytest.raises(ValueError):
            torus4.neighbor(0, 0, 2)

    def test_neighbor_rejects_bad_dimension(self, torus4):
        with pytest.raises(ValueError):
            torus4.neighbor(0, 5, PLUS)

    def test_neighbors_symmetric(self, torus3d):
        for node in (0, 17, 42):
            for other in torus3d.neighbors(node):
                assert node in torus3d.neighbors(other)


# ---------------------------------------------------------------------------
# Channels
# ---------------------------------------------------------------------------
class TestChannels:
    def test_channel_endpoints_consistent(self, torus4):
        for ch_id in range(torus4.num_channels):
            c = torus4.channel(ch_id)
            assert torus4.neighbor(c.src, c.dim, c.direction) == c.dst

    def test_channel_id_lookup(self, torus4):
        for ch_id in range(torus4.num_channels):
            c = torus4.channel(ch_id)
            assert torus4.channel_id(c.src, c.dim, c.direction) == ch_id

    def test_reverse_channel_is_involution(self, torus4):
        for ch_id in range(torus4.num_channels):
            rev = torus4.reverse_channel_id(ch_id)
            assert rev != ch_id
            assert torus4.reverse_channel_id(rev) == ch_id

    def test_reverse_channel_swaps_endpoints(self, torus4):
        for ch_id in (0, 5, 31):
            c = torus4.channel(ch_id)
            r = torus4.channel(torus4.reverse_channel_id(ch_id))
            assert (r.src, r.dst) == (c.dst, c.src)

    def test_channel_between_adjacent(self, torus4):
        ch = torus4.channel_between(0, 1)
        c = torus4.channel(ch)
        assert (c.src, c.dst) == (0, 1)

    def test_channel_between_wrap(self, torus4):
        edge = torus4.node_id((3, 0))
        ch = torus4.channel_between(edge, 0)
        assert torus4.channel(ch).direction == PLUS

    def test_channel_between_non_adjacent_raises(self, torus4):
        with pytest.raises(ValueError):
            torus4.channel_between(0, 2)

    def test_channel_between_same_node_raises(self, torus4):
        with pytest.raises(ValueError):
            torus4.channel_between(3, 3)


# ---------------------------------------------------------------------------
# Minimal-path geometry
# ---------------------------------------------------------------------------
class TestGeometry:
    def test_offset_zero_to_self(self, torus8):
        assert torus8.offsets(5, 5) == (0, 0)

    def test_offset_takes_short_way_around(self, torus8):
        a = torus8.node_id((0, 0))
        b = torus8.node_id((7, 0))
        assert torus8.offset(a, b, 0) == -1
        assert torus8.offset(b, a, 0) == 1

    def test_offset_half_way_positive_on_even_k(self, torus8):
        a = torus8.node_id((0, 0))
        b = torus8.node_id((4, 0))
        assert torus8.offset(a, b, 0) == 4
        assert torus8.offset(b, a, 0) == 4

    def test_distance_symmetric(self, torus8):
        for a, b in ((0, 63), (5, 42), (17, 17)):
            assert torus8.distance(a, b) == torus8.distance(b, a)

    def test_distance_matches_bfs(self, torus4):
        from collections import deque

        def bfs(src, dst):
            seen = {src: 0}
            q = deque([src])
            while q:
                node = q.popleft()
                if node == dst:
                    return seen[node]
                for nxt in torus4.neighbors(node):
                    if nxt not in seen:
                        seen[nxt] = seen[node] + 1
                        q.append(nxt)
            raise AssertionError("unreachable")

        for src in range(0, 16, 3):
            for dst in range(16):
                assert torus4.distance(src, dst) == bfs(src, dst)

    def test_profitable_ports_reduce_distance(self, torus8):
        src, dst = 0, 27
        d = torus8.distance(src, dst)
        for dim, direction in torus8.profitable_ports(src, dst):
            nxt = torus8.neighbor(src, dim, direction)
            assert torus8.distance(nxt, dst) == d - 1

    def test_profitable_ports_empty_at_destination(self, torus8):
        assert torus8.profitable_ports(9, 9) == []

    def test_profitable_ports_both_ways_on_half_ring(self, torus8):
        a = torus8.node_id((0, 0))
        b = torus8.node_id((4, 0))
        ports = torus8.profitable_ports(a, b)
        assert (0, PLUS) in ports and (0, MINUS) in ports

    def test_is_profitable_agrees_with_port_list(self, torus8):
        src, dst = 3, 50
        ports = set(torus8.profitable_ports(src, dst))
        for dim in range(torus8.n):
            for direction in (PLUS, MINUS):
                expected = (dim, direction) in ports
                assert torus8.is_profitable(src, dst, dim, direction) == expected

    @given(st.integers(min_value=3, max_value=8), st.data())
    @settings(max_examples=50, deadline=None)
    def test_distance_triangle_inequality(self, k, data):
        topo = KAryNCube(k, 2)
        nodes = st.integers(min_value=0, max_value=topo.num_nodes - 1)
        a, b, c = data.draw(nodes), data.draw(nodes), data.draw(nodes)
        assert topo.distance(a, c) <= topo.distance(a, b) + topo.distance(b, c)

    @given(st.integers(min_value=3, max_value=8), st.data())
    @settings(max_examples=50, deadline=None)
    def test_profitable_step_property(self, k, data):
        topo = KAryNCube(k, 2)
        nodes = st.integers(min_value=0, max_value=topo.num_nodes - 1)
        src, dst = data.draw(nodes), data.draw(nodes)
        if src == dst:
            return
        ports = topo.profitable_ports(src, dst)
        assert ports, "distinct nodes must have a profitable port"
        for dim, direction in ports:
            nxt = topo.neighbor(src, dim, direction)
            assert topo.distance(nxt, dst) < topo.distance(src, dst)

    def test_offsets_are_canonical_range(self, torus8):
        half = torus8.k // 2
        for src in (0, 11, 60):
            for dst in range(torus8.num_nodes):
                for off in torus8.offsets(src, dst):
                    assert -half <= off <= half

    def test_random_node_in_range(self, torus4):
        import random

        rng = random.Random(0)
        for _ in range(50):
            assert 0 <= torus4.random_node(rng) < torus4.num_nodes
