"""Tests for the benchmark snapshot differ (benchmarks/compare_bench.py).

``benchmarks/`` is not an installed package (it is collected only by
the perf jobs), so the module under test is loaded by file path.
"""

import importlib.util
import json
import pathlib

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
_SPEC = importlib.util.spec_from_file_location(
    "compare_bench", REPO_ROOT / "benchmarks" / "compare_bench.py"
)
compare_bench = importlib.util.module_from_spec(_SPEC)
_SPEC.loader.exec_module(compare_bench)


def _rows(**cps):
    return {
        name: {"workload": name, "cycles_per_sec": value}
        for name, value in cps.items()
    }


def _write_report(path, **cps):
    path.write_text(json.dumps({
        "scale": "quick", "k": 5, "n": 2,
        "workloads": list(_rows(**cps).values()),
    }))


def test_compare_flags_regression_beyond_threshold():
    rows, regressions = compare_bench.compare(
        _rows(a=1000.0, b=1000.0),
        _rows(a=900.0, b=960.0),
        threshold=0.05,
    )
    assert regressions == ["a"]
    by_name = {r["workload"]: r for r in rows}
    assert by_name["a"]["delta"] == -0.1
    assert abs(by_name["b"]["delta"] + 0.04) < 1e-12


def test_compare_tolerates_speedups_and_boundary():
    # Exactly at the threshold is not a regression (strict inequality).
    _, regressions = compare_bench.compare(
        _rows(a=1000.0, b=1000.0),
        _rows(a=950.0, b=3000.0),
        threshold=0.05,
    )
    assert regressions == []


def test_compare_ignores_one_sided_workloads():
    rows, regressions = compare_bench.compare(
        _rows(old_only=1000.0, shared=1000.0),
        _rows(new_only=10.0, shared=1000.0),
        threshold=0.05,
    )
    assert regressions == []
    by_name = {r["workload"]: r for r in rows}
    assert by_name["old_only"]["current"] is None
    assert by_name["new_only"]["baseline"] is None
    assert by_name["old_only"]["delta"] is None


def test_compare_workloads_filter_restricts_verdict():
    """The CI saturated-workload gate: only the named workloads count
    toward the table and the regression verdict."""
    baseline = _rows(**{"tp-high": 1000.0, "tp-idle-long": 1000.0})
    current = _rows(**{"tp-high": 900.0, "tp-idle-long": 100.0})
    # Unfiltered: both regress.
    _, regressions = compare_bench.compare(baseline, current, 0.05)
    assert regressions == ["tp-high", "tp-idle-long"]
    # Gated on tp-high only: the idle collapse is invisible, and the
    # 10% tp-high drop passes a 25% gate.
    rows, regressions = compare_bench.compare(
        baseline, current, 0.25, workloads=["tp-high"]
    )
    assert [r["workload"] for r in rows] == ["tp-high"]
    assert regressions == []
    _, regressions = compare_bench.compare(
        baseline, current, 0.05, workloads=["tp-high"]
    )
    assert regressions == ["tp-high"]


def test_main_workloads_gate_exit_codes(tmp_path, capsys):
    base = tmp_path / "base.json"
    cur = tmp_path / "cur.json"
    _write_report(base, **{"tp-high": 1000.0, "dp-high": 1000.0,
                           "tp-low": 1000.0})
    _write_report(cur, **{"tp-high": 700.0, "dp-high": 990.0,
                          "tp-low": 10.0})
    gate = ["--workloads", "tp-high,dp-high", "--threshold", "0.25"]
    assert compare_bench.main([str(base), str(cur)] + gate) == 1
    out = capsys.readouterr().out
    assert "tp-high" in out and "tp-low" not in out
    # The same gate passes once the saturated drop is within bounds.
    _write_report(cur, **{"tp-high": 800.0, "dp-high": 990.0,
                          "tp-low": 10.0})
    assert compare_bench.main([str(base), str(cur)] + gate) == 0


def test_main_exit_codes_and_render(tmp_path, capsys):
    base = tmp_path / "base.json"
    cur = tmp_path / "cur.json"
    _write_report(base, a=1000.0, b=1000.0)
    _write_report(cur, a=500.0, b=2000.0)
    assert compare_bench.main([str(base), str(cur)]) == 1
    out = capsys.readouterr().out
    assert "FAIL" in out and "a" in out

    # A looser threshold turns the same diff into a pass.
    assert compare_bench.main(
        [str(base), str(cur), "--threshold", "0.6"]
    ) == 0
    assert "PASS" in capsys.readouterr().out
