#!/usr/bin/env python
"""Mini latency-throughput face-off: TP vs DP vs MB-m (Figure 12 style).

Sweeps offered load on a fault-free 8-ary 2-cube and prints the
latency-throughput curve for the three protocols, then repeats with a
handful of failed nodes (DP, which is not fault-tolerant, sits out the
faulty round).  A fast, self-contained taste of the full benchmark
harness in benchmarks/.

Run:  python examples/protocol_faceoff.py
"""

from repro import FaultConfig, NetworkSimulator, SimulationConfig

LOADS = (0.05, 0.15, 0.30)


def measure(protocol: str, load: float, faults: int = 0):
    cfg = SimulationConfig(
        k=8, n=2, protocol=protocol, offered_load=load,
        message_length=32, warmup_cycles=400, measure_cycles=2000,
        seed=13, faults=FaultConfig(static_node_faults=faults),
    )
    return NetworkSimulator(cfg).run()


def face_off(protocols, faults: int) -> None:
    title = "fault-free" if faults == 0 else f"{faults} failed nodes"
    print(f"-- {title} --")
    print(f"{'load':>6}" + "".join(f"{p:>12} lat{p:>9} tput"
                                   for p in protocols))
    for load in LOADS:
        row = f"{load:>6.2f}"
        for proto in protocols:
            r = measure(proto, load, faults)
            row += f"{r.latency_mean:>16.1f}{r.throughput:>14.4f}"
        print(row)
    print()


def main() -> None:
    face_off(("tp", "dp", "mb"), faults=0)
    face_off(("tp", "mb"), faults=5)
    print("TP rides wormhole flow control, so it matches DP when the")
    print("network is healthy — and keeps beating MB-m's latency when")
    print("it is not, which is the paper's headline result.")


if __name__ == "__main__":
    main()
