#!/usr/bin/env python
"""Compare the three flow-control mechanisms of Figure 1.

Sends a single message over an idle path under wormhole routing,
scouting with several distances K, and pipelined circuit switching,
printing the measured latency next to the paper's Section 2.2 formula
— and showing how scouting interpolates between WR (K = 0) and PCS
(K >= path length).

Run:  python examples/flow_control_comparison.py
"""

from repro.core.latency_model import t_pcs, t_scouting, t_wormhole
from repro.experiments.formula_table import measure_single_message

LINKS = 6       # path length in hops
LENGTH = 32     # data flits per message


def analytic(flow: str, k: int) -> int:
    if flow == "wr":
        return t_wormhole(LINKS, LENGTH)
    if flow == "pcs":
        return t_pcs(LINKS, LENGTH)
    if k <= LINKS:
        return t_scouting(LINKS, LENGTH, k)
    return t_pcs(LINKS, LENGTH)


def main() -> None:
    print(f"One {LENGTH}-flit message over {LINKS} links (idle network)")
    print(f"{'mechanism':<18}{'analytic':>10}{'simulated':>11}")
    rows = [("wormhole (WR)", "wr", 0)]
    rows += [(f"scouting K={k}", "sr", k) for k in (1, 2, 3, 6, 9)]
    rows += [("PCS", "pcs", 0)]
    for label, flow, k in rows:
        measured = measure_single_message(flow, LINKS, LENGTH, k)
        print(f"{label:<18}{analytic(flow, k):>10}{measured:>11}")
    print()
    print("Scouting with K = 0 is wormhole; K >= path length behaves")
    print("like PCS — one router implements the whole spectrum, which")
    print("is the configurable flow control the paper proposes.")


if __name__ == "__main__":
    main()
