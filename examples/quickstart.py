#!/usr/bin/env python
"""Quickstart: simulate Two-Phase routing on a faulty torus.

Builds an 8-ary 2-cube with three failed nodes (the 2n - 1 theorem
budget for a 2-D network), offers uniform traffic at a moderate load,
and prints the latency / throughput summary — the paper's basic
measurement, in a dozen lines.

Run:  python examples/quickstart.py
"""

from repro import FaultConfig, NetworkSimulator, SimulationConfig

config = SimulationConfig(
    k=8,                      # 8-ary ...
    n=2,                      # ... 2-cube (64 nodes)
    protocol="tp",            # Two-Phase routing (the paper's protocol)
    message_length=32,        # 32-flit messages, 1-flit header
    offered_load=0.10,        # flits per node per cycle
    warmup_cycles=500,
    measure_cycles=3000,
    seed=7,
    faults=FaultConfig(static_node_faults=3),
)

result = NetworkSimulator(config).run()

print("Two-Phase routing on an 8-ary 2-cube with 3 failed nodes")
print(f"  messages delivered : {result.delivered}")
print(f"  average latency    : {result.latency_mean:.1f} "
      f"+- {result.latency_ci95:.1f} cycles (95% CI)")
print(f"  throughput         : {result.throughput:.4f} flits/node/cycle")
print(f"  offered load       : {result.offered_load:.4f} flits/node/cycle")
print(f"  undeliverable      : {result.dropped}")
print(f"  detours built      : {result.total_detours}")
print(f"  mean hops/message  : {result.mean_hops:.2f}")
