#!/usr/bin/env python
"""Watch a Two-Phase header detour around a wall of failed nodes.

Reproduces the flavor of the paper's Figure 7 routing example: faults
block every minimal path, the header switches from the optimistic DP
phase to conservative detour construction (misrouting + backtracking),
and the message still arrives.  The script prints the header's
behaviour counters and compares aggressive (K = 0) against
conservative (K = 3) flow control, and TP against the MB-m baseline.

Run:  python examples/fault_tolerant_routing.py
"""

import random

from repro.faults.model import FaultState
from repro.network.topology import KAryNCube
from repro.sim.config import SimulationConfig
from repro.sim.engine import Engine
from repro.sim.simulator import make_protocol


def build_walled_network() -> tuple:
    """An 8-ary 2-cube with a 3-node wall across the minimal path.

    Source (0,0), destination (3,0): every minimal path runs straight
    along y = 0 (the y offset is zero, so adaptive minimal routing
    cannot sidestep), and the wall of failed nodes at x = 2 blocks it;
    the header must detour through non-minimal rows.
    """
    topo = KAryNCube(8, 2)
    faults = FaultState(topo)
    for y in (7, 0, 1):  # wall at x = 2, straddling the path row y = 0
        faults.fail_node(topo.node_id((2, y)))
    src = topo.node_id((0, 0))
    dst = topo.node_id((3, 0))
    return topo, faults, src, dst


def route_once(protocol_name: str, **params) -> dict:
    topo, faults, src, dst = build_walled_network()
    cfg = SimulationConfig(
        k=8, n=2, protocol=protocol_name, offered_load=0.0,
        message_length=32, warmup_cycles=0, measure_cycles=0,
    )
    engine = Engine(
        cfg, make_protocol(protocol_name, **params),
        topology=topo, fault_state=faults, rng=random.Random(1),
    )
    msg = engine.inject(src, dst, length=32)
    for _ in range(4000):
        engine.step()
        if msg.is_terminal():
            break
    assert msg.status.name == "DELIVERED", msg
    return {
        "latency": msg.delivered_cycle - msg.created_cycle,
        "hops": msg.hops_taken,
        "misroutes": msg.misroute_total,
        "backtracks": msg.backtrack_count,
        "detours": msg.detour_count,
        "control flits": engine.control_flits_sent,
    }


def main() -> None:
    topo, faults, src, dst = build_walled_network()
    print("Faulty 8-ary 2-cube: nodes (2,7), (2,0), (2,1) failed")
    print(f"Route {topo.coords(src)} -> {topo.coords(dst)}: minimal "
          f"distance {topo.distance(src, dst)}, healthy shortest path "
          f"{faults.shortest_healthy_distance(src, dst)} hops")
    print()
    configs = [
        ("TP aggressive (K=0)", "tp", {"k_unsafe": 0}),
        ("TP conservative (K=3)", "tp", {"k_unsafe": 3}),
        ("MB-m (PCS)", "mb", {}),
    ]
    header = f"{'protocol':<24}" + "".join(
        f"{h:>14}" for h in (
            "latency", "hops", "misroutes", "backtracks", "detours",
            "ctl flits",
        )
    )
    print(header)
    for label, name, params in configs:
        stats = route_once(name, **params)
        print(
            f"{label:<24}{stats['latency']:>14}{stats['hops']:>14}"
            f"{stats['misroutes']:>14}{stats['backtracks']:>14}"
            f"{stats['detours']:>14}{stats['control flits']:>14}"
        )
    print()
    print("The TP header crosses unsafe channels, enters detour mode at")
    print("the wall, misroutes around it, and resumes DP routing — the")
    print("Figure 7 scenario.  MB-m sets the whole path up first and")
    print("pays the PCS round-trip before any data moves.")


if __name__ == "__main__":
    main()
