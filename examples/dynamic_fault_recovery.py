#!/usr/bin/env python
"""Dynamic fault recovery with kill flits and tail acknowledgments.

Reproduces the Figure 16 scenario: a physical link fails *while a
message pipeline occupies it*.  Kill flits travel to the source and the
destination, releasing every reserved virtual channel.  With reliable
delivery enabled (Figure 17's "with TAck"), the source holds a copy
until the tail acknowledgment arrives and retransmits the interrupted
message.

Run:  python examples/dynamic_fault_recovery.py
"""

import random

from repro.faults.injection import DynamicFaultSchedule, FaultEvent
from repro.network.topology import KAryNCube, PLUS
from repro.sim.config import RecoveryConfig, SimulationConfig
from repro.sim.engine import Engine
from repro.sim.simulator import make_protocol


def run_scenario(reliable: bool) -> None:
    topo = KAryNCube(8, 2)
    src = topo.node_id((0, 0))
    dst = topo.node_id((3, 0))
    # The link (1,0) -> (2,0) on the minimal path fails at cycle 10,
    # while the 32-flit pipeline occupies it.
    victim_link = topo.channel_id(topo.node_id((1, 0)), 0, PLUS)
    cfg = SimulationConfig(
        k=8, n=2, protocol="tp", offered_load=0.0, message_length=32,
        warmup_cycles=0, measure_cycles=0,
        recovery=RecoveryConfig(
            tail_ack=reliable, retransmit=reliable, max_retransmits=3
        ),
    )
    engine = Engine(
        cfg, make_protocol("tp"), topology=topo, rng=random.Random(1),
        dynamic_schedule=DynamicFaultSchedule(
            events=[FaultEvent(cycle=10, kind="link", target=victim_link)]
        ),
    )
    msg = engine.inject(src, dst, length=32)
    engine.drain(5000)

    mode = "reliable (with TAck)" if reliable else "recovery-only"
    print(f"--- {mode} ---")
    print(f"  original message : {msg.status.name} "
          f"({msg.killed_flits} flits destroyed by kill flits)")
    final = [r for r in engine.records if not r.superseded]
    outcome = final[-1]
    print(f"  final outcome    : {outcome.status}"
          + (f" after {outcome.retransmits} retransmission(s)"
             if outcome.retransmits else ""))
    print(f"  control flits    : {engine.control_flits_sent} "
          f"(headers, kills, acks)")
    print(f"  all channels free: {engine.channels.all_free()}")
    print()


def main() -> None:
    print("A 32-flit message is crossing link (1,0)->(2,0) when the link")
    print("fails at cycle 10 (the paper's Figure 16 scenario).\n")
    run_scenario(reliable=False)
    run_scenario(reliable=True)
    print("Without tail acknowledgments the message is torn down and")
    print("lost (rare, accepted by design); with them the source still")
    print("holds the message and retransmits it over a healthy path.")


if __name__ == "__main__":
    main()
