#!/usr/bin/env python
"""Render the paper's Figure 1 as live time-space diagrams.

Traces one 6-flit message over a 4-link path under each flow-control
mechanism and prints the ASCII time-space diagram: the header (H)
advancing right, acknowledgments (<) flowing left, and the data
pipeline (#) following — immediately behind for wormhole, 2K-1 links
behind for scouting, and only after the full setup round-trip for PCS.

Run:  python examples/time_space_diagram.py
"""

from repro.sim.trace import trace_single_message

LENGTH = 6
LINKS = 4


def show(title: str, protocol: str, **params) -> None:
    print(f"=== {title} ===")
    tracer = trace_single_message(
        "det", src=0, dst=LINKS, length=LENGTH,
        protocol_params=params, max_cycles=120,
    )
    print(tracer.render())
    msg = tracer.message
    print(f"delivered in {msg.delivered_cycle - msg.created_cycle} cycles\n")


def main() -> None:
    show("Wormhole routing (Figure 1 top)", "det", flow="wr")
    show("Scouting, K = 2 (Figure 1 middle)", "det", flow="sr", k=2)
    show("Pipelined circuit switching (Figure 1 bottom)", "det",
         flow="pcs")


if __name__ == "__main__":
    main()
