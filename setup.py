"""Legacy-compatible install shim (environments without the wheel pkg)."""
from setuptools import setup

setup()
