"""Restriction planning for online reconfiguration (DESIGN.md §10).

Given the accumulated fault set, :func:`compute_plan` derives the
routing-restriction epoch the controller commits through
:meth:`FaultState.reconfigure`:

* a **widened unsafe radius** — the at-risk ball around faulty
  components grows from the paper's 1-hop adjacency to an r-hop BFS
  ball, so TP headers switch to the conservative (scouting/detour)
  flow control *before* they are already inside a fault pocket; and
* **dead-end pruning** — inbound channels of healthy nodes left with
  at most one usable outgoing link are restricted, iterated to a
  fixpoint, so adaptive and misroute candidates stop steering traffic
  into pockets it can only back out of.  Pocket nodes stay deliverable
  (the route cache exempts the final hop from restrictions) and stay
  able to inject (their own outgoing channels are never restricted).

The plan is a pure, deterministic function of the fault state —
identical inputs yield identical restriction sets on every run and
under the quiescence fast-forward.  As a safety valve, a plan whose
restrictions would split the non-pocket healthy nodes into more than
one component (restrictions prune only adaptive candidates, but a
split would still force every crossing onto the escape layer) falls
back to the radius-only plan with no pruning.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import List, Set, Tuple

from repro.faults.model import FaultState


@dataclass(frozen=True)
class RestrictionPlan:
    """One deterministic restriction epoch, ready to commit."""

    #: Fault epoch the plan was derived from.
    epoch_basis: int
    #: Unsafe-ball radius to commit.
    unsafe_radius: int
    #: Channel ids to mark restricted (sorted, healthy at plan time).
    restricted_channels: Tuple[int, ...]
    #: Healthy nodes classified as pocket/dead-end interiors.
    pruned_nodes: Tuple[int, ...]
    #: Whether the pruned plan kept the non-pocket healthy nodes in one
    #: component (False = pruning was discarded, radius-only plan).
    connected: bool


def _usable_out_degree(
    faults: FaultState, node: int, restricted: Set[int]
) -> int:
    topo = faults.topology
    degree = 0
    for dim, direction in topo.ports(node):
        ch = topo.channel_id(node, dim, direction)
        if faults.channel_faulty[ch] or ch in restricted:
            continue
        degree += 1
    return degree


def _prune_dead_ends(
    faults: FaultState,
) -> Tuple[Set[int], List[int]]:
    """Iteratively restrict inbound channels of near-dead-end nodes.

    A healthy node whose usable (healthy, unrestricted) outgoing
    channels number at most one is a pocket interior: any adaptive hop
    into it must either terminate there or come straight back.  Its
    healthy inbound channels are restricted and the scan repeats
    (ascending node order, to a fixpoint) because each restriction
    lowers a neighbor's usable out-degree and can cascade along a
    corridor.  Outgoing channels of pruned nodes are left alone so the
    node's own injected traffic still has a way out.
    """
    topo = faults.topology
    restricted: Set[int] = set()
    pruned: List[int] = []
    pruned_set: Set[int] = set()
    changed = True
    while changed:
        changed = False
        for node in range(topo.num_nodes):
            if node in pruned_set or faults.is_node_faulty(node):
                continue
            if _usable_out_degree(faults, node, restricted) > 1:
                continue
            pruned.append(node)
            pruned_set.add(node)
            changed = True
            for dim, direction in topo.ports(node):
                out_ch = topo.channel_id(node, dim, direction)
                in_ch = topo.reverse_channel_id(out_ch)
                if not faults.channel_faulty[in_ch]:
                    restricted.add(in_ch)
    return restricted, pruned


def _non_pocket_connected(
    faults: FaultState, restricted: Set[int], pruned: Set[int]
) -> bool:
    """Whether non-pocket healthy nodes stay one component.

    Edges are healthy, unrestricted channels between non-pocket healthy
    nodes — the graph adaptive routing is left with after the plan.
    """
    topo = faults.topology
    nodes = [
        n for n in range(topo.num_nodes)
        if not faults.is_node_faulty(n) and n not in pruned
    ]
    if not nodes:
        # Pruning cascaded over every healthy node — the "plan" would
        # restrict the whole network, which steers nothing.  Treat it
        # as a failed plan so the caller falls back to radius-only.
        return False
    if len(nodes) == 1:
        return True
    seen = {nodes[0]}
    frontier = deque([nodes[0]])
    while frontier:
        node = frontier.popleft()
        for dim, direction in topo.ports(node):
            ch = topo.channel_id(node, dim, direction)
            if faults.channel_faulty[ch] or ch in restricted:
                continue
            nxt = topo.channel(ch).dst
            if nxt in pruned or nxt in seen:
                continue
            seen.add(nxt)
            frontier.append(nxt)
    return len(seen) == len(nodes)


def compute_plan(
    faults: FaultState,
    unsafe_radius: int = 2,
    prune_dead_ends: bool = True,
) -> RestrictionPlan:
    """Derive the restriction epoch for the current fault set."""
    if unsafe_radius < 1:
        raise ValueError("unsafe_radius must be >= 1")
    restricted: Set[int] = set()
    pruned: List[int] = []
    connected = True
    if prune_dead_ends:
        restricted, pruned = _prune_dead_ends(faults)
        if restricted:
            connected = _non_pocket_connected(
                faults, restricted, set(pruned)
            )
            if not connected:
                restricted = set()
                pruned = []
    return RestrictionPlan(
        epoch_basis=faults.epoch,
        unsafe_radius=unsafe_radius,
        restricted_channels=tuple(sorted(restricted)),
        pruned_nodes=tuple(pruned),
        connected=connected,
    )
