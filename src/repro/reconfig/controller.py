"""Online dynamic reconfiguration controller (DESIGN.md §10).

DBR-style reconfiguration layered on the recovery subsystem: the
paper's protocols only ever react per message (misrouting, scouting,
detours), so accumulated faults keep taxing every later message that
wanders into the same pocket.  :class:`ReconfigController` is an
engine ``on_cycle`` hook that watches fault-epoch movement and
*recovery pressure* — victim ejections from the deadlock watchdog
(:mod:`repro.sim.postmortem`), fault/abort teardowns, re-ejection cap
hits, and invariant-auditor violations (:mod:`repro.sim.invariants`)
— and, past a configurable threshold, recomputes the routing
restrictions online and commits them as a new
:attr:`FaultState.epoch`.

State machine::

    MONITOR --(epoch moved and pressure >= threshold)--> DRAIN
    DRAIN   --(no message mid-route, or timeout+ejection)--> commit
    commit  --(restrictions pushed, freeze lifted)--> MONITOR (cooldown)

Epoch-transition safety: during DRAIN the engine's ``routing_freeze``
holds every header with no reservations yet at its source, while
messages already mid-route finish (or are forcibly ejected at the
drain timeout) under the *old* restrictions.  The commit — a single
epoch bump through :meth:`FaultState.reconfigure` — happens only when
no message is mid-route, so no routing step ever mixes candidates
from two epochs and old-epoch circuits can never form a wait cycle
with new-epoch ones.  This trades a bounded reconfiguration downtime
(recorded per commit) for the global-safety argument the paper's
per-message scheme cannot make, matching the DBR playbook.

Fast-forward contract: :meth:`next_event_cycle` declares the next
monitor tick (or the very next cycle while draining), and off-tick
calls in MONITOR are pure no-ops, so quiescence fast-forward stays
byte-identical with the hook installed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.reconfig.restrictions import RestrictionPlan, compute_plan
from repro.sim.config import ResilienceConfig
from repro.sim.message import HeaderPhase

#: Pressure weights over the counter deltas of one sliding window:
#: (deadlock recoveries, fault teardowns, abort teardowns,
#:  victim-cap hits, invariant violations).
PRESSURE_WEIGHTS = (3, 1, 1, 2, 5)


@dataclass(frozen=True)
class ReconfigEvent:
    """One committed (or cancelled) reconfiguration."""

    cycle: int
    #: Cycles between freeze and commit (the reconfiguration downtime).
    downtime: int
    #: Pressure score that triggered the drain.
    pressure: int
    #: Number of restricted channels committed.
    restricted: int
    #: Unsafe radius committed.
    unsafe_radius: int
    #: Mid-route messages forcibly ejected at the drain timeout.
    ejected: int
    #: False for a finalize-time cancellation (freeze lifted, nothing
    #: committed — never commit into a mixed-epoch network at shutdown).
    committed: bool = True


class ReconfigController:
    """Engine hook implementing monitor -> drain -> commit."""

    MONITOR = "monitor"
    DRAIN = "drain"

    def __init__(self, settings: ResilienceConfig):
        self.settings = settings
        self.state = self.MONITOR
        self.events: List[ReconfigEvent] = []
        self.last_plan: Optional[RestrictionPlan] = None
        self._snap: Optional[Tuple[int, ...]] = None
        self._snap_cycle = 0
        #: Fault epoch at the last commit (lazily initialized to the
        #: post-placement epoch, so static power-on faults alone never
        #: trigger — reconfiguration reacts to *accumulating* faults).
        self._committed_epoch: Optional[int] = None
        self._cooldown_until = -1
        self._freeze_start = 0
        self._pending_pressure = 0

    # ------------------------------------------------------------------
    # Fast-forward contract
    # ------------------------------------------------------------------
    def next_event_cycle(self, engine) -> Optional[int]:
        """First future cycle at which :meth:`__call__` might act.

        While draining the controller must see every cycle (the
        frozen-but-active network is never quiescent anyway); while
        monitoring, only the periodic check tick mutates state, exactly
        like the invariant auditor's audit tick.
        """
        if self.state == self.DRAIN:
            return engine.cycle + 1
        every = self.settings.reconfig_check_every
        return (engine.cycle // every + 1) * every

    def __call__(self, engine) -> None:
        if self.state == self.DRAIN:
            self._drain_tick(engine)
            return
        if engine.cycle % self.settings.reconfig_check_every:
            return
        self._monitor_tick(engine)

    # ------------------------------------------------------------------
    # MONITOR
    # ------------------------------------------------------------------
    @staticmethod
    def _counters(engine) -> Tuple[int, ...]:
        td = engine.teardown_counts
        return (
            engine.deadlock_recoveries,
            td.get("fault", 0),
            td.get("abort", 0),
            engine.victim_cap_hits,
            engine.auditor.violations_found if engine.auditor else 0,
        )

    def _pressure(self, counters: Tuple[int, ...]) -> int:
        assert self._snap is not None
        return sum(
            w * (now - then)
            for w, now, then in zip(PRESSURE_WEIGHTS, counters, self._snap)
        )

    def _monitor_tick(self, engine) -> None:
        cycle = engine.cycle
        if self._committed_epoch is None:
            self._committed_epoch = engine.faults.epoch
        counters = self._counters(engine)
        if self._snap is None:
            self._snap = counters
            self._snap_cycle = cycle
            return
        if (
            cycle >= self._cooldown_until
            and engine.faults.epoch != self._committed_epoch
        ):
            pressure = self._pressure(counters)
            if pressure >= self.settings.reconfig_threshold:
                self._pending_pressure = pressure
                self._freeze_start = cycle
                engine.routing_freeze = True
                self.state = self.DRAIN
                return
        if cycle - self._snap_cycle >= self.settings.reconfig_window:
            self._snap = counters
            self._snap_cycle = cycle

    # ------------------------------------------------------------------
    # DRAIN
    # ------------------------------------------------------------------
    @staticmethod
    def _mid_route(msg) -> bool:
        """Still routing under the old epoch: path begun, header live.

        Messages in teardown only release resources, and messages
        whose header reached the destination only stream data down an
        established circuit — neither makes further routing decisions,
        so neither can extend a wait cycle into the new epoch.
        """
        return (
            not msg.teardown
            and bool(msg.path)
            and msg.header_phase is not HeaderPhase.DELIVERED
        )

    def _drained_for_commit(self, engine) -> bool:
        return not any(
            self._mid_route(msg) for msg in engine.active.values()
        )

    def _drain_tick(self, engine) -> None:
        ejected = 0
        if not self._drained_for_commit(engine):
            waited = engine.cycle - self._freeze_start
            if waited < self.settings.reconfig_drain_timeout:
                return
            ejected = self._eject_stragglers(engine)
        self._commit(engine, ejected)

    def _eject_stragglers(self, engine) -> int:
        """Drain timed out: tear down the remaining old-epoch circuits.

        The teardown path requeues each victim from its source (under
        the usual retry budget), where the routing freeze holds it
        until the new epoch is committed — the forced ejection converts
        stragglers into post-commit retries rather than losses.
        """
        stragglers = sorted(
            (m for m in engine.active.values() if self._mid_route(m)),
            key=lambda m: m.msg_id,
        )
        for msg in stragglers:
            engine.reconfig_victims.append(msg.msg_id)
            engine._teardown(msg, "reconfig", msg.header_router)
        return len(stragglers)

    # ------------------------------------------------------------------
    # COMMIT
    # ------------------------------------------------------------------
    def _commit(self, engine, ejected: int) -> None:
        res = self.settings
        plan = compute_plan(
            engine.faults,
            unsafe_radius=res.reconfig_unsafe_radius,
            prune_dead_ends=res.reconfig_prune_dead_ends,
        )
        engine.faults.reconfigure(
            plan.restricted_channels, unsafe_radius=plan.unsafe_radius
        )
        self.last_plan = plan
        self._committed_epoch = engine.faults.epoch
        downtime = engine.cycle - self._freeze_start
        engine.reconfigurations += 1
        engine.reconfig_downtime_cycles += downtime
        engine.last_recovery_cycle = engine.cycle
        engine.routing_freeze = False
        self.state = self.MONITOR
        self._cooldown_until = engine.cycle + res.reconfig_cooldown
        self._snap = self._counters(engine)
        self._snap_cycle = engine.cycle
        self.events.append(
            ReconfigEvent(
                cycle=engine.cycle,
                downtime=downtime,
                pressure=self._pending_pressure,
                restricted=len(plan.restricted_channels),
                unsafe_radius=plan.unsafe_radius,
                ejected=ejected,
            )
        )

    # ------------------------------------------------------------------
    def finalize(self, engine) -> None:
        """End-of-measurement cleanup, before the drain phase runs.

        A reconfiguration still in DRAIN is cancelled, not committed:
        committing would let frozen headers start routing under the new
        epoch while old-epoch circuits are still in flight, violating
        the transition invariant.  The freeze is lifted so the engine's
        ordinary drain can finish the run; the abandoned attempt is
        recorded with ``committed=False``.
        """
        if self.state != self.DRAIN:
            return
        downtime = engine.cycle - self._freeze_start
        engine.reconfig_downtime_cycles += downtime
        engine.routing_freeze = False
        self.state = self.MONITOR
        self.events.append(
            ReconfigEvent(
                cycle=engine.cycle,
                downtime=downtime,
                pressure=self._pending_pressure,
                restricted=0,
                unsafe_radius=engine.faults.unsafe_radius,
                ejected=0,
                committed=False,
            )
        )
