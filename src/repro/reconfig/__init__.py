"""Online dynamic reconfiguration (DBR-style) — see DESIGN.md §10.

The paper's protocols react to faults per message; this subsystem
reacts per *network*: when faults accumulate and recovery pressure
rises, the :class:`ReconfigController` drains in-flight routing,
recomputes the routing restrictions (:func:`compute_plan`) and commits
them as a new :class:`~repro.faults.model.FaultState` epoch that every
route cache picks up atomically.
"""

from repro.reconfig.controller import (
    PRESSURE_WEIGHTS,
    ReconfigController,
    ReconfigEvent,
)
from repro.reconfig.restrictions import RestrictionPlan, compute_plan

__all__ = [
    "PRESSURE_WEIGHTS",
    "ReconfigController",
    "ReconfigEvent",
    "RestrictionPlan",
    "compute_plan",
]
