"""Router flit buffers: DIBU / DOBU / CIBU / COBU (Section 5.0, Fig 8).

Each input and output physical channel of the router has a link control
unit feeding FIFO buffers: one data buffer per virtual channel (DIBU on
the input side, DOBU on the output side) and a single control buffer
(CIBU/COBU) for the multiplexed control channel.  The DIBU's *output
enable* is driven by the routing control unit — this is the hook the
counter management unit uses to block data flits until the scouting
counter reaches K (Figure 11).
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Generic, Optional, TypeVar

T = TypeVar("T")


class FlitFifo(Generic[T]):
    """A bounded FIFO flit buffer with an RCU-controlled output enable."""

    def __init__(self, capacity: int, name: str = ""):
        if capacity < 1:
            raise ValueError("buffer capacity must be >= 1")
        self.capacity = capacity
        self.name = name
        self._flits: Deque[T] = deque()
        #: Output enable, driven by the RCU (Figure 11's enable lines).
        self.output_enabled = True

    def __len__(self) -> int:
        return len(self._flits)

    @property
    def full(self) -> bool:
        return len(self._flits) >= self.capacity

    @property
    def empty(self) -> bool:
        return not self._flits

    @property
    def free_slots(self) -> int:
        return self.capacity - len(self._flits)

    def push(self, flit: T) -> None:
        if self.full:
            raise BufferOverflow(
                f"{self.name or 'buffer'} overflow (capacity {self.capacity})"
            )
        self._flits.append(flit)

    def peek(self) -> Optional[T]:
        return self._flits[0] if self._flits else None

    def pop(self) -> T:
        """Remove the head flit; requires the output enable asserted."""
        if not self.output_enabled:
            raise BufferBlocked(
                f"{self.name or 'buffer'} output is disabled by the RCU"
            )
        if not self._flits:
            raise BufferUnderflow(f"{self.name or 'buffer'} is empty")
        return self._flits.popleft()

    def clear(self) -> None:
        """Discard contents (kill-flit resource recovery)."""
        self._flits.clear()


class BufferOverflow(RuntimeError):
    """Pushed into a full flit buffer (a flow-control violation)."""


class BufferUnderflow(RuntimeError):
    """Popped from an empty flit buffer."""


class BufferBlocked(RuntimeError):
    """Popped from a buffer whose output enable is deasserted."""


class ChannelBuffers:
    """The buffer set of one physical channel side (input or output).

    ``data[i]`` is the DIBU/DOBU of virtual channel ``i``; ``control``
    is the single multiplexed CIBU/COBU.
    """

    def __init__(self, num_vcs: int, data_depth: int, control_depth: int,
                 side: str = "in"):
        prefix = "DIBU" if side == "in" else "DOBU"
        cprefix = "CIBU" if side == "in" else "COBU"
        self.data = [
            FlitFifo(data_depth, name=f"{prefix}{i}") for i in range(num_vcs)
        ]
        self.control = FlitFifo(control_depth, name=cprefix)

    def data_occupancy(self) -> int:
        return sum(len(b) for b in self.data)
