"""Link control unit (Section 5.0, Figure 8).

One LCU per physical channel direction.  On the output side it
allocates the physical channel's flit slots among the resident virtual
channels — control first (the multiplexed control channel gates
protocol progress and is a small fraction of traffic), then data VCs
demand-driven round-robin [6].  On the input side it demultiplexes
arriving flits into the per-VC DIBUs / the CIBU.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.network.link import RoundRobinArbiter
from repro.router.buffers import ChannelBuffers

#: Sentinel VC index meaning "the control channel won the slot".
CONTROL_SLOT = -1


class LinkControlUnit:
    """Output-side physical channel scheduler for one link direction."""

    def __init__(self, num_vcs: int):
        self.num_vcs = num_vcs
        self.arbiter = RoundRobinArbiter(num_vcs)
        self.control_sent = 0
        self.data_sent = 0

    def allocate(self, control_pending: bool,
                 data_requests: Sequence[bool],
                 credits: Sequence[int]) -> Optional[int]:
        """Pick this cycle's flit: CONTROL_SLOT, a VC index, or None.

        ``data_requests[i]`` — VC i has a flit at its DOBU head;
        ``credits[i]`` — downstream DIBU slots available for VC i.
        """
        if control_pending:
            self.control_sent += 1
            return CONTROL_SLOT
        if len(data_requests) != self.num_vcs or len(credits) != self.num_vcs:
            raise ValueError("request/credit vectors must match VC count")
        eligible = [
            data_requests[i] and credits[i] > 0 for i in range(self.num_vcs)
        ]
        winner = self.arbiter.grant(eligible)
        if winner is not None:
            self.data_sent += 1
        return winner


class InputLinkControlUnit:
    """Input-side demultiplexer into the per-VC DIBUs and the CIBU."""

    def __init__(self, buffers: ChannelBuffers):
        self.buffers = buffers
        self.received = 0

    def receive(self, vc_index: int, flit) -> None:
        """Steer an arriving flit into its buffer.

        ``vc_index == CONTROL_SLOT`` routes to the CIBU.
        """
        if vc_index == CONTROL_SLOT:
            self.buffers.control.push(flit)
        else:
            self.buffers.data[vc_index].push(flit)
        self.received += 1

    def credits(self) -> Sequence[int]:
        """Free DIBU slots per VC (returned upstream as flow control)."""
        return [b.free_slots for b in self.buffers.data]
