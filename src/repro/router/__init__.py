"""Router microarchitecture (Section 5.0): structural models of the
LCU, DIBU/DOBU/CIBU/COBU buffers, crossbar, RCU (decision unit, unsafe
store, history store), and CMU, assembled by
:class:`repro.router.model.RouterModel`.
"""

from repro.router.buffers import (
    BufferBlocked,
    BufferOverflow,
    BufferUnderflow,
    ChannelBuffers,
    FlitFifo,
)
from repro.router.cmu import CounterManagementUnit, VCCounter
from repro.router.crossbar import Crossbar, CrossbarConflict
from repro.router.lcu import CONTROL_SLOT, InputLinkControlUnit, LinkControlUnit
from repro.router.model import RouterModel
from repro.router.rcu import HistoryStore, RoutingControlUnit, UnsafeStore

__all__ = [
    "BufferBlocked",
    "BufferOverflow",
    "BufferUnderflow",
    "CONTROL_SLOT",
    "ChannelBuffers",
    "CounterManagementUnit",
    "Crossbar",
    "CrossbarConflict",
    "FlitFifo",
    "HistoryStore",
    "InputLinkControlUnit",
    "LinkControlUnit",
    "RouterModel",
    "RoutingControlUnit",
    "UnsafeStore",
    "VCCounter",
]
