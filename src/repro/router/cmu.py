"""Counter management unit (Section 5.0).

One counter and one programmable K register per data virtual channel:
a positive acknowledgment for the circuit mapped onto the channel
increments the counter, a negative acknowledgment decrements it, and
data flits are enabled to flow (the DIBU output enable of Figure 11)
once the counter reaches K.  For K = 3 — Theorem 2's sufficient
scouting distance — a two-bit counter suffices, and the hardware model
enforces the configured width by saturating.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.core.theorems import cmu_counter_bits


class VCCounter:
    """One virtual channel's acknowledgment counter + K register."""

    __slots__ = ("bits", "k", "value", "circuit")

    def __init__(self, bits: int):
        if bits < 1:
            raise ValueError("counter width must be >= 1 bit")
        self.bits = bits
        self.k = 0
        self.value = 0
        #: Message id of the circuit currently mapped onto this VC.
        self.circuit: Optional[int] = None

    @property
    def max_value(self) -> int:
        return (1 << self.bits) - 1

    def program(self, circuit: int, k: int) -> None:
        """Map a circuit onto the VC and program its scouting distance."""
        if k > self.max_value:
            raise ValueError(
                f"K={k} does not fit a {self.bits}-bit counter"
            )
        self.circuit = circuit
        self.k = k
        self.value = 0

    def positive_ack(self) -> None:
        self.value = min(self.max_value, self.value + 1)

    def negative_ack(self) -> None:
        self.value = max(0, self.value - 1)

    @property
    def data_enabled(self) -> bool:
        """Counter reached K: data flits may advance (Figure 11)."""
        return self.value >= self.k

    def release(self) -> None:
        self.circuit = None
        self.k = 0
        self.value = 0


class CounterManagementUnit:
    """The per-router bank of VC counters (all counters live in the CMU).

    Indexed by (input port, virtual channel); acknowledgments arriving
    for a circuit are routed to the counter of the data VC the circuit
    occupies.
    """

    def __init__(self, num_ports: int, num_vcs: int, max_k: int = 3):
        bits = max(1, cmu_counter_bits(max_k))
        self.max_k = max_k
        self.counters: List[List[VCCounter]] = [
            [VCCounter(bits) for _ in range(num_vcs)]
            for _ in range(num_ports)
        ]
        self._by_circuit: Dict[int, VCCounter] = {}

    def counter(self, port: int, vc: int) -> VCCounter:
        return self.counters[port][vc]

    def program(self, port: int, vc: int, circuit: int, k: int) -> None:
        counter = self.counters[port][vc]
        counter.program(circuit, k)
        self._by_circuit[circuit] = counter

    def ack_arrived(self, circuit: int, positive: bool = True) -> bool:
        """Route an acknowledgment to its circuit's counter.

        Returns False when no counter is mapped (the circuit was torn
        down); the ack is then dropped, as in the engine.
        """
        counter = self._by_circuit.get(circuit)
        if counter is None:
            return False
        if positive:
            counter.positive_ack()
        else:
            counter.negative_ack()
        return True

    def data_enabled(self, circuit: int) -> bool:
        counter = self._by_circuit.get(circuit)
        return counter.data_enabled if counter is not None else False

    def release(self, circuit: int) -> None:
        counter = self._by_circuit.pop(circuit, None)
        if counter is not None:
            counter.release()
