"""Routing control unit (Section 5.0, Figure 10).

The RCU receives routing headers from the control input buffers,
decodes them, consults the *unsafe channel store* (one status bit per
physical channel) and the *history store* (output channels already
searched by the circuit on each input VC), runs the routing decision,
maps the input VC to the selected output VC in the crossbar, updates
the header (offsets, misroute count, SR/detour/backtrack bits), and
hands it to the output arbitration unit.

This module is the structural model of the hardware blocks; the
cycle-accurate behaviour of the decisions themselves lives in the
protocol classes (:mod:`repro.routing`, :mod:`repro.core.two_phase`),
which the performance engine drives directly.  The stores here are
exercised by the router-architecture tests to pin down the hardware
cost (store sizes, header bit widths) that Section 5.0 reports.
"""

from __future__ import annotations

from typing import Dict, Set, Tuple

from repro.core.header import Header, decode, encode, header_bits


class UnsafeStore:
    """One unsafe status bit per physical channel of the router."""

    def __init__(self, num_ports: int):
        self._bits = [False] * num_ports

    def mark(self, port: int, unsafe: bool = True) -> None:
        self._bits[port] = unsafe

    def is_unsafe(self, port: int) -> bool:
        return self._bits[port]

    @property
    def size_bits(self) -> int:
        return len(self._bits)


class HistoryStore:
    """Searched output channels, indexed by input virtual channel.

    When a backtracking header returns over an input VC, the output it
    had taken is recorded so the depth-first search never re-takes it;
    the entry clears when the circuit releases the VC.
    """

    def __init__(self, num_ports: int, num_vcs: int):
        self.num_ports = num_ports
        self.num_vcs = num_vcs
        self._searched: Dict[Tuple[int, int], Set[int]] = {}

    def record(self, in_port: int, in_vc: int, out_port: int) -> None:
        self._check(in_port, in_vc, out_port)
        self._searched.setdefault((in_port, in_vc), set()).add(out_port)

    def searched(self, in_port: int, in_vc: int) -> Set[int]:
        return self._searched.get((in_port, in_vc), set())

    def clear(self, in_port: int, in_vc: int) -> None:
        self._searched.pop((in_port, in_vc), None)

    @property
    def size_bits(self) -> int:
        """Worst-case store size: one bit per output per input VC."""
        return self.num_ports * self.num_vcs * self.num_ports

    def _check(self, in_port: int, in_vc: int, out_port: int) -> None:
        if not (
            0 <= in_port < self.num_ports
            and 0 <= in_vc < self.num_vcs
            and 0 <= out_port < self.num_ports
        ):
            raise ValueError("port/vc out of range")


class RoutingControlUnit:
    """Decode/update datapath of the RCU around a routing decision."""

    def __init__(self, k: int, n: int, num_vcs: int):
        self.k = k
        self.n = n
        #: 2n network ports plus the PE port.
        self.num_ports = 2 * n + 1
        self.num_vcs = num_vcs
        self.unsafe_store = UnsafeStore(self.num_ports)
        self.history_store = HistoryStore(self.num_ports, num_vcs)

    @property
    def header_width_bits(self) -> int:
        """Width of the routing header flit (Figure 9)."""
        return header_bits(self.k, self.n)

    def decode_header(self, word: int) -> Header:
        return decode(word, self.k, self.n)

    def update_header(self, header: Header, dim: int, direction: int,
                      misroute: bool = False) -> int:
        """Apply a hop to a header and re-encode it for the COBU."""
        if misroute:
            header.misroutes += 1
        header.apply_hop(dim, direction, self.k)
        return encode(header, self.k)

    def port_of(self, dim: int, direction: int) -> int:
        """Physical port index of a (dimension, direction) pair."""
        if not 0 <= dim < self.n:
            raise ValueError(f"dimension {dim} out of range")
        if direction not in (+1, -1):
            raise ValueError("direction must be +1 or -1")
        return 2 * dim + (0 if direction == +1 else 1)

    @property
    def pe_port(self) -> int:
        return self.num_ports - 1
