"""Block-level router model assembling the Section 5.0 datapath.

:class:`RouterModel` wires the structural pieces of Figure 8 together:
per-channel LCUs and buffer sets, the crossbar, the RCU with its
unsafe/history stores, and the CMU counter bank.  It models one
router's header-processing datapath end to end — decode, decide (via a
pluggable decision callable), crossbar mapping, counter programming,
header update, output buffering — and is used by the architecture
tests to verify the hardware cost claims (header width, counter width,
store sizes) and block interactions.

The cycle-accurate *network* behaviour lives in
:mod:`repro.sim.engine`, which implements the same mechanisms in a
message-centric form for speed; this model is the per-router
structural view.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Tuple

from repro.core.header import Header, encode
from repro.router.buffers import ChannelBuffers
from repro.router.cmu import CounterManagementUnit
from repro.router.crossbar import Crossbar
from repro.router.lcu import CONTROL_SLOT, InputLinkControlUnit, LinkControlUnit
from repro.router.rcu import RoutingControlUnit

#: decision(header) -> (out_port, out_vc, dim, direction, k, misroute)
DecisionFn = Callable[[Header, int, int], Optional[Tuple[int, int, int, int, int, bool]]]


@dataclass
class RoutedHeader:
    """Result of one header pass through the router datapath."""

    word: int
    out_port: int
    out_vc: int


class RouterModel:
    """One router: 2n network ports + the PE port."""

    def __init__(self, k: int, n: int, num_vcs: int = 3,
                 data_depth: int = 2, control_depth: int = 8,
                 max_k: int = 3):
        self.rcu = RoutingControlUnit(k, n, num_vcs)
        ports = self.rcu.num_ports
        self.num_vcs = num_vcs
        self.inputs = [
            ChannelBuffers(num_vcs, data_depth, control_depth, side="in")
            for _ in range(ports)
        ]
        self.outputs = [
            ChannelBuffers(num_vcs, data_depth, control_depth, side="out")
            for _ in range(ports)
        ]
        self.input_lcus = [InputLinkControlUnit(b) for b in self.inputs]
        self.output_lcus = [LinkControlUnit(num_vcs) for _ in range(ports)]
        self.crossbar = Crossbar(ports, num_vcs)
        self.cmu = CounterManagementUnit(ports, num_vcs, max_k=max_k)

    # ------------------------------------------------------------------
    # Header datapath
    # ------------------------------------------------------------------
    def process_header(self, word: int, in_port: int, in_vc: int,
                       circuit: int, decide: DecisionFn) -> Optional[RoutedHeader]:
        """Run one header through decode -> decision -> map -> encode.

        Returns ``None`` when the decision blocks (header stays in the
        RCU pending set).  The decision callable plays the role of the
        protocol logic in the RCU's decision unit.
        """
        header = self.rcu.decode_header(word)
        choice = decide(header, in_port, in_vc)
        if choice is None:
            return None
        out_port, out_vc, dim, direction, k, misroute = choice
        self.crossbar.connect((in_port, in_vc), (out_port, out_vc))
        self.cmu.program(out_port, out_vc, circuit, k)
        new_word = self.rcu.update_header(header, dim, direction, misroute)
        self.outputs[out_port].control.push(new_word)
        return RoutedHeader(word=new_word, out_port=out_port, out_vc=out_vc)

    def backtrack_header(self, word: int, in_port: int, in_vc: int,
                         circuit: int, out_port: int) -> int:
        """Undo a hop: record history, tear the mapping, re-encode."""
        header = self.rcu.decode_header(word)
        header.backtrack = True
        self.rcu.history_store.record(in_port, in_vc, out_port)
        self.crossbar.disconnect((in_port, in_vc))
        self.cmu.release(circuit)
        return encode(header, self.rcu.k)

    # ------------------------------------------------------------------
    # Data datapath
    # ------------------------------------------------------------------
    def data_gate_open(self, circuit: int) -> bool:
        """Figure 11: DIBU output enable from the CMU counter."""
        return self.cmu.data_enabled(circuit)

    def transfer_data_flit(self, in_port: int, in_vc: int) -> bool:
        """Move one data flit input DIBU -> mapped output DOBU."""
        dst = self.crossbar.output_for((in_port, in_vc))
        if dst is None:
            return False
        src_buf = self.inputs[in_port].data[in_vc]
        dst_buf = self.outputs[dst[0]].data[dst[1]]
        if src_buf.empty or dst_buf.full or not src_buf.output_enabled:
            return False
        dst_buf.push(src_buf.pop())
        return True

    def allocate_output(self, port: int) -> Optional[int]:
        """One physical-channel slot for an output LCU this cycle."""
        out = self.outputs[port]
        return self.output_lcus[port].allocate(
            control_pending=not out.control.empty,
            data_requests=[not b.empty for b in out.data],
            credits=[b.free_slots for b in out.data],
        )

    # ------------------------------------------------------------------
    # Hardware-cost summary (the Section 5.0 claims)
    # ------------------------------------------------------------------
    def hardware_summary(self) -> dict:
        return {
            "header_bits": self.rcu.header_width_bits,
            "unsafe_store_bits": self.rcu.unsafe_store.size_bits,
            "history_store_bits": self.rcu.history_store.size_bits,
            "counter_bits_per_vc": self.cmu.counters[0][0].bits,
            "ports": self.rcu.num_ports,
            "vcs_per_port": self.num_vcs,
        }


__all__ = ["RouterModel", "RoutedHeader", "CONTROL_SLOT"]
