"""Router crossbar (Figure 8).

Data flits move from the DIBUs to the DOBUs through an internal
crossbar switch.  The routing control unit maps an input (port, VC) to
an output (port, VC) when a header is routed; the crossbar guarantees
each output is driven by at most one input and transfers one flit per
mapped pair per cycle.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

Port = Tuple[int, int]  # (physical port, virtual channel)


class CrossbarConflict(RuntimeError):
    """Two circuits mapped to the same crossbar output."""


class Crossbar:
    """Input->output mapping of data virtual channels."""

    def __init__(self, num_ports: int, num_vcs: int):
        self.num_ports = num_ports
        self.num_vcs = num_vcs
        self._forward: Dict[Port, Port] = {}
        self._reverse: Dict[Port, Port] = {}

    def connect(self, src: Port, dst: Port) -> None:
        """Map input VC ``src`` to output VC ``dst`` (RCU action)."""
        self._check(src)
        self._check(dst)
        if src in self._forward:
            raise CrossbarConflict(f"input {src} is already mapped")
        if dst in self._reverse:
            raise CrossbarConflict(
                f"output {dst} is already driven by {self._reverse[dst]}"
            )
        self._forward[src] = dst
        self._reverse[dst] = src

    def disconnect(self, src: Port) -> None:
        """Remove a mapping (tail flit passed / path released)."""
        dst = self._forward.pop(src, None)
        if dst is not None:
            self._reverse.pop(dst, None)

    def output_for(self, src: Port) -> Optional[Port]:
        return self._forward.get(src)

    def input_for(self, dst: Port) -> Optional[Port]:
        return self._reverse.get(dst)

    @property
    def connections(self) -> List[Tuple[Port, Port]]:
        return sorted(self._forward.items())

    def is_permutation_valid(self) -> bool:
        """Every output driven by exactly one input (structural check)."""
        return len(self._forward) == len(self._reverse)

    def _check(self, port: Port) -> None:
        p, v = port
        if not (0 <= p < self.num_ports and 0 <= v < self.num_vcs):
            raise ValueError(f"port {port} out of range")
