"""Struct-of-arrays flit-transport kernel (DESIGN.md §12).

The event engine (§11) made per-cycle work proportional to events; at
saturation what remains is the data-movement walk: for every live
message, scan the occupied window of its path, re-checking per
position the credit/gate/lock predicates, to discover which flits can
move.  Most scanned positions yield nothing — the scan is the last
per-cycle cost that is *batchable*.  This kernel batches exactly
that:

* **Predicate pass** (stage 1): per-message pipeline state is
  mirrored into flat preallocated int64 buffers — one *row* per
  attached message, occupancy encoded as per-row *bitmasks* (bit
  ``p`` of ``occ`` set iff ``buffered[p] > 0``, bit ``p`` of ``full``
  iff ``buffered[p]`` is at buffer depth).  Eight element-wise numpy
  ops over those masks compute, for every attached message at once,
  the exact set of path positions the object walk would consider
  movable this cycle.

* **Ordered applier** (stage 2): a compact Python pass iterates
  ``engine.active`` in the walk's order and commits the candidate
  bits through the *same object mutations the walk performs* —
  ``buffered``/``crossed`` list updates, eager ``vc.grants`` credit,
  the same arbiter/eject round-robin calls, the same release
  trigger.  The ordering-sensitive interactions — inline moves,
  ``used_by_control`` gating, eject bucket insertion order, in-band
  header arrival order, tail-ack — all live here, so observable
  behavior is byte-identical to the walk (pinned by the determinism
  matrix and the lockstep property suite).

The object lists stay authoritative at all times: the kernel never
holds occupancy the objects don't — the mirror is *derived* state
(maskable summaries), rebuilt per row whenever an engine-side
mutation invalidates it.  That keeps the coherence protocol trivial:
any site that clears ``dm_quiet`` also calls ``touch`` and the row is
resynced (O(path length)) before the next predicate pass; rows the
object walk advances during low-occupancy fallback cycles are marked
the same way.  Auditors, traces, postmortem, and results read the
objects directly — there is nothing to flush.

Why the candidate set is computable from pre-scan state: the walk's
``moved_into`` correction makes every occupancy read see the pre-move
count, moves go strictly downstream, and bucketed moves commit after
the scan — so the set of (message, position) candidates is a pure
function of the state at cycle start, which is what the masks hold.

The predicate reads five *maintained* per-row masks besides the
occupancy pair:

* ``wtopm`` — bits ``0..min(head_link + 1, len(path) - 1)``, the top
  of the movable window; recomputed on head advance and row resync;
* ``ntailm`` — complement of bits ``0..tail_idx``, the bottom of the
  window; recomputed on tail advance;
* ``inj`` — bit 0 while source flits remain (cleared once, when the
  backlog empties);
* ``static`` — released-link bits plus the backtrack-lock bit (a
  release sets its bit in place; resync recomputes);
* ``nchm`` — complement of the flow-control-closed bit at the head
  advance position; recomputed on head advance and resync
  (``closed`` itself is kept per-row, store-side only).

The kernel is gated behind ``SimulationConfig.data_kernel`` and is a
pure accelerator: ``data_phase`` returning False hands the cycle to
the object walk (the oracle), which byte-identity makes safe at any
cycle boundary — used below a live-message threshold where the
walk's fused scan is cheaper than the vectorization overhead, and
permanently if a path outgrows the 62-bit mask width.
"""

from __future__ import annotations

from array import array
from typing import Dict, List, Optional, Set

try:  # pragma: no cover - exercised implicitly by every kernel test
    import numpy as _np
except ImportError:  # pragma: no cover - image always ships numpy
    _np = None

from repro.core.flow_control import K_INFINITE
from repro.sim.message import (
    ControlFlit,
    ControlKind,
    HeaderPhase,
    Message,
    MessageStatus,
)

HAVE_NUMPY = _np is not None

#: Initial row count (doubles on demand).
_START_ROWS = 64
#: Bitmasks live in signed int64 lanes: positions 0..61 keep every
#: shift below the sign bit.  A path longer than this disables the
#: kernel for the rest of the run (the walk takes over).
_MAX_WIDTH = 62
#: Below this many live messages the object walk is cheaper than the
#: fixed vectorization overhead; byte-identity makes handing single
#: cycles back to the walk safe.
_MIN_BATCH = 6


class DataKernel:
    """Bitmask mirror + two-stage data-movement/ejection kernel.

    Row lifecycle: ``attach`` at message launch -> incremental mask
    upkeep while the applier commits moves -> ``drop`` at teardown,
    interrupt, or finalization.  Engine-side mutations (reserve,
    backtrack, staged acks, path pops, walk-fallback cycles) mark the
    row dirty; ``data_phase`` resyncs dirty rows from the object
    before the predicate pass.
    """

    def __init__(self, engine) -> None:
        self.eng = engine
        self.rows = _START_ROWS
        self._alloc()
        #: Free row indices (stack).
        self._free: List[int] = list(range(self.rows - 1, -1, -1))
        #: Row -> attached message (None = free).
        self._msgs: List[Optional[Message]] = [None] * self.rows
        #: Rows whose mirrored state is stale (any ``dm_quiet``
        #: clearing site, plus rows a fallback walk may advance).
        self._dirty: Set[Message] = set()

    # ------------------------------------------------------------------
    # Storage
    # ------------------------------------------------------------------
    def _alloc(self) -> None:
        zeros = [0] * self.rows
        # Typed per-row bitmasks; the ``*_t`` arrays are the write
        # side (array('q') RMW is cheaper than numpy scalar RMW), the
        # ``*_v`` numpy views the vector read side.
        self._occ_t = array("q", zeros)
        self._full_t = array("q", zeros)
        self._wtopm_t = array("q", zeros)
        self._ntailm_t = array("q", zeros)
        self._inj_t = array("q", zeros)
        self._static_t = array("q", zeros)
        self._nchm_t = array("q", zeros)
        # Store-side only (read back on head advance to refresh nchm).
        self._closed_t = array("q", zeros)
        self._rebuild_views()

    def _rebuild_views(self) -> None:
        np = _np
        self._occ_v = np.frombuffer(self._occ_t, dtype=np.int64)
        self._full_v = np.frombuffer(self._full_t, dtype=np.int64)
        self._wtopm_v = np.frombuffer(self._wtopm_t, dtype=np.int64)
        self._ntailm_v = np.frombuffer(self._ntailm_t, dtype=np.int64)
        self._inj_v = np.frombuffer(self._inj_t, dtype=np.int64)
        self._static_v = np.frombuffer(self._static_t, dtype=np.int64)
        self._nchm_v = np.frombuffer(self._nchm_t, dtype=np.int64)
        self._t2 = np.empty(self.rows, dtype=np.int64)
        self._cand = np.empty(self.rows, dtype=np.int64)

    def _grow_rows(self) -> None:
        old = self.rows
        self.rows = old * 2
        add = [0] * old
        for name in (
            "_occ_t", "_full_t", "_wtopm_t", "_ntailm_t", "_inj_t",
            "_static_t", "_nchm_t", "_closed_t",
        ):
            # numpy views export the buffer, so the arrays cannot be
            # resized in place; rebuild them.
            setattr(self, name, array("q", list(getattr(self, name)) + add))
        self._rebuild_views()
        self._msgs.extend([None] * old)
        self._free.extend(range(self.rows - 1, old - 1, -1))

    # ------------------------------------------------------------------
    # Row lifecycle / coherence hooks (called from the engine)
    # ------------------------------------------------------------------
    def attach(self, msg: Message) -> None:
        """Allocate a row at message launch (path still empty)."""
        if not self._free:
            self._grow_rows()
        row = self._free.pop()
        self._occ_t[row] = 0
        self._full_t[row] = 0
        self._wtopm_t[row] = 0
        self._ntailm_t[row] = ~((1 << (msg.tail_idx + 1)) - 1)
        self._inj_t[row] = 1 if msg.at_source > 0 else 0
        self._static_t[row] = 0
        self._nchm_t[row] = -1
        self._closed_t[row] = 0
        self._msgs[row] = msg
        msg.kern_row = row
        if msg.path:
            self._dirty.add(msg)

    def touch(self, msg: Message) -> None:
        """Mirrored state went stale; resync before the next pass."""
        if msg.kern_row >= 0:
            self._dirty.add(msg)

    # The object lists are always authoritative, so "flush before the
    # object walk reads this row" degenerates to a resync request.
    flush_row = touch

    def drop(self, msg: Message) -> None:
        """Free the row (teardown / interrupt / finalize)."""
        row = msg.kern_row
        if row < 0:
            return
        self._dirty.discard(msg)
        self._msgs[row] = None
        self._free.append(row)
        msg.kern_row = -1

    def on_release(self, msg: Message, idx: int) -> None:
        """Path link released: mask its bit out of the window."""
        row = msg.kern_row
        if row >= 0 and idx < _MAX_WIDTH:
            self._static_t[row] |= 1 << idx

    def sync_all(self) -> None:
        """Object lists are always current; nothing to reconstruct.

        Kept as the engine's ``sync_data_state`` hook so external
        consumers (auditor, postmortem, traces, results) don't need
        to know which data-phase implementation ran.
        """

    # ------------------------------------------------------------------
    # Resync (object -> mirror)
    # ------------------------------------------------------------------
    def _resync(self, msg: Message) -> bool:
        """Rebuild one row's masks from the authoritative object."""
        row = msg.kern_row
        path = msg.path
        L = len(path)
        if L > _MAX_WIDTH:
            return False
        buffered = msg.buffered
        depth = self.eng._depth
        k_at = msg.k_at
        held = msg.held
        acks = msg.acks_at
        released = msg.released
        est = msg.path_established
        occ = 0
        full = 0
        relb = 0
        closed = 0
        for p in range(L):
            b = buffered[p]
            if b:
                occ |= 1 << p
                if b >= depth:
                    full |= 1 << p
            if released[p]:
                relb |= 1 << p
            if held[p]:
                closed |= 1 << p
            else:
                k_gate = k_at[p - 1] if p else k_at[0]
                if k_gate >= K_INFINITE:
                    if not est:
                        closed |= 1 << p
                elif acks[p] < k_gate and not est:
                    closed |= 1 << p
        lock = msg.backtrack_lock
        if 0 <= lock < _MAX_WIDTH:
            relb |= 1 << lock
        self._occ_t[row] = occ
        self._full_t[row] = full
        self._static_t[row] = relb
        self._closed_t[row] = closed
        hm = msg.head_link + 1
        top = hm if hm < L - 1 else L - 1
        self._wtopm_t[row] = (1 << (top + 1)) - 1
        self._ntailm_t[row] = ~((1 << (msg.tail_idx + 1)) - 1)
        self._inj_t[row] = 1 if msg.at_source > 0 else 0
        self._nchm_t[row] = ~((1 << hm) & closed)
        return True

    def _disable(self) -> None:
        """Path outgrew the mask width: hand the run to the walk."""
        for msg in self._msgs:
            if msg is not None:
                msg.kern_row = -1
        self.eng._kern = None

    # ------------------------------------------------------------------
    # The two-stage data phase
    # ------------------------------------------------------------------
    def data_phase(self, used_by_control: Set[int]) -> bool:
        """Run data movement + ejection; False = caller runs the walk
        (low occupancy this cycle, or the kernel just disabled itself).
        """
        eng = self.eng
        active = eng.active
        if len(active) < _MIN_BATCH:
            # The walk will advance exactly the rows it scans; their
            # mirrored masks go stale — mark them for resync.
            dirty = self._dirty
            active_status = MessageStatus.ACTIVE
            for msg in active.values():
                if (
                    msg.kern_row >= 0
                    and not msg.dm_quiet
                    and not msg.teardown
                    and msg.status is active_status
                ):
                    dirty.add(msg)
            return False

        if self._dirty:
            for msg in tuple(self._dirty):
                if msg.kern_row >= 0 and not self._resync(msg):
                    self._disable()
                    return False
            self._dirty.clear()

        cl = self._predicate()
        self._apply(used_by_control, cl)
        return True

    def _predicate(self) -> List[int]:
        """Stage 1: per-row candidate bitmasks, all rows at once.

        Bit ``p`` of the result is set iff the walk would consider
        moving a flit onto path position ``p``: a source flit exists
        (``occ`` bit ``p-1``, or ``inj`` for ``p == 0``), the
        destination is inside the active window (``wtopm``/``ntailm``:
        past the tail, at most one past the head, on the path), the
        downstream buffer has credit and the link is alive/unlocked
        (``full``/``static``), and — for the head-advance position
        only — the flow-control gate is open (``nchm``).  Int64
        overflow in the window masks wraps to exactly the 0..62 mask
        (two's complement), which is why width is capped at 62.
        """
        np = _np
        t2 = self._t2
        cand = self._cand
        np.left_shift(self._occ_v, 1, out=cand)     # source -> dest bit
        np.bitwise_and(cand, self._wtopm_v, out=cand)
        np.bitwise_and(cand, self._ntailm_v, out=cand)
        np.bitwise_or(cand, self._inj_v, out=cand)  # injection at p=0
        np.bitwise_or(self._full_v, self._static_v, out=t2)
        np.invert(t2, out=t2)
        np.bitwise_and(cand, t2, out=cand)          # credit/alive/lock
        np.bitwise_and(cand, self._nchm_v, out=cand)  # head gate
        return cand.tolist()

    def _apply(self, used_by_control: Set[int], cl: List[int]) -> None:
        """Stage 2: commit candidates in the walk's exact order."""
        eng = self.eng
        ev = eng._ev
        depth = eng._depth
        inline_header = eng._inline_header
        tail_ack = eng._tail_ack_mode
        cycle = eng.cycle
        resident = eng._ch_resident
        attn = eng._launch_attn
        active_status = MessageStatus.ACTIVE
        delivered_phase = HeaderPhase.DELIVERED
        candidates: Dict[int, List[tuple]] = {}
        eject_ready: Dict[int, Dict[int, Message]] = {}
        eng._eject_ready = eject_ready
        occ_t = self._occ_t
        full_t = self._full_t
        wtopm_t = self._wtopm_t
        ntailm_t = self._ntailm_t
        inj_t = self._inj_t
        nchm_t = self._nchm_t
        closed_t = self._closed_t
        moved = 0

        for msg in eng.active.values():
            if msg.dm_quiet:
                continue
            if msg.teardown or msg.status is not active_status:
                continue
            path = msg.path
            path_len = len(path)
            if path_len == 0:
                msg.dm_quiet = ev
                continue
            buffered = msg.buffered
            last_link = path_len - 1
            if (
                msg.header_phase is delivered_phase
                and buffered[last_link] > 0
            ):
                contributed = True
                bucket = eject_ready.get(msg.dst)
                if bucket is None:
                    eject_ready[msg.dst] = {msg.msg_id: msg}
                else:
                    bucket[msg.msg_id] = msg
            else:
                contributed = False
            row = msg.kern_row
            bits = cl[row]
            if not bits:
                if ev and not contributed:
                    msg.dm_quiet = True
                continue
            # Hoist the per-row scalars into locals; write back once
            # after the bit walk (releases triggered mid-walk never
            # read them — checked against _release_link/on_release).
            hl = msg.head_link
            head_move = hl + 1
            # In-band header heads defer to the buckets so pending-
            # insertion order matches the walk.
            ih_block = head_move if inline_header else -1
            crossed = msg.crossed
            total = msg.total_flits
            occ = occ_t[row]
            full = full_t[row]
            a = a0 = msg.at_source
            t = t0 = msg.tail_idx
            hl0 = hl
            while bits:
                low = bits & -bits
                bits -= low
                p = low.bit_length() - 1
                vc = path[p]
                ch = vc.channel_id
                if ch in used_by_control:
                    continue
                # Inline fast path: same eligibility as the walk's —
                # a single-resident channel's grant is unopposed, the
                # last link defers to preserve eject insertion order.
                # (Correct with the event engine off too: a deferred
                # single-candidate grant commits identically.)
                if p != last_link and p != ih_block and resident[ch] == 1:
                    if p == 0:
                        a -= 1
                        if msg.injected_cycle is None:
                            msg.injected_cycle = cycle
                        if a == 0:
                            inj_t[row] = 0
                            if ev:
                                attn.add(msg.src)
                    else:
                        v = buffered[p - 1] - 1
                        buffered[p - 1] = v
                        if v == 0:
                            occ &= ~(low >> 1)
                        if v == depth - 1:
                            full &= ~(low >> 1)
                    v = buffered[p] + 1
                    buffered[p] = v
                    if v == 1:
                        occ |= low
                    if v == depth:
                        full |= low
                    c = crossed[p] + 1
                    crossed[p] = c
                    vc.grants += 1
                    moved += 1
                    if p == head_move:
                        hl = p
                    if a == 0:
                        while t <= hl and buffered[t] == 0:
                            t += 1
                    if c == total and not tail_ack:
                        eng._release_link(msg, p)
                    continue
                entry = (vc.index, msg, p, p == last_link, vc)
                bucket = candidates.get(ch)
                if bucket is None:
                    candidates[ch] = [entry]
                else:
                    bucket.append(entry)
            occ_t[row] = occ
            full_t[row] = full
            if a != a0:
                msg.at_source = a
            if hl != hl0:
                msg.head_link = hl
                hm = hl + 1
                top = hm if hm < last_link else last_link
                wtopm_t[row] = (1 << (top + 1)) - 1
                nchm_t[row] = ~((1 << hm) & closed_t[row])
            if t != t0:
                msg.tail_idx = t
                ntailm_t[row] = ~((1 << (t + 1)) - 1)

        arbiters = eng._arbiters
        for ch, cands in candidates.items():
            if len(cands) == 1:
                vc_idx, msg, p, is_last, vc = cands[0]
            else:
                winner = arbiters[ch].grant_from(
                    [c[0] for c in cands]
                )
                vc_idx, msg, p, is_last, vc = next(
                    c for c in cands if c[0] == winner
                )
            row = msg.kern_row
            buffered = msg.buffered
            if p == 0:
                a = msg.at_source - 1
                msg.at_source = a
                if msg.injected_cycle is None:
                    msg.injected_cycle = cycle
                if a == 0:
                    inj_t[row] = 0
                    if ev:
                        attn.add(msg.src)
            else:
                v = buffered[p - 1] - 1
                buffered[p - 1] = v
                if v == 0:
                    occ_t[row] &= ~(1 << (p - 1))
                if v == depth - 1:
                    full_t[row] &= ~(1 << (p - 1))
            v = buffered[p] + 1
            buffered[p] = v
            if v == 1:
                occ_t[row] |= 1 << p
            if v == depth:
                full_t[row] |= 1 << p
            crossed = msg.crossed
            crossed[p] += 1
            vc.grants += 1
            moved += 1
            if p == msg.head_link + 1:
                msg.head_link = p
                hm = p + 1
                last_link = len(msg.path) - 1
                top = hm if hm < last_link else last_link
                wtopm_t[row] = (1 << (top + 1)) - 1
                nchm_t[row] = ~((1 << hm) & closed_t[row])
                if inline_header:
                    eng._inline_header_arrived(msg, p + 1)
            if is_last and msg.header_phase is delivered_phase:
                bucket = eject_ready.get(msg.dst)
                if bucket is None:
                    eject_ready[msg.dst] = {msg.msg_id: msg}
                else:
                    bucket[msg.msg_id] = msg
            if msg.at_source == 0:
                t = msg.tail_idx
                hl = msg.head_link
                while t <= hl and buffered[t] == 0:
                    t += 1
                if t != msg.tail_idx:
                    msg.tail_idx = t
                    ntailm_t[row] = ~((1 << (t + 1)) - 1)
            if crossed[p] == msg.total_flits and not tail_ack:
                eng._release_link(msg, p)
        if moved:
            eng.data_flits_moved += moved
            eng._progress = True

        for node, msgs in eject_ready.items():
            self._eject_one(node, msgs)

    def _eject_one(self, node: int, msgs: Dict[int, Message]) -> None:
        """Engine._eject_one plus occupancy-mask upkeep."""
        eng = self.eng
        if len(msgs) == 1:
            winner = next(iter(msgs.values()))
        else:
            last = eng._eject_last[node]
            ids = sorted(msgs)
            winner = msgs[next((i for i in ids if i > last), ids[0])]
        eng._eject_last[node] = winner.msg_id
        msg = winner
        row = msg.kern_row
        buffered = msg.buffered
        p = len(msg.path) - 1
        v = buffered[p] - 1
        buffered[p] = v
        if v == 0:
            self._occ_t[row] &= ~(1 << p)
        if v == eng._depth - 1:
            self._full_t[row] &= ~(1 << p)
        msg.ejected += 1
        eng.flits_ejected += 1
        eng._progress = True
        is_header_flit = eng._inline_header and msg.ejected == 1
        if not is_header_flit and (
            eng._measuring_from < eng.cycle <= eng._measuring_to
        ):
            eng.measured_delivered_flits += 1
        if msg.at_source == 0:
            t = msg.tail_idx
            hl = msg.head_link
            while t <= hl and buffered[t] == 0:
                t += 1
            if t != msg.tail_idx:
                msg.tail_idx = t
                self._ntailm_t[row] = ~((1 << (t + 1)) - 1)
        if msg.ejected == msg.total_flits:
            msg.delivered_cycle = eng.cycle
            if eng._tail_ack_mode:
                eng._push_control(
                    ControlFlit(
                        ControlKind.TAIL_ACK, msg, len(msg.path) - 1,
                        eng.cycle + 1,
                    ),
                    eng.topology.reverse_channel_id(
                        msg.path[-1].channel_id
                    ),
                )
            else:
                msg.status = MessageStatus.DELIVERED
                eng._finalize(msg, count_delivered=True)
