"""Flit-level simulation: messages, traffic, statistics, configuration.

The engine and the :class:`~repro.sim.simulator.NetworkSimulator`
facade are intentionally *not* re-exported here — they depend on the
routing protocols, which in turn depend on :mod:`repro.sim.message`,
and re-exporting them from this package ``__init__`` would create an
import cycle.  Import them from the top-level :mod:`repro` package or
from their concrete modules.
"""

from repro.sim.config import (
    FaultConfig,
    RecoveryConfig,
    ResilienceConfig,
    SimulationConfig,
)
from repro.sim.invariants import (
    InvariantAuditor,
    InvariantError,
    InvariantViolation,
)
from repro.sim.message import ControlKind, Message, MessageStatus
from repro.sim.postmortem import DeadlockDiagnosis, WaitEdge, diagnose
from repro.sim.stats import (
    MessageRecord,
    ReplicatedResult,
    RunResult,
    mean_confidence_interval,
    repeat_until_confident,
    summarize,
)
from repro.sim.traffic import TrafficGenerator

__all__ = [
    "ControlKind",
    "DeadlockDiagnosis",
    "FaultConfig",
    "InvariantAuditor",
    "InvariantError",
    "InvariantViolation",
    "Message",
    "MessageRecord",
    "MessageStatus",
    "RecoveryConfig",
    "ReplicatedResult",
    "ResilienceConfig",
    "RunResult",
    "SimulationConfig",
    "TrafficGenerator",
    "WaitEdge",
    "diagnose",
    "mean_confidence_interval",
    "repeat_until_confident",
    "summarize",
]
