"""Runtime invariant auditor (the resilience layer).

An optional per-cycle (or every-N-cycles) checker that cross-validates
the engine's live data structures against the conservation laws the
simulator is built on.  The point is to catch state corruption *at the
cycle it happens* — under chaos fault storms, a bookkeeping bug
surfaces thousands of cycles later as a hung drain or a wrong figure;
with the auditor on it surfaces as a :class:`InvariantError` naming the
message, the channel, and the cycle.

Checked invariants:

* **flit conservation** — for every live message, injected flits equal
  buffered + ejected + killed flits (:meth:`Message.flit_conservation_ok`);
* **buffer-depth bounds** — no per-link occupancy below zero or above
  ``config.buffer_depth``; no negative source backlog; no link crossed
  by more flits than the message carries;
* **virtual-channel state legality** — a FREE VC has no owner, a
  RESERVED VC has one;
* **reservation/ownership consistency** — every unreleased path link of
  a live message is a VC reserved by that message, and every reserved
  VC in the :class:`~repro.network.channel.ChannelBank` is owned by a
  live message (or one still referenced by an in-flight teardown
  token);
* **index consistency** — the active and pending maps only hold
  messages in legal states.

Enable with ``ResilienceConfig(audit_invariants=True, audit_every=N)``;
the chaos harness (:mod:`repro.faults.chaos`) always runs with the
auditor on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Set

from repro.network.channel import VCState
from repro.sim.message import MessageStatus


@dataclass(frozen=True)
class InvariantViolation:
    """One violated invariant, pinned to a cycle / message / channel."""

    cycle: int
    kind: str
    detail: str
    msg_id: Optional[int] = None
    channel_id: Optional[int] = None

    def __str__(self) -> str:
        where = []
        if self.msg_id is not None:
            where.append(f"msg {self.msg_id}")
        if self.channel_id is not None:
            where.append(f"ch {self.channel_id}")
        location = f" [{', '.join(where)}]" if where else ""
        return f"cycle {self.cycle}: {self.kind}{location}: {self.detail}"


class InvariantError(RuntimeError):
    """Raised by the engine when an audit finds violations."""

    def __init__(self, violations: List[InvariantViolation]):
        self.violations = violations
        report = "\n".join(str(v) for v in violations)
        super().__init__(
            f"{len(violations)} invariant violation(s):\n{report}"
        )


class InvariantAuditor:
    """Audits one engine; stateless between audits apart from counters."""

    def __init__(self, engine):
        self.engine = engine
        self.checks_run = 0
        self.violations_found = 0

    def next_audit_cycle(self, cycle: int) -> int:
        """First cycle strictly after ``cycle`` at which an audit runs.

        The audit tick is part of the engine's event horizon: the
        fast-forward path must not jump past it, or ``checks_run`` (and
        any violation it would have caught) would diverge from the
        cycle-by-cycle run.
        """
        every = self.engine.config.resilience.audit_every
        return (cycle // every + 1) * every

    def audit(self) -> List[InvariantViolation]:
        """Run every check; returns (and counts) all violations found."""
        self.checks_run += 1
        engine = self.engine
        # The SoA kernel holds live occupancy in its flat buffers;
        # reconstruct the object lists before walking them.
        engine.sync_data_state()
        out: List[InvariantViolation] = []
        self._check_messages(engine, out)
        self._check_channel_bank(engine, out)
        self._check_indexes(engine, out)
        self.violations_found += len(out)
        return out

    # ------------------------------------------------------------------
    # Per-message checks
    # ------------------------------------------------------------------
    def _check_messages(self, engine, out: List[InvariantViolation]) -> None:
        cycle = engine.cycle
        depth = engine.config.buffer_depth
        for msg in engine.messages.values():
            if not msg.flit_conservation_ok():
                out.append(InvariantViolation(
                    cycle, "flit-conservation",
                    f"injected {msg.injected_flits} != buffered "
                    f"{sum(msg.buffered)} + ejected {msg.ejected} + "
                    f"killed {msg.killed_flits}",
                    msg_id=msg.msg_id,
                ))
            if msg.at_source < 0:
                out.append(InvariantViolation(
                    cycle, "buffer-bounds",
                    f"negative source backlog {msg.at_source}",
                    msg_id=msg.msg_id,
                ))
            if msg.ejected > msg.total_flits:
                out.append(InvariantViolation(
                    cycle, "buffer-bounds",
                    f"ejected {msg.ejected} of {msg.total_flits} flits",
                    msg_id=msg.msg_id,
                ))
            for i, occupancy in enumerate(msg.buffered):
                ch = msg.path[i].channel_id
                if occupancy < 0 or occupancy > depth:
                    out.append(InvariantViolation(
                        cycle, "buffer-bounds",
                        f"link {i} holds {occupancy} flits "
                        f"(depth {depth})",
                        msg_id=msg.msg_id, channel_id=ch,
                    ))
                if msg.crossed[i] > msg.total_flits:
                    out.append(InvariantViolation(
                        cycle, "buffer-bounds",
                        f"link {i} crossed by {msg.crossed[i]} of "
                        f"{msg.total_flits} flits",
                        msg_id=msg.msg_id, channel_id=ch,
                    ))
            # Ownership: unreleased path links must be reserved by us.
            if msg.is_terminal():
                continue
            for i, vc in enumerate(msg.path):
                if msg.released[i]:
                    continue
                if vc.owner != msg.msg_id:
                    out.append(InvariantViolation(
                        cycle, "ownership",
                        f"unreleased path link {i} owned by "
                        f"{vc.owner!r}, not by this message",
                        msg_id=msg.msg_id, channel_id=vc.channel_id,
                    ))

    # ------------------------------------------------------------------
    # ChannelBank checks
    # ------------------------------------------------------------------
    def _in_flight_message_ids(self, engine) -> Set[int]:
        """Ids referenced by control tokens still traveling.

        A message can be finalized at its source while its downstream
        kill/tail tokens are still releasing channels; those channels
        are legally reserved by an id no longer in ``engine.messages``.
        """
        ids: Set[int] = set()
        for queues in (engine.control_out, engine.ack_out):
            for queue in queues:
                for token in queue:
                    ids.add(token.message.msg_id)
        return ids

    def _check_channel_bank(
        self, engine, out: List[InvariantViolation]
    ) -> None:
        cycle = engine.cycle
        live = engine.messages
        in_flight: Optional[Set[int]] = None  # computed lazily
        for ch in range(engine.topology.num_channels):
            for vc in engine.channels.vcs(ch):
                free = vc.state is VCState.FREE
                if free and vc.owner is not None:
                    out.append(InvariantViolation(
                        cycle, "vc-state",
                        f"FREE vc{vc.index} has owner {vc.owner}",
                        channel_id=ch,
                    ))
                elif not free and vc.owner is None:
                    out.append(InvariantViolation(
                        cycle, "vc-state",
                        f"RESERVED vc{vc.index} has no owner",
                        channel_id=ch,
                    ))
                if free or vc.owner is None:
                    continue
                owner = live.get(vc.owner)
                if owner is not None:
                    if not any(
                        link is vc and not owner.released[i]
                        for i, link in enumerate(owner.path)
                    ):
                        out.append(InvariantViolation(
                            cycle, "ownership",
                            f"vc{vc.index} reserved by msg {vc.owner} "
                            "but absent from its unreleased path",
                            msg_id=vc.owner, channel_id=ch,
                        ))
                    continue
                if in_flight is None:
                    in_flight = self._in_flight_message_ids(engine)
                if vc.owner not in in_flight:
                    out.append(InvariantViolation(
                        cycle, "orphaned-reservation",
                        f"vc{vc.index} reserved by finished msg "
                        f"{vc.owner} with no teardown token in flight",
                        msg_id=vc.owner, channel_id=ch,
                    ))

    # ------------------------------------------------------------------
    # Index checks
    # ------------------------------------------------------------------
    def _check_indexes(self, engine, out: List[InvariantViolation]) -> None:
        cycle = engine.cycle
        for msg_id, msg in engine.active.items():
            if msg.status is not MessageStatus.ACTIVE:
                out.append(InvariantViolation(
                    cycle, "index",
                    f"active map holds {msg.status.name} message",
                    msg_id=msg_id,
                ))
            if msg_id not in engine.messages:
                out.append(InvariantViolation(
                    cycle, "index",
                    "active message missing from the message table",
                    msg_id=msg_id,
                ))
        for msg_id in engine.pending:
            if msg_id not in engine.active:
                out.append(InvariantViolation(
                    cycle, "index",
                    "pending message not in the active map",
                    msg_id=msg_id,
                ))


def audit(engine) -> List[InvariantViolation]:
    """One-shot audit of an engine (tests / debugging convenience)."""
    return InvariantAuditor(engine).audit()
