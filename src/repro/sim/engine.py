"""Flit-level, time-stepped network simulation engine (Section 6.0).

Every cycle advances the network through five phases:

1. **Dynamic faults** — fault events scheduled for this cycle are
   applied; messages whose reserved path crosses a newly failed channel
   are interrupted and torn down with kill flits (Section 2.4/Fig 16).
2. **Routing decisions** — each pending routing header is presented to
   its protocol (DP / MB-m / TP / dimension-order); reservations,
   backtracks, waits, and aborts are executed.
3. **Control transfers** — each physical channel forwards at most one
   control flit from its multiplexed control queue (headers in
   decoupled mode, acknowledgments, path/resume tokens, kills, tail
   acks).  A channel that carried a control flit cannot also carry a
   data flit this cycle: control and data share the physical bandwidth
   flit-by-flit (Figure 2b), which is the "slightly reduced bandwidth"
   the paper attributes to the control channel.
4. **Data movement** — per physical channel, one data flit moves from
   its upstream buffer to the downstream buffer, chosen demand-driven
   round-robin among the resident virtual channels; the first data flit
   additionally passes the scouting gate (CMU counter >= programmed K,
   Figure 11) and detour holds.  Ejection (one flit per node per
   cycle over the PE link) and injection share this phase.
5. **Traffic** — message generation with the 8-message
   injection-buffer congestion control, plus launch of queued headers.
   Injection timing is delegated to the configured
   :class:`~repro.sim.traffic.InjectionProcess` (Bernoulli by default,
   on-off/MMBP for bursty workloads): per-node-per-cycle trials are
   realized by inversion-method geometric gap sampling over the flat
   (cycle, node) trial sequence, so a cycle with no injection costs
   O(1) and the quiescence fast-forward below can jump over whole idle
   stretches while consuming the RNG identically (the
   ``arrivals``/``idle_cycles``/``skip_cycles`` contract, DESIGN.md §9).

Quiescence fast-forward: when nothing at all is in flight — no active
or pending message, no busy injection queue, no control/ack token, no
staged gate update — no phase can change state until an external event.
:meth:`Engine.run` then jumps the clock to just before the *event
horizon*: the earliest of the next possible injection (known exactly
from the geometric gap), the next armed dynamic fault, the next
invariant-audit tick, and the hook's declared next event.  The jump is
cycle-for-cycle and RNG-stream identical to stepping each cycle
(``tests/sim/test_determinism.py`` pins both paths against each other);
``SimulationConfig.fast_forward`` turns it off.

Timing convention: a flit or token that arrives at a router at the end
of cycle *t* may move again during cycle *t+1*; a routing decision and
the resulting hop happen in the same cycle.  Under this convention an
idle-network message reproduces the Section 2.2 latency formulas
exactly (validated by the integration tests).

Scheduling: every phase works from *active sets* rather than full
rescans — the pending-header dict is swapped (not copied) each cycle,
the control/ack channel sets and the busy injection-queue set keep an
incrementally maintained ascending order instead of being re-sorted
per cycle, and the dynamic-fault phase is an O(1) peek on cycles with
nothing scheduled.  With ``SimulationConfig.event_engine`` (the
default, DESIGN.md §11) the engine goes further and makes per-cycle
work proportional to *events* rather than live messages: blocked
routing headers park until a wake condition — a virtual-channel
release at their router (funneled through
:meth:`ChannelBank.set_release_notify`), a fault-epoch change, or
their timed retry cycle — can change the decision's outcome; messages
whose data pipeline proved immovable are flagged quiet and skipped
until a state-change notification (reservation, backtrack, header
arrival, staged gate update) re-arms them; and the launch loop visits
only nodes whose injection queue was touched this cycle (arrival,
requeue, head freed) instead of every busy queue.  Timed events
(armed dynamic faults, audit ticks, hook events) share one
:meth:`Engine.next_event_horizon`, which the quiescence fast-forward
also jumps by.  All of this is behavior-preserving: the same seed
replays the exact same cycle-for-cycle execution (guarded by the
determinism regression suite in ``tests/sim/test_determinism.py``,
including the event-engine on/off oracle matrix), which is also what
lets the parallel campaign runner guarantee serial-equivalent results.
"""

from __future__ import annotations

import random
from typing import Deque, Dict, List, Optional, Set, Tuple

from collections import deque

from repro.core import detour as detour_rules
from repro.core.flow_control import K_INFINITE, FlowControlKind
from repro.faults.injection import DynamicFaultSchedule
from repro.faults.model import FaultState
from repro.network.channel import ChannelBank
from repro.network.link import ControlQueue, RoundRobinArbiter
from repro.network.topology import KAryNCube
from repro.routing.base import Action, RoutingContext
from repro.sim import kernel as flit_kernel
from repro.sim import postmortem
from repro.sim.config import SimulationConfig
from repro.sim.invariants import InvariantAuditor, InvariantError
from repro.sim.message import (
    ControlFlit,
    ControlKind,
    HeaderPhase,
    Message,
    MessageStatus,
    TPMode,
)
from repro.sim.stats import MessageRecord
from repro.sim.traffic import TrafficGenerator, make_injection_process

#: Sentinel wake cycle for parked headers with no timed retry armed:
#: only a channel release or a fault-epoch change can wake them.
_NEVER = 1 << 62


class DeadlockError(RuntimeError):
    """Raised when the network makes no progress for the watchdog window.

    Carries the rendered wait-for-graph diagnosis
    (:class:`~repro.sim.postmortem.DeadlockDiagnosis`) when the engine
    could build one: strict mode always raises with it; lenient mode
    raises only when victim ejection is impossible or exhausted.
    """

    def __init__(self, message: str, diagnosis=None):
        super().__init__(message)
        self.diagnosis = diagnosis


class _SortedIntSet:
    """Int ids (channels, nodes), iterable in ascending order without
    re-sorting.

    Membership is a plain set (O(1) add/discard, truth-testing); the
    ascending iteration order the engine's deterministic replay relies
    on comes from a cached sorted view that is rebuilt only when the
    membership actually changed since the last snapshot — on cycles
    where the set did not change (the common case) taking a snapshot
    costs nothing, versus the unconditional ``sorted()`` call per cycle
    the original scheduler paid.  Used for the active control/ack
    channel sets and the busy injection-queue set.
    """

    __slots__ = ("_members", "_view", "_dirty")

    def __init__(self) -> None:
        self._members: Set[int] = set()
        self._view: List[int] = []
        self._dirty = False

    def add(self, ch: int) -> None:
        members = self._members
        if ch not in members:
            members.add(ch)
            self._dirty = True

    def discard(self, ch: int) -> None:
        members = self._members
        if ch in members:
            members.remove(ch)
            self._dirty = True

    def __contains__(self, ch: int) -> bool:
        return ch in self._members

    def __len__(self) -> int:
        return len(self._members)

    def __bool__(self) -> bool:
        return bool(self._members)

    def __iter__(self):
        return iter(self.snapshot())

    def snapshot(self) -> List[int]:
        """The members in ascending order, stable against mutation.

        The returned list is never mutated in place by later
        ``add``/``discard`` calls, so callers can safely iterate it
        while rescheduling channels — exactly the snapshot semantics of
        the old per-cycle ``sorted()`` copy.
        """
        if self._dirty:
            self._view = sorted(self._members)
            self._dirty = False
        return self._view


class HookChain:
    """Compose several ``on_cycle`` hooks into one.

    Hooks run in list order after every cycle.  The chain declares a
    ``next_event_cycle`` (the minimum of its members') only when every
    member declares one — a single contract-less member must disable
    fast-forward for the whole run, which the engine detects by the
    attribute's absence.
    """

    def __init__(self, hooks):
        self.hooks = [h for h in hooks if h is not None]
        if all(
            getattr(h, "next_event_cycle", None) is not None
            for h in self.hooks
        ):
            self.next_event_cycle = self._next_event_cycle

    def _next_event_cycle(self, engine) -> Optional[int]:
        horizons = [
            h.next_event_cycle(engine) for h in self.hooks
        ]
        live = [h for h in horizons if h is not None]
        return min(live) if live else None

    def __call__(self, engine) -> None:
        for hook in self.hooks:
            hook(engine)


class Engine:
    """One simulation instance: network state plus the cycle loop."""

    def __init__(
        self,
        config: SimulationConfig,
        protocol,
        topology: Optional[KAryNCube] = None,
        fault_state: Optional[FaultState] = None,
        traffic: Optional[TrafficGenerator] = None,
        rng: Optional[random.Random] = None,
        dynamic_schedule: Optional[DynamicFaultSchedule] = None,
    ):
        self.config = config
        self.protocol = protocol
        self.rng = rng if rng is not None else random.Random(config.seed)
        self.topology = topology if topology is not None else KAryNCube(
            config.k, config.n
        )
        self.faults = fault_state if fault_state is not None else FaultState(
            self.topology
        )
        self.channels = ChannelBank(
            self.topology.num_channels, config.num_adaptive_vcs
        )
        self.traffic = traffic if traffic is not None else TrafficGenerator(
            config.traffic, self.topology, self.rng,
            params=config.traffic_params,
        )
        self.dynamic_schedule = dynamic_schedule
        # Hot-path constants, hoisted once (immutable for the engine's
        # lifetime by construction).
        self._inline_header = self.protocol.inline_header
        self._depth = config.buffer_depth
        self._tail_ack_mode = config.recovery.tail_ack

        num_ch = self.topology.num_channels
        self.control_out: List[ControlQueue] = [
            ControlQueue() for _ in range(num_ch)
        ]
        self._active_ctrl = _SortedIntSet()
        #: Dedicated acknowledgment wires (Section 7.0 future work):
        #: only used when ``config.hardware_acks`` — one ack per channel
        #: per cycle, not competing with the flit slot.
        self.ack_out: List[ControlQueue] = [
            ControlQueue() for _ in range(num_ch)
        ]
        self._active_ack = _SortedIntSet()
        self._arbiters = [
            RoundRobinArbiter(self.channels.vcs_per_channel)
            for _ in range(num_ch)
        ]

        self.cycle = 0
        self.ctx = RoutingContext(self.topology, self.faults, self.channels, 0)

        self.messages: Dict[int, Message] = {}
        self.active: Dict[int, Message] = {}
        self.pending: Dict[int, Message] = {}
        self.queues: List[Deque[Message]] = [
            deque() for _ in range(self.topology.num_nodes)
        ]
        #: Nodes whose injection queue may be non-empty (a superset —
        #: the launch phase prunes nodes it finds drained), so the
        #: per-cycle launch scan touches only busy queues, in an
        #: incrementally maintained ascending order (sort on mutation,
        #: not per cycle).
        self._busy_queues = _SortedIntSet()
        self._next_msg_id = 0
        #: Per-node id of the message most recently granted ejection
        #: (round-robin fairness on the PE link).
        self._eject_last: List[int] = [-1] * self.topology.num_nodes

        # Counters.
        self.offered_messages = 0
        self.accepted_messages = 0
        self.rejected_messages = 0
        self.delivered_messages = 0
        self.dropped_messages = 0
        self.killed_messages = 0
        self.retransmissions = 0
        self.source_retries = 0
        self.killed_flits = 0
        self.control_flits_sent = 0
        self.data_flits_moved = 0
        #: Data flits handed to a PE over an ejection port.
        self.flits_ejected = 0
        #: Cycles whose data phase ran through the SoA kernel (rather
        #: than falling back to the object walk).
        self.kernel_cycles = 0
        #: Routing-protocol ``decide`` invocations (header decisions).
        self.header_decisions = 0
        #: Data flits delivered during the measurement window.
        self.measured_delivered_flits = 0
        self.measured_offered_flits = 0
        self.measured_accepted_flits = 0
        self.records: List[MessageRecord] = []
        self.drop_reasons: Dict[str, int] = {}
        #: Per-reason teardown counts ("fault" / "abort" / "deadlock").
        self.teardown_counts: Dict[str, int] = {}
        #: Watchdog expiries resolved by victim ejection.
        self.deadlock_recoveries = 0
        #: Message ids ejected by deadlock recovery, in order.
        self.deadlock_victims: List[int] = []
        #: Deadlock-recovery ejections per original message id — the
        #: re-ejection cap (``resilience.max_victim_ejections``) counts
        #: a message and all its retry clones as one origin.
        self._ejections_by_origin: Dict[int, int] = {}
        #: Victim selections where at least one candidate was excluded
        #: by the re-ejection cap (surfaced on RunResult).
        self.victim_cap_hits = 0
        #: Online reconfiguration (repro.reconfig): while True, headers
        #: with no reservations yet are held at their source — no new
        #: path construction begins during the drain/transition window.
        self.routing_freeze = False
        #: Committed reconfigurations and their cumulative downtime.
        self.reconfigurations = 0
        self.reconfig_downtime_cycles = 0
        #: Message ids forcibly ejected at a reconfiguration drain
        #: timeout, in ejection order.
        self.reconfig_victims: List[int] = []
        #: Cycle of the most recent recovery action (any teardown or a
        #: reconfiguration commit) — the storm benchmark's
        #: recovery-latency proxy; diagnostics only, not in RunResult.
        self.last_recovery_cycle = 0
        self.auditor: Optional[InvariantAuditor] = (
            InvariantAuditor(self)
            if config.resilience.audit_invariants else None
        )

        self.traffic_enabled = True
        self._measuring_from = config.warmup_cycles
        self._measuring_to = config.total_cycles
        self._progress = False
        self._idle_streak = 0
        self._ff_enabled = config.fast_forward
        #: Cycles skipped by the quiescence fast-forward (diagnostics
        #: only — deliberately not part of RunResult, which must stay
        #: byte-identical with fast-forward on and off).
        self.fast_forwarded_cycles = 0
        #: Injection timing, gap-sampled (Bernoulli by default; on-off
        #: MMBP for bursty workloads — see repro.sim.traffic).  One
        #: trial slot per healthy node per cycle, cycle-major.
        self.injection = make_injection_process(config, self.rng)
        #: Per-cycle scratch: node -> {msg_id: Message} ready to eject.
        self._eject_ready: Dict[int, Dict[int, Message]] = {}
        #: Gate-state updates from control flits arriving this cycle;
        #: applied after the data phase so that an acknowledgment
        #: registered at the end of cycle t opens a data gate in cycle
        #: t+1 (matching the Section 2.2 timing exactly).
        self._staged_acks: List[Tuple[Message, int, int]] = []
        self._staged_path: List[Tuple[Message, int, bool]] = []

        # ------------------------------------------------------------------
        # Event-driven core (DESIGN.md §11).  Per-cycle work tracks
        # *events* instead of live state: blocked headers park on wake
        # conditions, immobile messages go quiet until a state-change
        # notification, and the launch phase visits only nodes whose
        # queue head could have changed.  All of it is gated on
        # ``config.event_engine`` so the brute-force scans remain
        # available as the equivalence oracle.
        # ------------------------------------------------------------------
        self._ev = config.event_engine
        #: Per-node release version: bumped whenever a virtual channel
        #: whose physical channel *originates* at the node is released.
        #: A parked header at that node re-decides when the version
        #: moves — a release of an outgoing VC is the only channel-state
        #: transition that can turn its WAIT into progress.
        self._node_rel_ver: List[int] = [0] * self.topology.num_nodes
        self._ch_src: List[int] = [
            self.topology.channel(ch).src for ch in range(num_ch)
        ]
        #: SoA flit-transport kernel (DESIGN.md §12): the data phase
        #: batches its candidate predicate over flat int64 buffers and
        #: commits through a compact ordered applier.  Byte-identical
        #: to the object walk, which stays available as the oracle
        #: (``data_kernel`` off, low-occupancy cycles, or paths too
        #: long for the bitmask width).
        self._kern: Optional[flit_kernel.DataKernel] = (
            flit_kernel.DataKernel(self)
            if config.data_kernel and flit_kernel.HAVE_NUMPY else None
        )
        #: Whether release notifications / resident counts are wired.
        #: Sticky: survives the kernel disabling itself mid-run (the
        #: notify callback cannot be unregistered consistently, so the
        #: counters keep both sides).
        self._resident_track = self._ev or self._kern is not None
        if self._resident_track:
            self.channels.set_release_notify(self._note_release)
        #: Reserved-VC count per physical channel.  A channel with
        #: exactly one reserved VC can have at most one data-movement
        #: candidate this cycle (wormhole: one message per VC), so that
        #: candidate wins arbitration unopposed — the event path (and
        #: the kernel applier) then moves the flit inline during the
        #: scan instead of routing it through the per-channel candidate
        #: buckets.  Maintained when the event engine or the kernel is
        #: on (reserve increments, the release notification
        #: decrements).
        self._ch_resident: List[int] = [0] * num_ch
        #: Launch-phase attention set: nodes whose injection-queue head
        #: may act this cycle (new arrival, head finished injecting,
        #: head finalized/tail-acked/requeued).  Visiting any other busy
        #: node is provably a no-op, so the event path iterates this
        #: set instead of every busy queue.
        self._launch_attn: Set[int] = set()

    def in_measure_window(self) -> bool:
        return self._measuring_from < self.cycle <= self._measuring_to

    def measure_window_cycles(self) -> int:
        """Cycles of the measurement window elapsed so far."""
        return max(
            0, min(self.cycle, self._measuring_to) - self._measuring_from
        )

    # ==================================================================
    # Public API
    # ==================================================================
    def run(self, cycles: int, on_cycle=None) -> None:
        """Advance the simulation by ``cycles`` cycles.

        ``on_cycle(engine)``, when given, is invoked after every
        executed cycle.  A hook that exposes a
        ``next_event_cycle(engine) -> Optional[int]`` method declares
        that calling it before that cycle is a pure no-op on a
        quiescent network (``None`` = never again); the fast-forward
        path then skips those calls along with the cycles.  A hook
        without the declaration disables fast-forward for this run —
        correctness over speed for arbitrary instrumentation.
        """
        target = self.cycle + cycles
        hook_horizon = None
        fast = self._ff_enabled
        if on_cycle is not None:
            hook_horizon = getattr(on_cycle, "next_event_cycle", None)
            if hook_horizon is None:
                fast = False
        if not fast:
            while self.cycle < target:
                self.step()
                if on_cycle is not None:
                    on_cycle(self)
            return
        while self.cycle < target:
            if self._quiescent():
                self._fast_forward(target, hook_horizon)
                if self.cycle >= target:
                    break
            self.step()
            if on_cycle is not None:
                on_cycle(self)

    def drain(self, max_cycles: int) -> bool:
        """Stop traffic and run until in-flight messages finish.

        Returns True when the network fully drained within the budget.
        With traffic disabled a quiescent network satisfies the drained
        condition, so the fast-forward path never applies here — the
        loop exits at the first drained cycle instead of jumping.
        """
        self.traffic_enabled = False
        target = self.cycle + max_cycles
        while self.cycle < target:
            if not self.active and not any(self.queues):
                return True
            self.step()
        return not self.active and not any(self.queues)

    def _quiescent(self) -> bool:
        """Nothing in flight anywhere: no phase can change state.

        Holds when there is no active or pending message, no injection
        queue with content, no control or ack token traveling, and no
        staged gate update.  Until the next injection success, dynamic
        fault, audit tick, or hook event, every cycle is then a no-op
        apart from the injection-gap bookkeeping.
        """
        return (
            not self.active
            and not self.pending
            and not self._busy_queues
            and not self._active_ctrl
            and not self._active_ack
            and not self._staged_acks
            and not self._staged_path
        )

    def next_event_horizon(self, limit: int, hook_horizon=None) -> int:
        """Latest cycle a quiescent clock may jump to without skipping
        an event.

        Every source of *timed* events is folded into one horizon: the
        instrumentation hook's declared next event, the next armed
        dynamic fault, and the next invariant-audit tick.  The return
        value is the cycle just *before* the earliest of them, capped
        at ``limit`` (the run target).  The one remaining event source
        — the next injection arrival — is intentionally not folded in
        here, because it is known only from the injection process's
        private gap/dwell state; :meth:`_fast_forward` clips on it
        separately.
        """
        stop = limit
        if hook_horizon is not None:
            horizon = hook_horizon(self)
            if horizon is not None and horizon - 1 < stop:
                stop = horizon - 1
        if self.dynamic_schedule is not None:
            nxt = self.dynamic_schedule.next_cycle()
            if nxt is not None and nxt - 1 < stop:
                stop = nxt - 1
        if self.auditor is not None:
            tick = self.auditor.next_audit_cycle(self.cycle) - 1
            if tick < stop:
                stop = tick
        return stop

    def _fast_forward(self, limit: int, hook_horizon=None) -> None:
        """From a quiescent state, jump to just before the event horizon.

        The horizon (:meth:`next_event_horizon`) is clipped once more
        on the next injection arrival — known exactly from the
        injection process's gap/dwell state (``idle_cycles``), which
        ``skip_cycles`` then debits without RNG draws so the stream
        continues precisely where the cycle-by-cycle path would have
        left it.  The first cycle that can change state is then
        executed by the ordinary :meth:`step`.
        """
        skip = self.next_event_horizon(limit, hook_horizon) - self.cycle
        if skip <= 0:
            return
        if self.traffic_enabled and self.injection.enabled:
            num_healthy = len(self.traffic.healthy_nodes)
            if num_healthy:
                idle_cycles = self.injection.idle_cycles(num_healthy)
                if idle_cycles < skip:
                    skip = idle_cycles
                if skip <= 0:
                    return
                self.injection.skip_cycles(skip, num_healthy)
        self.cycle += skip
        self.ctx.cycle = self.cycle
        self.fast_forwarded_cycles += skip

    def step(self) -> None:
        """Advance one cycle through the five phases."""
        self.cycle += 1
        self.ctx.cycle = self.cycle
        self._progress = False

        self._phase_dynamic_faults()
        self._phase_routing_decisions()
        used_by_control = self._phase_control_transfers()
        self._phase_data_movement(used_by_control)
        self._apply_staged_gate_updates()
        self._phase_traffic()

        if self.active and not self._progress:
            self._idle_streak += 1
            if self._idle_streak > self.config.watchdog_cycles:
                self._on_watchdog_expiry()
        else:
            self._idle_streak = 0

        if self.auditor is not None and (
            self.cycle % self.config.resilience.audit_every == 0
        ):
            violations = self.auditor.audit()
            if violations:
                raise InvariantError(violations)

    def _on_watchdog_expiry(self) -> None:
        """Diagnose the stall; recover by victim ejection or raise.

        The wait-for graph is built from live state
        (:func:`repro.sim.postmortem.diagnose`).  In strict mode, or
        when no eligible victim exists, or after
        ``resilience.max_deadlock_recoveries`` ejections, the run fails
        with the rendered diagnosis.  Otherwise the victim is driven
        through the ordinary kill-flit teardown (Section 2.4) — its
        virtual channels free, the network resumes, and the victim
        retries from its source under the usual recovery bounds.
        """
        resilience = self.config.resilience
        diagnosis = postmortem.diagnose(self)
        summary = (
            f"no progress for {self._idle_streak} cycles at cycle "
            f"{self.cycle}; {len(self.active)} active messages"
        )
        if resilience.deadlock_strict:
            raise DeadlockError(
                f"{summary}\n{diagnosis.render()}", diagnosis
            )
        cap_hits_before = self.victim_cap_hits
        victim = postmortem.select_victim(diagnosis, self)
        if victim is None:
            if self.victim_cap_hits > cap_hits_before:
                raise DeadlockError(
                    f"{summary}; victim re-ejection budget "
                    f"({resilience.max_victim_ejections}) exhausted — "
                    f"every remaining candidate was already ejected "
                    f"that many times\n{diagnosis.render()}",
                    diagnosis,
                )
            raise DeadlockError(
                f"{summary}; no recoverable victim\n{diagnosis.render()}",
                diagnosis,
            )
        if self.deadlock_recoveries >= resilience.max_deadlock_recoveries:
            raise DeadlockError(
                f"{summary}; recovery budget "
                f"({resilience.max_deadlock_recoveries}) exhausted\n"
                f"{diagnosis.render()}",
                diagnosis,
            )
        self.deadlock_recoveries += 1
        self.deadlock_victims.append(victim.msg_id)
        origin = victim.original_id
        self._ejections_by_origin[origin] = (
            self._ejections_by_origin.get(origin, 0) + 1
        )
        self._teardown(victim, "deadlock", victim.header_router)
        self._idle_streak = 0

    def network_drained(self) -> bool:
        """All messages terminal and every virtual channel free."""
        return not self.active and self.channels.all_free()

    def sync_data_state(self) -> None:
        """Make object-level pipeline state (``buffered``/``crossed``/
        ``vc.grants``) current for every message.

        The SoA kernel keeps the object lists authoritative (its
        mirror is derived bitmask state), so today this is a no-op
        pass-through; consumers that walk the object lists (auditor,
        postmortem, traces, results, tests) still call it first so
        they stay correct if the data phase ever defers object
        updates again.
        """
        if self._kern is not None:
            self._kern.sync_all()

    def _note_release(self, channel_id: int) -> None:
        """VC release notification (every release funnels through here).

        Bumps the release version of the channel's source node so any
        header parked there re-evaluates its routing decision next
        cycle.  Releases elsewhere cannot change a WAIT: every decision
        only examines outgoing channels of the header's own router.
        Also retires the VC from the channel's reserved count (the
        inline-move eligibility test of the data phase).
        """
        self._node_rel_ver[self._ch_src[channel_id]] += 1
        self._ch_resident[channel_id] -= 1

    def inject(self, src: int, dst: int,
               length: Optional[int] = None) -> Message:
        """Create and immediately launch one message (tests/examples).

        Equivalent to the message having been generated by the traffic
        phase of the current cycle: its header makes its first routing
        decision next cycle.
        """
        if src == dst:
            raise ValueError("source and destination must differ")
        msg = self._new_message(src, dst, self.cycle, length=length)
        self.queues[src].append(msg)
        self._busy_queues.add(src)
        if self._ev:
            self._launch_attn.add(src)
        if self.queues[src][0] is msg:
            msg.status = MessageStatus.ACTIVE
            msg.header_phase = HeaderPhase.PENDING
            self.active[msg.msg_id] = msg
            self.pending[msg.msg_id] = msg
            if self._kern is not None:
                self._kern.attach(msg)
        return msg

    # ==================================================================
    # Phase 1: dynamic faults
    # ==================================================================
    def _phase_dynamic_faults(self) -> None:
        sched = self.dynamic_schedule
        # O(1) peek: the whole phase — including the healthy-node sweep
        # below — is skipped on every cycle with no event due, which is
        # all of them when no dynamic fault schedule is armed.
        if sched is None or not sched.has_due(self.cycle):
            return
        for event in sched.due(self.cycle):
            event.apply(self.faults)
            self._progress = True
            for ch in self.faults.last_failed_channels:
                # Interrupt circuits crossing the failed channel.
                for vc in self.channels.vcs(ch):
                    if vc.owner is None:
                        continue
                    msg = self.messages.get(vc.owner)
                    if msg is None:
                        vc.release()
                        continue
                    idx = self._path_index_of(msg, vc)
                    if idx is None:
                        continue
                    self._interrupt(msg, idx)
                # Control flits stranded on the failed channel.
                for token in self.control_out[ch].drain():
                    self._handle_stranded_token(token)
                self._active_ctrl.discard(ch)
                self.ack_out[ch].drain()  # hardware acks vanish
                self._active_ack.discard(ch)
            # Refresh healthy-node set for traffic and drop queued
            # messages at failed sources.
            healthy = [
                node
                for node in range(self.topology.num_nodes)
                if node not in self.faults.faulty_nodes
            ]
            self.traffic.set_healthy_nodes(healthy)
            for node in self.faults.faulty_nodes:
                if self._ev:
                    # The drop below may empty the queue: attend the
                    # node so the launch phase prunes it from the busy
                    # set this cycle, exactly like the full scan would.
                    self._launch_attn.add(node)
                while self.queues[node]:
                    msg = self.queues[node].popleft()
                    if msg.status is MessageStatus.QUEUED:
                        msg.status = MessageStatus.KILLED
                        self._finalize(msg, count_killed=True)
                    elif not msg.is_terminal() and not msg.teardown:
                        # Active message from a now-dead source: its
                        # channels are already faulty; interrupt handled
                        # via the channel loop above.
                        pass

    def _path_index_of(self, msg: Message,
                       vc) -> Optional[int]:
        for idx in range(len(msg.path) - 1, -1, -1):
            if msg.path[idx] is vc and not msg.released[idx]:
                return idx
        return None

    def _handle_stranded_token(self, token: ControlFlit) -> None:
        """A control flit was queued on a channel that just failed."""
        msg = token.message
        kind = token.kind
        if kind in (ControlKind.KILL_UP,):
            self._finish_kill_up(msg, token.position)
        elif kind is ControlKind.KILL_DOWN:
            self._finish_kill_down(msg, token.position)
        elif kind is ControlKind.TAIL_ACK:
            self._finish_tail_ack(msg, token.position)
        elif kind in (ControlKind.HEADER, ControlKind.HEADER_BACK):
            if not msg.teardown and not msg.is_terminal():
                # The header was lost with the channel: the last path
                # link sits on the dead channel; recover the rest.
                self._release_link(msg, len(msg.path) - 1)
                if kind is ControlKind.HEADER_BACK:
                    # It was retreating over the now-dead link; the link
                    # below survives.
                    self._teardown(msg, "fault", msg.header_router - 1)
                else:
                    self._teardown(msg, "fault", msg.header_router)
        # ACK_POS / ACK_NEG / PATH_ACK / RESUME simply vanish; the
        # message either gets torn down by the channel-owner scan or
        # recovers via its remaining tokens.

    # ==================================================================
    # Phase 2: routing decisions
    # ==================================================================
    def _phase_routing_decisions(self) -> None:
        if not self.pending:
            return
        max_wait = self.config.max_header_wait
        decide = self.protocol.decide
        ctx = self.ctx
        # Swap the pending set instead of copying it: decided headers
        # simply drop out, WAITing headers re-enter in place, and tokens
        # arriving in the later phases append after them — the same
        # order the per-cycle snapshot copy used to produce.
        batch = self.pending
        self.pending = {}
        pending = self.pending
        queued = MessageStatus.QUEUED
        active = MessageStatus.ACTIVE
        pending_phase = HeaderPhase.PENDING
        freeze = self.routing_freeze
        ev = self._ev
        cycle = self.cycle
        epoch = self.faults.epoch
        rel_ver = self._node_rel_ver
        for msg in batch.values():
            status = msg.status
            if msg.teardown or (status is not active and status is not queued):
                continue
            if msg.header_phase is not pending_phase:
                continue
            # Reconfiguration drain: a header that has not reserved
            # anything yet is held at its source — no new path
            # construction may begin while the restriction epoch is in
            # transition.  The hold is not a WAIT: it neither consumes
            # the header-wait budget nor counts as congestion.
            if freeze and not msg.path:
                # Held, not parked: when the freeze lifts the header
                # must decide immediately, regardless of wake state
                # (a cancelled reconfiguration bumps no epoch).
                msg.parked = False
                pending[msg.msg_id] = msg
                continue
            # Livelock valve: abort headers that wander too long (the
            # cap is constant per message, computed at creation).
            if msg.hops_taken > msg.hop_cap:
                self._abort(msg, "livelock hop cap exceeded")
                continue
            if msg.parked:
                # Parked header: the decision stays WAIT until a wake
                # condition can change it — a VC released at its
                # router, a fault/restriction epoch move, or its timed
                # retry coming due.  Skip the (pure) re-decision but
                # keep the wait accounting cycle-identical.
                if (
                    cycle < msg.wake_at
                    and msg.park_epoch == epoch
                    and msg.park_ver == rel_ver[msg.park_node]
                ):
                    msg.wait_cycles += 1
                    msg.consecutive_waits += 1
                    if msg.consecutive_waits > max_wait:
                        self._abort(msg, "header blocked past wait limit")
                        continue
                    pending[msg.msg_id] = msg
                    continue
                msg.parked = False
            decision = decide(ctx, msg)
            self.header_decisions += 1
            action = decision.action
            if action is Action.WAIT:
                msg.wait_cycles += 1
                msg.consecutive_waits += 1
                if msg.consecutive_waits > max_wait:
                    # The paper's last-resort escape: a header that can
                    # no longer make progress is recovered — the path
                    # is torn down and the message retried from the
                    # source (Section 4.0).
                    self._abort(msg, "header blocked past wait limit")
                    continue
                if ev:
                    # Every protocol WAIT is either a busy outgoing
                    # channel (woken by a release at this node or an
                    # epoch change) or a timed retry backoff (woken at
                    # ``retry_wait``); spurious early wakes merely
                    # re-decide WAIT and re-park.
                    node = msg.path_nodes[msg.header_router]
                    msg.parked = True
                    msg.park_node = node
                    msg.park_ver = rel_ver[node]
                    msg.park_epoch = epoch
                    retry = msg.retry_wait
                    msg.wake_at = retry if retry > cycle else _NEVER
                pending[msg.msg_id] = msg
                continue
            msg.consecutive_waits = 0
            if action is Action.RESERVE:
                self._execute_reserve(msg, decision)
            elif action is Action.BACKTRACK:
                self._execute_backtrack(msg)
            elif action is Action.ABORT:
                self._abort(msg, decision.reason)

    def _execute_reserve(self, msg: Message, decision) -> None:
        vc = decision.vc
        dim, direction = decision.port
        vc.reserve(msg.msg_id)
        # The path grows a position and the head gate state changes:
        # the data pipeline may have new work.
        msg.dm_quiet = False
        kern = self._kern
        if kern is not None:
            kern.touch(msg)
        if self._resident_track:
            self._ch_resident[vc.channel_id] += 1
        k = decision.k
        if self.protocol.flow_control.kind is FlowControlKind.PCS:
            k = K_INFINITE
        next_node = self.topology.channel(vc.channel_id).dst
        msg.extend_path(
            vc, next_node, k, decision.hold, dim, direction,
            is_misroute=decision.is_misroute,
        )
        if k > 0 or decision.hold:
            msg.needs_path_ack = True
        # Misroute / detour accounting happens at reservation time.
        if msg.tp_mode is TPMode.DETOUR:
            detour_rules.record_forward_hop(
                msg, dim, direction, decision.is_misroute
            )
        elif decision.is_misroute:
            msg.header.misroutes += 1
            msg.misroute_total += 1
        msg.header.apply_hop(dim, direction, self.topology.k)
        msg.hops_taken += 1
        self._progress = True
        if self.protocol.inline_header:
            # The header is the message's first flit; it advances
            # through the data phase.  Nothing more to do until it
            # arrives at the next router.
            self.pending.pop(msg.msg_id, None)
        else:
            msg.header_phase = HeaderPhase.IN_FLIGHT
            self.pending.pop(msg.msg_id, None)
            self._push_control(
                ControlFlit(
                    ControlKind.HEADER, msg, msg.header_router + 1, self.cycle
                ),
                vc.channel_id,
            )

    def _execute_backtrack(self, msg: Message) -> None:
        j = msg.header_router
        assert j > 0, "cannot backtrack from the source"
        assert not self.protocol.inline_header, (
            "in-band headers cannot backtrack"
        )
        msg.header.backtrack = True
        msg.header_phase = HeaderPhase.IN_FLIGHT
        msg.backtrack_count += 1
        # Lock the data gate of the link being released so the first
        # data flit cannot race onto it while the backtracking header
        # crosses the complementary channel.  A plain `held` mark is
        # not enough: an in-flight resume/path acknowledgment would
        # clear it.
        msg.backtrack_lock = j - 1
        msg.dm_quiet = False
        if self._kern is not None:
            self._kern.touch(msg)
        self.pending.pop(msg.msg_id, None)
        self._progress = True
        reverse_ch = self.topology.reverse_channel_id(
            msg.path[j - 1].channel_id
        )
        self._push_control(
            ControlFlit(ControlKind.HEADER_BACK, msg, j - 1, self.cycle),
            reverse_ch,
        )

    # ==================================================================
    # Phase 3: control transfers
    # ==================================================================
    def _phase_control_transfers(self) -> Set[int]:
        used: Set[int] = set()
        cycle = self.cycle
        # Dedicated ack wires first: they never consume the flit slot.
        if self._active_ack:
            active_ack = self._active_ack
            ack_out = self.ack_out
            for ch in active_ack.snapshot():
                q = ack_out[ch]
                head = q.peek()
                if head is None:
                    active_ack.discard(ch)
                    continue
                if head.ready_cycle > cycle:
                    continue
                token = q.pop()
                if not q:
                    active_ack.discard(ch)
                self.control_flits_sent += 1
                self._progress = True
                self._deliver(token)
        if not self._active_ctrl:
            return used
        active_ctrl = self._active_ctrl
        control_out = self.control_out
        for ch in active_ctrl.snapshot():
            q = control_out[ch]
            head = q.peek()
            if head is None:
                active_ctrl.discard(ch)
                continue
            if head.ready_cycle > cycle:
                continue
            token = q.pop()
            if not q:
                active_ctrl.discard(ch)
            used.add(ch)
            self.control_flits_sent += 1
            self._progress = True
            self._deliver(token)
        return used

    def _push_control(self, token: ControlFlit, channel_id: int) -> None:
        """Queue a control flit for one hop over ``channel_id``.

        A continuation pushed onto a channel that has meanwhile failed
        cannot physically travel; kill and tail-ack effects are applied
        instantly (an idealization of the paper's reliance on recovery
        as a last resort), other tokens are lost with the channel.
        """
        if self.faults.channel_faulty[channel_id]:
            self._handle_stranded_token(token)
            return
        if self.config.hardware_acks and token.kind in (
            ControlKind.ACK_POS, ControlKind.ACK_NEG
        ):
            self.ack_out[channel_id].push(token)
            self._active_ack.add(channel_id)
            return
        self.control_out[channel_id].push(token)
        self._active_ctrl.add(channel_id)

    def _deliver(self, token: ControlFlit) -> None:
        kind = token.kind
        msg = token.message
        p = token.position
        if kind is ControlKind.HEADER:
            self._arrive_header(msg, p)
        elif kind is ControlKind.HEADER_BACK:
            self._arrive_header_back(msg, p)
        elif kind is ControlKind.ACK_POS:
            self._arrive_ack(msg, p, +1)
        elif kind is ControlKind.ACK_NEG:
            self._arrive_ack(msg, p, -1)
        elif kind is ControlKind.PATH_ACK:
            self._arrive_path_ack(msg, p, establish=True)
        elif kind is ControlKind.RESUME:
            self._arrive_path_ack(msg, p, establish=False)
        elif kind is ControlKind.KILL_UP:
            nxt = self._arrive_kill_up(msg, p)
            if nxt is not None:
                self._push_control(
                    ControlFlit(ControlKind.KILL_UP, msg, nxt, self.cycle + 1),
                    self.topology.reverse_channel_id(
                        msg.path[nxt].channel_id
                    ),
                )
        elif kind is ControlKind.KILL_DOWN:
            nxt = self._arrive_kill_down(msg, p)
            if nxt is not None:
                self._push_control(
                    ControlFlit(
                        ControlKind.KILL_DOWN, msg, nxt, self.cycle + 1
                    ),
                    msg.path[nxt - 1].channel_id,
                )
        elif kind is ControlKind.TAIL_ACK:
            nxt = self._arrive_tail_ack(msg, p)
            if nxt is not None:
                self._push_control(
                    ControlFlit(
                        ControlKind.TAIL_ACK, msg, nxt, self.cycle + 1
                    ),
                    self.topology.reverse_channel_id(
                        msg.path[nxt].channel_id
                    ),
                )
        else:  # pragma: no cover - exhaustive dispatch
            raise AssertionError(f"unknown control kind {kind}")

    # ---------------- header arrivals ---------------------------------
    def _arrive_header(self, msg: Message, p: int) -> None:
        if msg.teardown or msg.is_terminal():
            return
        # The header moved: the routing decision is fresh (unpark) and
        # the head data gate may have opened (possibly into ejection).
        msg.parked = False
        msg.dm_quiet = False
        if self._kern is not None:
            self._kern.touch(msg)
        msg.header_router = p
        msg.header_phase = HeaderPhase.PENDING
        self.protocol.on_arrival(self.ctx, msg)
        node = msg.path_nodes[p]
        # Positive acknowledgment: SR mode, not constructing a detour.
        # At the destination the path acknowledgment subsumes it.
        fc = self.protocol.flow_control
        if (
            fc.kind is FlowControlKind.SCOUTING
            and not msg.header.detour
            and fc.k_for(msg.header.sr) > 0
            and p >= 1
            and node != msg.dst
        ):
            self._push_control(
                ControlFlit(ControlKind.ACK_POS, msg, p - 1, self.cycle + 1),
                self.topology.reverse_channel_id(msg.path[p - 1].channel_id),
            )
        if node == msg.dst:
            self._header_reached_destination(msg)
            return
        if msg.tp_mode is TPMode.DETOUR and detour_rules.detour_complete(
            msg, at_destination=False
        ):
            detour_rules.complete_detour(msg)
            if p >= 1:
                self._push_control(
                    ControlFlit(
                        ControlKind.RESUME, msg, p - 1, self.cycle + 1
                    ),
                    self.topology.reverse_channel_id(
                        msg.path[p - 1].channel_id
                    ),
                )
        self.pending[msg.msg_id] = msg

    def _header_reached_destination(self, msg: Message) -> None:
        if msg.tp_mode is TPMode.DETOUR:
            detour_rules.complete_detour(msg)
        msg.header_phase = HeaderPhase.DELIVERED
        if msg.needs_path_ack and msg.path:
            self._push_control(
                ControlFlit(
                    ControlKind.PATH_ACK, msg, len(msg.path) - 1,
                    self.cycle + 1,
                ),
                self.topology.reverse_channel_id(msg.path[-1].channel_id),
            )

    def _arrive_header_back(self, msg: Message, p: int) -> None:
        if msg.teardown or msg.is_terminal():
            return
        msg.parked = False
        msg.dm_quiet = False
        kern = self._kern
        if kern is not None:
            # The pop below reshapes the path lists; the row resyncs
            # from them on the next kernel cycle.
            kern.touch(msg)
        msg.backtrack_lock = -1
        popped_vc = msg.path[-1]
        dim, direction = msg.arrival_dims[-1]
        was_misroute = msg.link_misroute[-1]
        if not msg.released[-1] and popped_vc.owner == msg.msg_id:
            popped_vc.release()
        msg.released[-1] = True
        msg.pop_path()
        msg.tried[p].add(popped_vc.channel_id)
        if msg.tp_mode is TPMode.DETOUR:
            detour_rules.record_backtrack(msg, dim, direction, was_misroute)
        elif was_misroute:
            msg.header.misroutes = max(0, msg.header.misroutes - 1)
        msg.header.apply_hop(dim, -direction, self.topology.k)
        msg.header.backtrack = False
        msg.header_router = p
        msg.header_phase = HeaderPhase.PENDING
        msg.hops_taken += 1
        # Negative acknowledgment decrements the upstream counters.
        fc = self.protocol.flow_control
        if (
            fc.kind is FlowControlKind.SCOUTING
            and not msg.header.detour
            and fc.k_for(msg.header.sr) > 0
            and p >= 1
        ):
            self._push_control(
                ControlFlit(ControlKind.ACK_NEG, msg, p - 1, self.cycle + 1),
                self.topology.reverse_channel_id(msg.path[p - 1].channel_id),
            )
        self.pending[msg.msg_id] = msg

    # ---------------- acknowledgment arrivals --------------------------
    def _arrive_ack(self, msg: Message, p: int, delta: int) -> None:
        if msg.teardown or msg.is_terminal():
            return
        if p >= len(msg.acks_at):
            return  # path shrank past this position (backtracking race)
        self._staged_acks.append((msg, p, delta))
        if p > 0 and p > msg.head_router:
            kind = ControlKind.ACK_POS if delta > 0 else ControlKind.ACK_NEG
            self._push_control(
                ControlFlit(kind, msg, p - 1, self.cycle + 1),
                self.topology.reverse_channel_id(msg.path[p - 1].channel_id),
            )
        # Otherwise: not propagated beyond the first data flit.

    def _arrive_path_ack(self, msg: Message, p: int, establish: bool) -> None:
        if msg.teardown or msg.is_terminal():
            return
        if establish and p < len(msg.acks_at):
            # The path acknowledgment is the destination's positive
            # acknowledgment: it increments the scouting counters it
            # passes (the per-hop ack is suppressed at the destination).
            self._staged_acks.append((msg, p, +1))
        if p > 0 and p > msg.head_router:
            self._staged_path.append((msg, p, False))
            kind = ControlKind.PATH_ACK if establish else ControlKind.RESUME
            self._push_control(
                ControlFlit(kind, msg, p - 1, self.cycle + 1),
                self.topology.reverse_channel_id(msg.path[p - 1].channel_id),
            )
            return
        self._staged_path.append((msg, p, establish))

    def _apply_staged_gate_updates(self) -> None:
        """Commit this cycle's acknowledgment effects (end-of-cycle)."""
        kern = self._kern
        if self._staged_acks:
            for msg, p, delta in self._staged_acks:
                if p < len(msg.acks_at):
                    msg.acks_at[p] += delta
                # A gate input changed: the data pipeline may move now.
                msg.dm_quiet = False
                if kern is not None:
                    kern.touch(msg)
            self._staged_acks.clear()
        if self._staged_path:
            for msg, p, establish in self._staged_path:
                if p < len(msg.held):
                    msg.held[p] = False
                if establish:
                    msg.path_established = True
                msg.dm_quiet = False
                if kern is not None:
                    kern.touch(msg)
            self._staged_path.clear()

    # ---------------- teardown token arrivals --------------------------
    def _arrive_kill_up(self, msg: Message, p: int) -> Optional[int]:
        """Process a kill arriving at router ``p``; return next position."""
        self._release_link(msg, p)
        if p > 0:
            self._kill_buffer(msg, p - 1)
            return p - 1
        self._kill_reached_source(msg)
        return None

    def _finish_kill_up(self, msg: Message, p: int) -> None:
        nxt: Optional[int] = p
        while nxt is not None:
            nxt = self._arrive_kill_up(msg, nxt)

    def _arrive_kill_down(self, msg: Message, p: int) -> Optional[int]:
        self._release_link(msg, p - 1)
        self._kill_buffer(msg, p - 1)
        if p < len(msg.path):
            return p + 1
        return None

    def _finish_kill_down(self, msg: Message, p: int) -> None:
        nxt: Optional[int] = p
        while nxt is not None:
            nxt = self._arrive_kill_down(msg, nxt)

    def _arrive_tail_ack(self, msg: Message, p: int) -> Optional[int]:
        self._release_link(msg, p)
        if p > 0:
            return p - 1
        msg.tail_acked = True
        if self._ev:
            # The source queue head may now retire: attend its launch.
            self._launch_attn.add(msg.src)
        if msg.status is MessageStatus.ACTIVE and (
            msg.delivered_cycle is not None
        ):
            msg.status = MessageStatus.DELIVERED
            self._finalize(msg, count_delivered=True)
        return None

    def _finish_tail_ack(self, msg: Message, p: int) -> None:
        nxt: Optional[int] = p
        while nxt is not None:
            nxt = self._arrive_tail_ack(msg, nxt)

    def _release_link(self, msg: Message, idx: int) -> None:
        if idx < 0 or idx >= len(msg.path) or msg.released[idx]:
            return
        vc = msg.path[idx]
        if vc.owner == msg.msg_id:
            vc.release()
        msg.released[idx] = True
        if self._kern is not None:
            self._kern.on_release(msg, idx)

    def _kill_buffer(self, msg: Message, idx: int) -> None:
        if 0 <= idx < len(msg.buffered) and msg.buffered[idx]:
            lost = msg.buffered[idx]
            msg.buffered[idx] = 0
            msg.killed_flits += lost
            self.killed_flits += lost

    # ==================================================================
    # Teardown / recovery (Section 2.4)
    # ==================================================================
    def _interrupt(self, msg: Message, fail_idx: int) -> None:
        """A dynamic fault severed ``msg``'s path at link ``fail_idx``."""
        if msg.teardown or msg.is_terminal():
            return
        if self._kern is not None:
            # The message leaves the data phase: free its row.
            self._kern.drop(msg)
        msg.teardown = True
        msg.teardown_reason = "fault"
        self.teardown_counts["fault"] = (
            self.teardown_counts.get("fault", 0) + 1
        )
        self.last_recovery_cycle = self.cycle
        msg.header_phase = HeaderPhase.GONE
        self.pending.pop(msg.msg_id, None)
        self._release_link(msg, fail_idx)
        # Upstream side: kill flits follow the circuit back to the source.
        if fail_idx == 0:
            self._kill_reached_source(msg)
        else:
            self._kill_buffer(msg, fail_idx - 1)
            self._push_control(
                ControlFlit(
                    ControlKind.KILL_UP, msg, fail_idx - 1, self.cycle + 1
                ),
                self.topology.reverse_channel_id(
                    msg.path[fail_idx - 1].channel_id
                ),
            )
        # Downstream side: toward the destination / header end.
        self._kill_buffer(msg, fail_idx)
        if fail_idx + 1 < len(msg.path):
            self._push_control(
                ControlFlit(
                    ControlKind.KILL_DOWN, msg, fail_idx + 2, self.cycle + 1
                ),
                msg.path[fail_idx + 1].channel_id,
            )

    def _abort(self, msg: Message, reason: str) -> None:
        """Routing gave up: recover resources, then retry or drop."""
        self.drop_reasons[reason] = self.drop_reasons.get(reason, 0) + 1
        self._teardown(msg, "abort", msg.header_router)

    def _teardown(self, msg: Message, reason: str, from_router: int) -> None:
        if msg.teardown or msg.is_terminal():
            return
        if self._kern is not None:
            self._kern.drop(msg)
        msg.teardown = True
        msg.teardown_reason = reason
        self.teardown_counts[reason] = (
            self.teardown_counts.get(reason, 0) + 1
        )
        self.last_recovery_cycle = self.cycle
        msg.header_phase = HeaderPhase.GONE
        self.pending.pop(msg.msg_id, None)
        self._progress = True
        if from_router == 0 or not msg.path:
            self._kill_reached_source(msg)
            return
        self._kill_buffer(msg, from_router - 1)
        self._push_control(
            ControlFlit(
                ControlKind.KILL_UP, msg, from_router - 1, self.cycle + 1
            ),
            self.topology.reverse_channel_id(
                msg.path[from_router - 1].channel_id
            ),
        )

    def _kill_reached_source(self, msg: Message) -> None:
        """The teardown reached the source: retransmit, retry, or drop."""
        self._release_link(msg, 0)
        if msg.is_terminal():
            return
        rec = self.config.recovery
        src_alive = not self.faults.is_node_faulty(msg.src)
        dst_alive = not self.faults.is_node_faulty(msg.dst)
        retryable = src_alive and dst_alive
        if msg.teardown_reason == "fault":
            if (
                rec.retransmit
                and retryable
                and msg.retransmits < rec.max_retransmits
            ):
                self._requeue_clone(msg)
                self.retransmissions += 1
                msg.status = MessageStatus.KILLED
                self._finalize(msg, superseded=True)
                return
            if (
                msg.injected_flits == 0
                and retryable
                and msg.retransmits < rec.max_source_retries
            ):
                # No data had been committed (PCS-style setup): the
                # source simply retries the path construction.
                self._requeue_clone(msg)
                self.source_retries += 1
                msg.status = MessageStatus.KILLED
                self._finalize(msg, superseded=True)
                return
            msg.status = MessageStatus.KILLED
            self._finalize(msg, count_killed=True)
            return
        # Aborted path construction: retry from the source a bounded
        # number of times (Section 4.0's higher-level retry).
        if retryable and msg.retransmits < rec.max_source_retries:
            self._requeue_clone(msg)
            self.source_retries += 1
            msg.status = MessageStatus.DROPPED
            self._finalize(msg, superseded=True)
            return
        msg.status = MessageStatus.DROPPED
        msg.drop_reason = msg.drop_reason or "undeliverable"
        self._finalize(msg, count_dropped=True)

    def _requeue_clone(self, original: Message) -> None:
        """Re-inject a fresh copy of an interrupted/aborted message."""
        clone = self._new_message(
            original.src, original.dst, created_cycle=original.created_cycle
        )
        clone.original_id = original.original_id
        clone.retransmits = original.retransmits + 1
        q = self.queues[original.src]
        self._busy_queues.add(original.src)
        if self._ev:
            self._launch_attn.add(original.src)
        if q and q[0] is original:
            q[0] = clone
        else:
            q.appendleft(clone)

    # ==================================================================
    # Phase 4: data movement
    # ==================================================================
    def _phase_data_movement(self, used_by_control: Set[int]) -> None:
        kern = self._kern
        if kern is not None and kern.data_phase(used_by_control):
            self.kernel_cycles += 1
            return
        self._walk_data_movement(used_by_control)

    def _walk_data_movement(self, used_by_control: Set[int]) -> None:
        """The object-walk data phase — the kernel's equivalence
        oracle, and the live path for low-occupancy cycles, runs with
        ``data_kernel`` off, and paths beyond the kernel's mask width.
        """
        depth = self._depth
        ev = self._ev
        # channel id -> [(vc index, message, position, is_last, vc), ...]
        candidates: Dict[int, List[tuple]] = {}
        eject_ready: Dict[int, Dict[int, Message]] = {}
        self._eject_ready = eject_ready
        active_status = MessageStatus.ACTIVE
        delivered_phase = HeaderPhase.DELIVERED
        inline_header = self._inline_header
        tail_ack = self._tail_ack_mode
        cycle = self.cycle
        resident = self._ch_resident
        attn = self._launch_attn
        moved = 0

        for msg in self.active.values():
            # Quiet messages provably contribute nothing to this scan
            # until a state-change notification clears the flag (every
            # predicate below reads only the message's own state, and
            # every mutation of that state funnels through a site that
            # clears ``dm_quiet``) — skipping them enumerates the same
            # candidates in the same order as the full scan.
            if msg.dm_quiet:
                continue
            if msg.teardown or msg.status is not active_status:
                continue
            path = msg.path
            path_len = len(path)
            if path_len == 0:
                # Nothing reserved yet: quiet until the first reserve.
                msg.dm_quiet = ev
                continue
            buffered = msg.buffered
            head_link = msg.head_link
            head_move = head_link + 1
            # Ejection candidate: path complete at destination with
            # flits waiting in the final buffer.
            if (
                msg.header_phase is delivered_phase
                and buffered[path_len - 1] > 0
            ):
                contributed = True
                bucket = eject_ready.get(msg.dst)
                if bucket is None:
                    eject_ready[msg.dst] = {msg.msg_id: msg}
                else:
                    bucket[msg.msg_id] = msg
            else:
                contributed = False
            # Crossing positions with a flit ready to move: 0 while
            # still injecting (crossing path[0]), then t+1 for every
            # occupied buffer in [tail_idx, head_link].  The scan and
            # the per-position credit/gate checks are fused into one
            # pass so no intermediate position list is materialized.
            released = msg.released
            backtrack_lock = msg.backtrack_lock
            inject = msg.at_source > 0
            t = msg.tail_idx
            last_link = path_len - 1
            # Position an inline move (below) delivered a flit *into*
            # this scan pass; its occupancy read must see the pre-move
            # count or the same flit would cross two links in one cycle.
            moved_into = -1
            while True:
                if inject:
                    inject = False
                    p = 0
                else:
                    if t > head_link:
                        break
                    occupied = buffered[t]
                    if t == moved_into:
                        occupied -= 1
                    t += 1
                    if occupied == 0:
                        continue
                    p = t  # the position downstream of old t
                    if p >= path_len:
                        continue
                # No credit (downstream buffer full) or no live link.
                if buffered[p] >= depth or released[p]:
                    continue
                if p == backtrack_lock:
                    continue  # the header is retreating over this link
                if p == head_move:
                    # First-data-flit gate (Figure 11 DIBU enable).
                    if msg.held[p]:
                        continue
                    k_at = msg.k_at
                    k_gate = k_at[p - 1] if p > 0 else k_at[0]
                    if k_gate >= K_INFINITE:
                        if not msg.path_established:
                            continue
                    elif (
                        msg.acks_at[p] < k_gate
                        and not msg.path_established
                    ):
                        # On a path shorter than K the header reaches
                        # the destination before K acks exist; the path
                        # acknowledgment then releases the data (SR
                        # degenerates to PCS, Section 2.2).
                        continue
                # Marked before the control-channel filter: a position
                # suppressed only by this cycle's control traffic can
                # move next cycle with no state change, so it must keep
                # the message un-quiet.
                contributed = True
                vc = path[p]
                ch = vc.channel_id
                if ch in used_by_control:
                    continue
                # Inline fast path: the channel's only reserved VC is
                # this one, so the move wins arbitration unopposed (the
                # arbiter is untouched either way — single-candidate
                # grants never advance it).  Excluded: the last link
                # (its grant may insert into ``eject_ready``, whose key
                # order must match the deferred grant loop) and, for
                # in-band headers, the head advance (its arrival
                # appends to ``pending``, whose order is the next
                # cycle's decision order).  Both still resolve through
                # the candidate buckets below, in the exact slot the
                # brute-force path gives them.
                if (
                    ev
                    and p != last_link
                    and resident[ch] == 1
                    and not (inline_header and p == head_move)
                ):
                    if p == 0:
                        msg.at_source -= 1
                        if msg.injected_cycle is None:
                            msg.injected_cycle = cycle
                        if msg.at_source == 0:
                            # Last flit left the source: its queue head
                            # may retire in this cycle's launch phase.
                            attn.add(msg.src)
                    else:
                        buffered[p - 1] -= 1
                    buffered[p] += 1
                    crossed = msg.crossed
                    crossed[p] += 1
                    vc.grants += 1
                    moved += 1
                    if p == head_move:
                        msg.head_link = p
                    if msg.at_source == 0:
                        tail_idx = msg.tail_idx
                        hl = msg.head_link
                        while tail_idx <= hl and buffered[tail_idx] == 0:
                            tail_idx += 1
                        msg.tail_idx = tail_idx
                    if crossed[p] == msg.total_flits and not tail_ack:
                        self._release_link(msg, p)
                    moved_into = p
                    continue
                entry = (vc.index, msg, p, p == last_link, vc)
                bucket = candidates.get(ch)
                if bucket is None:
                    candidates[ch] = [entry]
                else:
                    bucket.append(entry)
            if ev and not contributed:
                msg.dm_quiet = True

        # Grant one data flit per physical channel (round-robin among
        # resident VCs), skipping channels used by control this cycle.
        # The per-grant flit move is inlined here (it is the hottest
        # code in the simulator); semantics are unchanged.
        arbiters = self._arbiters
        for ch, cands in candidates.items():
            if len(cands) == 1:
                vc_idx, msg, p, is_last, vc = cands[0]
            else:
                winner = arbiters[ch].grant_from(
                    [c[0] for c in cands]
                )
                vc_idx, msg, p, is_last, vc = next(
                    c for c in cands if c[0] == winner
                )
            buffered = msg.buffered
            if p == 0:
                msg.at_source -= 1
                if msg.injected_cycle is None:
                    msg.injected_cycle = cycle
                if msg.at_source == 0 and ev:
                    # Last flit left the source: its queue head may
                    # retire in this cycle's launch phase.
                    self._launch_attn.add(msg.src)
            else:
                buffered[p - 1] -= 1
            buffered[p] += 1
            crossed = msg.crossed
            crossed[p] += 1
            vc.grants += 1
            moved += 1
            if p == msg.head_link + 1:
                msg.head_link = p
                if inline_header:
                    self._inline_header_arrived(msg, p + 1)
            if is_last and msg.header_phase is delivered_phase:
                bucket = eject_ready.get(msg.dst)
                if bucket is None:
                    eject_ready[msg.dst] = {msg.msg_id: msg}
                else:
                    bucket[msg.msg_id] = msg
            if msg.at_source == 0:
                tail_idx = msg.tail_idx
                head_link = msg.head_link
                while tail_idx <= head_link and buffered[tail_idx] == 0:
                    tail_idx += 1
                msg.tail_idx = tail_idx
            if crossed[p] == msg.total_flits and not tail_ack:
                self._release_link(msg, p)
        if moved:
            self.data_flits_moved += moved
            self._progress = True

        # Ejection: one flit per node per cycle over the PE link.  A
        # flit that arrived this cycle may eject this cycle (cut-through
        # ejection port), which makes idle-network latency match the
        # Section 2.2 formulas exactly.
        for node, msgs in self._eject_ready.items():
            self._eject_one(node, msgs)

    def _inline_header_arrived(self, msg: Message, router_idx: int) -> None:
        """In-band header flit reached a new router."""
        msg.header_router = router_idx
        node = msg.path_nodes[router_idx]
        self.protocol.on_arrival(self.ctx, msg)
        if node == msg.dst:
            msg.header_phase = HeaderPhase.DELIVERED
        else:
            msg.header_phase = HeaderPhase.PENDING
            self.pending[msg.msg_id] = msg

    def _eject_one(self, node: int, msgs: Dict[int, Message]) -> None:
        """Grant the PE link to one waiting message (round-robin by id)."""
        if len(msgs) == 1:
            # Single contender: round-robin degenerates to a grant.
            winner = next(iter(msgs.values()))
        else:
            last = self._eject_last[node]
            ids = sorted(msgs)
            winner = msgs[next((i for i in ids if i > last), ids[0])]
        self._eject_last[node] = winner.msg_id
        msg = winner
        buffered = msg.buffered
        buffered[len(msg.path) - 1] -= 1
        msg.ejected += 1
        self.flits_ejected += 1
        self._progress = True
        # Throughput counts data flits; skip the in-band header flit.
        is_header_flit = self._inline_header and msg.ejected == 1
        if not is_header_flit and (
            self._measuring_from < self.cycle <= self._measuring_to
        ):
            self.measured_delivered_flits += 1
        if msg.at_source == 0:
            tail_idx = msg.tail_idx
            head_link = msg.head_link
            while tail_idx <= head_link and buffered[tail_idx] == 0:
                tail_idx += 1
            msg.tail_idx = tail_idx
        if msg.ejected == msg.total_flits:
            msg.delivered_cycle = self.cycle
            if self._tail_ack_mode:
                # Hold the path; tear it down with the tail ack.
                self._push_control(
                    ControlFlit(
                        ControlKind.TAIL_ACK, msg, len(msg.path) - 1,
                        self.cycle + 1,
                    ),
                    self.topology.reverse_channel_id(
                        msg.path[-1].channel_id
                    ),
                )
            else:
                msg.status = MessageStatus.DELIVERED
                self._finalize(msg, count_delivered=True)

    # ==================================================================
    # Phase 5: traffic generation and launches
    # ==================================================================
    def _phase_traffic(self) -> None:
        cfg = self.config
        if self.traffic_enabled and self.injection.enabled:
            healthy = self.traffic.healthy_nodes
            num_healthy = len(healthy)
            if num_healthy:
                # The injection process lazily yields this cycle's
                # successful trial slots (usually none — the generator
                # just debits the cycle from its gap); the destination
                # draw for each arrival happens *between* two yields,
                # preserving the historical RNG interleaving exactly.
                length = cfg.message_length
                limit = cfg.injection_queue_limit
                measuring = self.in_measure_window()
                queues = self.queues
                busy_queues = self._busy_queues
                ev = self._ev
                attn = self._launch_attn
                destination = self.traffic.destination
                cycle = self.cycle
                for pos in self.injection.arrivals(num_healthy):
                    node = healthy[pos]
                    dst = destination(node)
                    if dst is not None:
                        self.offered_messages += 1
                        if measuring:
                            self.measured_offered_flits += length
                        queue = queues[node]
                        if len(queue) >= limit:
                            self.rejected_messages += 1
                        else:
                            self.accepted_messages += 1
                            if measuring:
                                self.measured_accepted_flits += length
                            queue.append(self._new_message(node, dst, cycle))
                            busy_queues.add(node)
                            if ev:
                                attn.add(node)
            # else: no trial slots this cycle; the process is frozen.

        # Launch / advance injection queues.  The event path visits only
        # the attention set — nodes whose queue head could act this
        # cycle (fresh arrival, head finished injecting or tail-acked,
        # head finalized or requeued, queue dropped by a fault); every
        # other busy node's visit is provably a no-op (an ACTIVE head
        # mid-injection breaks immediately), so the ascending-order
        # launch sequence matches the full busy scan exactly.
        busy = self._busy_queues
        if self._ev:
            attn = self._launch_attn
            if not attn:
                return
            nodes = sorted(attn)
            attn.clear()
        else:
            if not busy:
                return
            nodes = busy.snapshot()
        tail_ack = self._tail_ack_mode
        active_status = MessageStatus.ACTIVE
        queued_status = MessageStatus.QUEUED
        pending_phase = HeaderPhase.PENDING
        queues = self.queues
        for node in nodes:
            queue = queues[node]
            while queue:
                head = queue[0]
                status = head.status
                if status is active_status:
                    done_injecting = head.at_source == 0
                    released = head.tail_acked if tail_ack else True
                    if done_injecting and released and not head.teardown:
                        queue.popleft()
                        continue
                    break
                if status is not queued_status:  # terminal
                    queue.popleft()
                    continue
                # QUEUED head: launch its routing header.
                head.status = active_status
                head.header_phase = pending_phase
                self.active[head.msg_id] = head
                self.pending[head.msg_id] = head
                if self._kern is not None:
                    self._kern.attach(head)
                self._progress = True
                break
            if not queue:
                busy.discard(node)

    def _new_message(self, src: int, dst: int, created_cycle: int,
                     length: Optional[int] = None) -> Message:
        cfg = self.config
        msg = Message(
            msg_id=self._next_msg_id,
            src=src,
            dst=dst,
            length=length if length is not None else cfg.message_length,
            offsets=self.topology.offsets(src, dst),
            created_cycle=created_cycle,
            inline_header=self._inline_header,
        )
        msg.hop_cap = cfg.hop_cap_base + cfg.hop_cap_factor * (
            self.topology.distance(src, dst)
        )
        self._next_msg_id += 1
        self.messages[msg.msg_id] = msg
        return msg

    # ==================================================================
    # Finalization / bookkeeping
    # ==================================================================
    def _finalize(
        self,
        msg: Message,
        count_delivered: bool = False,
        count_dropped: bool = False,
        count_killed: bool = False,
        superseded: bool = False,
    ) -> None:
        if self._kern is not None:
            self._kern.drop(msg)
        if count_delivered:
            self.delivered_messages += 1
        if count_dropped:
            self.dropped_messages += 1
        if count_killed:
            self.killed_messages += 1
        if self._ev:
            # A terminal head unblocks its source queue: attend it.
            self._launch_attn.add(msg.src)
        self.active.pop(msg.msg_id, None)
        self.pending.pop(msg.msg_id, None)
        self.messages.pop(msg.msg_id, None)
        self.records.append(
            MessageRecord(
                msg_id=msg.msg_id,
                src=msg.src,
                dst=msg.dst,
                status=msg.status.name,
                created=msg.created_cycle,
                injected=msg.injected_cycle,
                delivered=msg.delivered_cycle,
                distance=self.topology.distance(msg.src, msg.dst),
                hops=msg.hops_taken,
                misroutes=msg.misroute_total,
                backtracks=msg.backtrack_count,
                detours=msg.detour_count,
                retransmits=msg.retransmits,
                superseded=superseded,
            )
        )
