"""Workload generation: traffic patterns and injection processes.

The paper evaluates with uniformly distributed message destinations and
Bernoulli injection (Section 6.0); deterministic communication patterns
were used to validate the simulator.  This module generalizes both
halves of that workload behind one contract (DESIGN.md §9):

* a **destination distribution** — :class:`TrafficPattern`, answering
  "where does a new message from ``src`` go?";
* an **injection process** — :class:`InjectionProcess`, answering
  "when does the next message arrive?", realized by renewal-process
  *gap sampling* so idle cycles cost no RNG draws and the engine's
  quiescence fast-forward can jump whole idle stretches while
  consuming the RNG stream identically (see DESIGN.md §8/§9).

Patterns (``SimulationConfig.traffic``):

* ``uniform``    — destination uniform over all healthy remote nodes;
* ``hotspot``    — a configurable fraction of traffic converges on a
  few hot nodes, the rest is uniform (``traffic_params``:
  ``hotspot_fraction``, ``hotspot_count`` or ``hotspot_nodes``);
* ``transpose``  — coordinate-transpose permutation (n == 2);
* ``complement`` — coordinate-complement permutation (the k-ary
  analog of bit-complement);
* ``tornado``    — half-ring offset in dimension 0 (adversarial for
  minimal routing on tori);
* ``nearest``    — one-hop neighbor traffic (deterministic
  validation);
* ``bursty``     — uniform destinations with on-off (interrupted
  Bernoulli / MMBP-2) injection timing (``traffic_params``:
  ``burst_on``, ``burst_off``, ``burst_off_load``).

Any pattern becomes bursty by setting ``burst_on``/``burst_off`` in
``traffic_params``; the ``bursty`` name is shorthand for uniform
destinations with the default burst parameters.

Every pattern draws destinations only from the **healthy** node set
maintained by :meth:`TrafficGenerator.set_healthy_nodes`: when a node
dies mid-run its weight redistributes (hotspot) or its permutation
partners go silent (transpose/complement/tornado) — traffic never
silently targets a dead node.
"""

from __future__ import annotations

import math
import random
import sys
from typing import Any, Dict, Iterator, List, Optional, Sequence

from repro.network.topology import KAryNCube

#: Sentinel horizon for a process that will never inject again.
NEVER = sys.maxsize


# ======================================================================
# Healthy-node view shared by the generator and the patterns
# ======================================================================
class HealthyNodes:
    """The live healthy-node set, in the three shapes samplers need.

    ``nodes`` is the ascending list (indexable for gap-sampled trial
    slots), ``node_set`` the membership set, and ``position`` maps a
    node id to its index in ``nodes`` (for the source-exclusion shift
    in uniform sampling).
    """

    __slots__ = ("nodes", "node_set", "position")

    def __init__(self, nodes: Sequence[int]):
        self.nodes: List[int] = list(nodes)
        self.node_set = set(self.nodes)
        self.position = {node: i for i, node in enumerate(self.nodes)}

    def __len__(self) -> int:
        return len(self.nodes)

    def __contains__(self, node: int) -> bool:
        return node in self.node_set


# ======================================================================
# Destination distributions
# ======================================================================
class TrafficPattern:
    """Destination-distribution half of the workload contract.

    A pattern is a (possibly randomized) map from a source node to a
    destination node, restricted to the live healthy set.  Subclasses
    implement :meth:`destination`; patterns that cache anything derived
    from the healthy set (e.g. the hotspot list) additionally override
    :meth:`on_healthy_changed`, which the owning
    :class:`TrafficGenerator` calls on every
    :meth:`~TrafficGenerator.set_healthy_nodes`.

    Contract (enforced by the ``TrafficGenerator.destination`` wrapper
    and pinned by the property suite in
    ``tests/sim/test_traffic_properties.py``): a returned destination
    is always healthy and never the source; ``None`` means "this source
    sends nowhere right now" (e.g. a permutation partner has failed)
    and the engine skips the injection.
    """

    #: Registry name (set per subclass).
    name = "?"

    def __init__(self, topology: KAryNCube, params: Dict[str, Any]):
        self.topology = topology

    def destination(self, src: int, rng: random.Random,
                    healthy: HealthyNodes) -> Optional[int]:
        """A destination for a new message from ``src``, or ``None``."""
        raise NotImplementedError

    def on_healthy_changed(self, healthy: HealthyNodes) -> None:
        """The healthy-node set changed (fault placement or dynamic
        faults); recompute any cached healthy-derived state."""


def _uniform_destination(src: int, rng: random.Random,
                         healthy: HealthyNodes) -> Optional[int]:
    """Uniform over healthy nodes excluding the source, in one draw.

    One ``randrange`` over the m-1 admissible positions, shifting
    indexes at or past the source's slot up by one — exactly one draw
    per destination (the old rejection loop consumed a geometrically
    distributed number of draws; see the determinism note in
    DESIGN.md §8 for the resulting RNG-stream change).
    """
    nodes = healthy.nodes
    m = len(nodes)
    if m < 2:
        return None
    pos = healthy.position.get(src)
    if pos is None:
        # Source not in the healthy set (direct calls from
        # tests/tools): nothing to exclude.
        return nodes[rng.randrange(m)]
    i = rng.randrange(m - 1)
    if i >= pos:
        i += 1
    return nodes[i]


class UniformPattern(TrafficPattern):
    """Uniformly distributed destinations (the paper's workload)."""

    name = "uniform"

    def destination(self, src, rng, healthy):
        return _uniform_destination(src, rng, healthy)


class HotspotPattern(TrafficPattern):
    """A fraction of traffic converges on a few hot nodes.

    With probability ``hotspot_fraction`` the destination is drawn
    uniformly from the *healthy* hot nodes (excluding the source);
    otherwise it is uniform over all healthy nodes.  The hot set is
    either given explicitly (``hotspot_nodes``) or chosen as
    ``hotspot_count`` evenly spaced node ids (deterministic — pattern
    construction never consumes RNG).

    Weight redistributes when hot nodes die: the healthy-hot list is
    recomputed on every :meth:`on_healthy_changed`, so a dead hotspot's
    share moves to the surviving hot nodes, and when the whole hot set
    is dead the pattern degrades to uniform instead of targeting
    corpses (regression-tested in ``tests/sim/test_traffic.py``).
    """

    name = "hotspot"

    def __init__(self, topology, params):
        super().__init__(topology, params)
        fraction = params.get("hotspot_fraction", 0.25)
        if not 0.0 <= fraction <= 1.0:
            raise ValueError("hotspot_fraction must be in [0, 1]")
        self.fraction = fraction
        nodes = params.get("hotspot_nodes")
        if nodes is None:
            count = params.get("hotspot_count", 4)
            if count < 1:
                raise ValueError("hotspot_count must be >= 1")
            count = min(count, topology.num_nodes)
            nodes = [
                i * topology.num_nodes // count for i in range(count)
            ]
        self.hotspots: List[int] = sorted(set(int(n) for n in nodes))
        for node in self.hotspots:
            if not 0 <= node < topology.num_nodes:
                raise ValueError(f"hotspot node {node} outside topology")
        self._healthy_hot: List[int] = list(self.hotspots)

    def on_healthy_changed(self, healthy):
        self._healthy_hot = [
            n for n in self.hotspots if n in healthy.node_set
        ]

    def destination(self, src, rng, healthy):
        hot = self._healthy_hot
        if hot and self.fraction > 0 and rng.random() < self.fraction:
            if len(hot) > 1 or hot[0] != src:
                i = rng.randrange(len(hot))
                if hot[i] == src:
                    i = (i + 1) % len(hot)
                return hot[i]
            # The only live hot node is the source itself: fall back.
        return _uniform_destination(src, rng, healthy)


class NearestPattern(TrafficPattern):
    """One-hop neighbor traffic (deterministic validation pattern)."""

    name = "nearest"

    def destination(self, src, rng, healthy):
        return self.topology.neighbor(src, 0, +1)


class TransposePattern(TrafficPattern):
    """Coordinate-transpose permutation (n == 2): (x, y) -> (y, x)."""

    name = "transpose"

    def destination(self, src, rng, healthy):
        coords = self.topology.coords(src)
        return self.topology.node_id(tuple(reversed(coords)))


class TornadoPattern(TrafficPattern):
    """Half-ring offset in dimension 0 — adversarial for minimal
    routing on tori (every message travels the maximum ring distance
    in one direction)."""

    name = "tornado"

    def destination(self, src, rng, healthy):
        topo = self.topology
        coords = list(topo.coords(src))
        coords[0] = (coords[0] + (topo.k - 1) // 2) % topo.k
        return topo.node_id(coords)


class ComplementPattern(TrafficPattern):
    """Coordinate-complement permutation: c -> k-1-c per dimension
    (the k-ary analog of bit-complement)."""

    name = "complement"

    def destination(self, src, rng, healthy):
        topo = self.topology
        coords = [(topo.k - 1 - c) for c in topo.coords(src)]
        return topo.node_id(coords)


class BurstyPattern(UniformPattern):
    """Uniform destinations; the burstiness lives in the injection
    process (:class:`BurstyInjection`), selected by the ``bursty``
    pattern name or by ``burst_on``/``burst_off`` in
    ``traffic_params``."""

    name = "bursty"


_PATTERN_CLASSES = {
    cls.name: cls
    for cls in (
        UniformPattern, HotspotPattern, NearestPattern, TransposePattern,
        TornadoPattern, ComplementPattern, BurstyPattern,
    )
}


def make_pattern(name: str, topology: KAryNCube,
                 params: Optional[Dict[str, Any]] = None) -> TrafficPattern:
    """Instantiate a destination pattern by registry name."""
    try:
        cls = _PATTERN_CLASSES[name]
    except KeyError:
        raise ValueError(
            f"unknown traffic pattern {name!r}; "
            f"choose from {tuple(sorted(_PATTERN_CLASSES))}"
        ) from None
    return cls(topology, dict(params or {}))


# ======================================================================
# Injection processes (renewal-process timing, gap-sampled)
# ======================================================================
class InjectionProcess:
    """Injection-timing half of the workload contract.

    The engine models injection as one trial slot per healthy node per
    cycle, flattened cycle-major node-minor.  A process realizes a
    renewal process over that trial grid through three operations that
    together form the **fast-forward contract** (DESIGN.md §9):

    * :meth:`arrivals` — lazily yield this cycle's successful slot
      positions and advance one cycle.  Laziness matters: the engine
      draws each message's destination *between* two arrivals, so the
      RNG interleaving of a generator matches the historical inline
      loop draw for draw.
    * :meth:`idle_cycles` — how many whole cycles from now are
      guaranteed arrival-free, computable without consuming RNG beyond
      what the next :meth:`arrivals` call would have consumed anyway.
    * :meth:`skip_cycles` — consume ``cycles <= idle_cycles()`` cycles
      in O(1) with **zero** RNG draws, leaving the process in exactly
      the state that ``cycles`` empty :meth:`arrivals` calls would
      have produced.

    The last clause is what makes fast-forward on/off byte-identical
    per pattern: both paths draw the same uniforms at the same points
    of the stream (pinned for every pattern by
    ``tests/sim/test_determinism.py``).
    """

    #: False when the process can never inject (zero offered load);
    #: the engine then skips the traffic phase entirely.
    enabled = False

    def arrivals(self, num_slots: int) -> Iterator[int]:
        """Yield this cycle's arrival slot positions in [0, num_slots),
        ascending, advancing the process by one cycle."""
        raise NotImplementedError

    def idle_cycles(self, num_slots: int) -> int:
        """Whole cycles from now guaranteed to produce no arrival."""
        raise NotImplementedError

    def skip_cycles(self, cycles: int, num_slots: int) -> None:
        """Consume ``cycles`` arrival-free cycles without RNG draws.

        ``cycles`` must not exceed :meth:`idle_cycles` for the same
        ``num_slots``.
        """
        raise NotImplementedError


class BernoulliInjection(InjectionProcess):
    """I.i.d. Bernoulli(p) trials, realized by geometric gap sampling.

    Inversion method: for ``U`` uniform on [0, 1),
    ``floor(log(1 - U) / log(1 - p))`` is geometrically distributed
    with ``P(G = g) = (1 - p)^g * p`` — exactly the number of failed
    trials before the next success in an i.i.d. Bernoulli(p) sequence.
    One uniform draw per *success* replaces one draw per *trial*, and
    the stored gap makes idle horizons exact: the next arrival is
    ``gap // num_slots`` whole cycles away.
    """

    def __init__(self, p: float, rng: random.Random):
        if not 0.0 <= p <= 1.0:
            raise ValueError("injection probability must be in [0, 1]")
        self.p = p
        self.rng = rng
        self.enabled = p > 0.0
        self._log_q = math.log(1.0 - p) if 0.0 < p < 1.0 else None
        #: Failed trials left before the next success in the flat
        #: cycle-major node-minor trial sequence.
        self._gap = self._draw_gap() if self.enabled else 0

    def _draw_gap(self) -> int:
        if self._log_q is None:  # p >= 1: every trial succeeds
            return 0
        return int(math.log(1.0 - self.rng.random()) / self._log_q)

    def arrivals(self, num_slots: int) -> Iterator[int]:
        if not self.enabled:
            return
        gap = self._gap
        if gap >= num_slots:
            # Every trial of this cycle fails: consume the cycle's
            # slots from the gap and do nothing else — the common case
            # at low load, and what lets the fast-forward path skip
            # whole idle stretches with one subtraction.
            self._gap = gap - num_slots
            return
        pos = gap
        while pos < num_slots:
            yield pos
            pos += 1 + self._draw_gap()
        self._gap = pos - num_slots

    def idle_cycles(self, num_slots: int) -> int:
        if not self.enabled:
            return NEVER
        return self._gap // num_slots

    def skip_cycles(self, cycles: int, num_slots: int) -> None:
        if self.enabled:
            self._gap -= cycles * num_slots


class BurstyInjection(InjectionProcess):
    """Two-state on-off (Markov-modulated Bernoulli) injection.

    The process alternates ON and OFF states with geometrically
    distributed dwell times (means ``on_len`` / ``off_len`` cycles,
    support >= 1 cycle).  Within each state, per-slot trials are
    Bernoulli with that state's probability (``p_off = 0`` gives the
    classic interrupted Bernoulli process).  Each state's trial stream
    is an independent :class:`BernoulliInjection` whose gap *freezes*
    while the other state holds — the cycles spent in one state
    concatenate into an i.i.d. Bernoulli sequence, so the realization
    is exact, and the fast-forward contract reduces to the per-state
    stream's plus the dwell counter.

    State toggles settle lazily at the next ``arrivals``/``idle_cycles``
    call; on a quiescent network those are the next RNG consumers on
    both the cycle-by-cycle and fast-forward paths, so the dwell draw
    lands at the same stream position either way.
    """

    def __init__(self, p_on: float, p_off: float,
                 on_len: float, off_len: float, rng: random.Random):
        if on_len < 1 or off_len < 1:
            raise ValueError("burst dwell means must be >= 1 cycle")
        if not 0.0 <= p_off <= p_on <= 1.0:
            raise ValueError("need 0 <= p_off <= p_on <= 1")
        self.rng = rng
        self.enabled = p_on > 0.0
        self._q_on = 1.0 / on_len
        self._q_off = 1.0 / off_len
        self._on = True
        self._streams = {
            True: BernoulliInjection(p_on, rng),
            False: BernoulliInjection(p_off, rng),
        }
        #: Cycles left in the current state (>= 1 after settling).
        self._left = self._draw_dwell(self._q_on) if self.enabled else 0

    def _draw_dwell(self, q: float) -> int:
        """1 + Geometric(q): mean exactly 1/q, always >= 1 cycle."""
        if q >= 1.0:
            return 1
        return 1 + int(
            math.log(1.0 - self.rng.random()) / math.log(1.0 - q)
        )

    def _settle(self) -> None:
        """Apply any pending state toggle (idempotent)."""
        while self._left == 0:
            self._on = not self._on
            self._left = self._draw_dwell(
                self._q_on if self._on else self._q_off
            )

    def arrivals(self, num_slots: int) -> Iterator[int]:
        if not self.enabled:
            return
        self._settle()
        self._left -= 1
        yield from self._streams[self._on].arrivals(num_slots)

    def idle_cycles(self, num_slots: int) -> int:
        if not self.enabled:
            return NEVER
        self._settle()
        stream_idle = self._streams[self._on].idle_cycles(num_slots)
        return min(self._left, stream_idle)

    def skip_cycles(self, cycles: int, num_slots: int) -> None:
        if not self.enabled:
            return
        self._left -= cycles
        self._streams[self._on].skip_cycles(cycles, num_slots)


#: Default burst-shape parameters for the ``bursty`` pattern: mean ON
#: dwell, mean OFF dwell (25% duty cycle -> 4x peak-to-average load),
#: and the OFF-state load as a fraction of the ON-state load.
DEFAULT_BURST_ON = 64
DEFAULT_BURST_OFF = 192
DEFAULT_BURST_OFF_LOAD = 0.0

#: ``traffic_params`` keys that switch any pattern to bursty timing.
BURST_PARAM_KEYS = ("burst_on", "burst_off", "burst_off_load")


def make_injection_process(config, rng: random.Random) -> InjectionProcess:
    """Build the injection process a config asks for.

    The per-trial probability is ``offered_load / message_length``
    (one trial per healthy node per cycle, as in the paper).  With
    burst parameters present — or the ``bursty`` pattern name — the
    ON-state probability is scaled up so the *time-average* offered
    load still matches ``config.offered_load``:

        p_on = p / (duty + off_load_fraction * (1 - duty))

    where ``duty = burst_on / (burst_on + burst_off)``.  A load too
    high to fit in the duty cycle (``p_on > 1``) is rejected rather
    than silently clamped.
    """
    p = (
        config.offered_load / config.message_length
        if config.offered_load > 0 else 0.0
    )
    params = config.traffic_params
    bursty = config.traffic == "bursty" or any(
        key in params for key in BURST_PARAM_KEYS
    )
    if not bursty:
        return BernoulliInjection(p, rng)
    on_len = params.get("burst_on", DEFAULT_BURST_ON)
    off_len = params.get("burst_off", DEFAULT_BURST_OFF)
    off_load = params.get("burst_off_load", DEFAULT_BURST_OFF_LOAD)
    if on_len < 1 or off_len < 1:
        raise ValueError("burst_on and burst_off must be >= 1 cycle")
    if not 0.0 <= off_load <= 1.0:
        raise ValueError("burst_off_load must be in [0, 1]")
    duty = on_len / (on_len + off_len)
    p_on = p / (duty + off_load * (1.0 - duty)) if p > 0 else 0.0
    if p_on > 1.0:
        raise ValueError(
            f"offered load {config.offered_load} cannot fit a "
            f"{duty:.0%} duty cycle: the ON-state trial probability "
            f"would be {p_on:.3f} > 1; lengthen burst_on, shorten "
            "burst_off, or lower the load"
        )
    return BurstyInjection(p_on, off_load * p_on, on_len, off_len, rng)


# ======================================================================
# Facade
# ======================================================================
class TrafficGenerator:
    """Per-source destination selection for a named traffic pattern.

    The generator owns the live :class:`HealthyNodes` view and a
    :class:`TrafficPattern`; the engine asks it for one destination
    per injection arrival.  ``params`` carries the pattern's knobs
    (``SimulationConfig.traffic_params``) — see the module docstring
    for the catalog, and ``EXPERIMENTS.md`` ("Workload catalog") for
    the CLI commands that exercise each pattern.
    """

    #: Registry of destination-pattern names, in catalog order.
    PATTERNS = tuple(_PATTERN_CLASSES)

    def __init__(self, pattern: str, topology: KAryNCube,
                 rng: random.Random,
                 healthy_nodes: Optional[List[int]] = None,
                 params: Optional[Dict[str, Any]] = None):
        self.pattern = pattern
        self.topology = topology
        self.rng = rng
        self.pattern_impl = make_pattern(pattern, topology, params)
        self._healthy = HealthyNodes(
            healthy_nodes if healthy_nodes is not None
            else range(topology.num_nodes)
        )
        self.pattern_impl.on_healthy_changed(self._healthy)

    def set_healthy_nodes(self, healthy_nodes: List[int]) -> None:
        """Restrict sources/destinations after fault placement.

        Called at construction and by the engine's dynamic-fault phase;
        the pattern is notified so cached healthy-derived state (e.g.
        the hotspot list) redistributes immediately.
        """
        self._healthy = HealthyNodes(healthy_nodes)
        self.pattern_impl.on_healthy_changed(self._healthy)

    @property
    def healthy_nodes(self) -> List[int]:
        """Healthy node ids, ascending — the cycle's trial slots."""
        return self._healthy.nodes

    # ------------------------------------------------------------------
    def destination(self, src: int) -> Optional[int]:
        """Destination for a new message from ``src``.

        Returns ``None`` when the pattern sends this source nowhere
        (e.g. a permutation partner that has failed) — the engine then
        skips the injection.  A non-``None`` destination is always
        healthy and never ``src`` (the pattern contract, double-checked
        here).
        """
        dst = self.pattern_impl.destination(src, self.rng, self._healthy)
        if dst is None or dst == src or dst not in self._healthy.node_set:
            return None
        return dst
