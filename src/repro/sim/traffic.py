"""Workload generation (paper Section 6.0).

The paper evaluates with uniformly distributed message destinations and
Bernoulli injection; deterministic communication patterns were used to
validate the simulator.  This module provides both, plus the standard
torus stress patterns used by the extended benchmarks:

* ``uniform``   — destination uniform over all (healthy) remote nodes;
* ``nearest``   — one-hop neighbor traffic (deterministic validation);
* ``transpose`` — coordinate-transpose permutation (n == 2);
* ``tornado``   — half-ring offset in dimension 0 (adversarial for
  minimal routing on tori);
* ``complement``— coordinate-complement permutation.

Generators draw destinations only; injection timing is a Bernoulli
process handled by the engine (one trial per node per cycle with
probability ``offered_load / message_length``, realized by geometric
gap sampling so idle cycles cost no draws — see
:mod:`repro.sim.engine`).
"""

from __future__ import annotations

import random
from typing import Callable, List, Optional

from repro.network.topology import KAryNCube

DestinationFn = Callable[[int], Optional[int]]


class TrafficGenerator:
    """Per-source destination selection for a named traffic pattern."""

    PATTERNS = ("uniform", "nearest", "transpose", "tornado", "complement")

    def __init__(self, pattern: str, topology: KAryNCube,
                 rng: random.Random, healthy_nodes: Optional[List[int]] = None):
        if pattern not in self.PATTERNS:
            raise ValueError(
                f"unknown traffic pattern {pattern!r}; "
                f"choose from {self.PATTERNS}"
            )
        self.pattern = pattern
        self.topology = topology
        self.rng = rng
        self._healthy = (
            list(healthy_nodes)
            if healthy_nodes is not None
            else list(range(topology.num_nodes))
        )
        self._healthy_set = set(self._healthy)
        self._healthy_pos = {
            node: i for i, node in enumerate(self._healthy)
        }

    def set_healthy_nodes(self, healthy_nodes: List[int]) -> None:
        """Restrict sources/destinations after fault placement."""
        self._healthy = list(healthy_nodes)
        self._healthy_set = set(self._healthy)
        self._healthy_pos = {
            node: i for i, node in enumerate(self._healthy)
        }

    @property
    def healthy_nodes(self) -> List[int]:
        return self._healthy

    # ------------------------------------------------------------------
    def destination(self, src: int) -> Optional[int]:
        """Destination for a new message from ``src``.

        Returns ``None`` when the pattern sends this source nowhere
        (e.g. a permutation partner that has failed) — the engine then
        skips the injection.
        """
        dst = self._raw_destination(src)
        if dst is None or dst == src or dst not in self._healthy_set:
            return None
        return dst

    def _raw_destination(self, src: int) -> Optional[int]:
        topo = self.topology
        if self.pattern == "uniform":
            # Uniform over healthy nodes excluding the source, sampled
            # directly: one ``randrange`` over the m-1 admissible
            # positions, shifting indexes at or past the source's slot
            # up by one.  Exactly one draw per destination — the old
            # rejection loop consumed a geometrically distributed
            # number of draws (see the determinism note in DESIGN.md §8
            # for the resulting RNG-stream change).
            healthy = self._healthy
            m = len(healthy)
            if m < 2:
                return None
            pos = self._healthy_pos.get(src)
            if pos is None:
                # Source not in the healthy set (direct calls from
                # tests/tools): nothing to exclude.
                return healthy[self.rng.randrange(m)]
            i = self.rng.randrange(m - 1)
            if i >= pos:
                i += 1
            return healthy[i]
        if self.pattern == "nearest":
            return topo.neighbor(src, 0, +1)
        if self.pattern == "transpose":
            coords = topo.coords(src)
            return topo.node_id(tuple(reversed(coords)))
        if self.pattern == "tornado":
            coords = list(topo.coords(src))
            coords[0] = (coords[0] + (topo.k - 1) // 2) % topo.k
            return topo.node_id(coords)
        if self.pattern == "complement":
            coords = [(topo.k - 1 - c) for c in topo.coords(src)]
            return topo.node_id(coords)
        raise AssertionError(f"unhandled pattern {self.pattern}")
