"""Messages, their pipeline state, and control flits.

A message is broken into flits (Section 2.1): one routing header plus
``length`` data flits (the last data flit acts as the tail).  Because a
data virtual channel carries at most one message at a time (wormhole
semantics), the simulator tracks data-flit *occupancy counts* per
reserved channel instead of materializing every data flit — this is
exact for timing and keeps pure-Python runs tractable.  Control flits
(headers in decoupled mode, positive/negative acknowledgments, path
acknowledgments, detour-resume tokens, kill flits, and tail
acknowledgments) are explicit :class:`ControlFlit` tokens, because they
compete for physical-channel bandwidth.

Path indexing convention used throughout the engine::

    routers:  R_0 (source) -- R_1 -- ... -- R_h
    links:    path[i] connects R_i -> R_(i+1)
    buffered[i] = data flits currently buffered at R_(i+1)
                  (the downstream end of path[i])
    acks_at[j] = net positive acknowledgments received at router R_j
    k_at[i]    = scouting distance programmed into path[i]'s VC
    held[i]    = path[i] reserved while the header was in detour mode
                 (data gate closed until a resume/path token clears it)
"""

from __future__ import annotations

import enum
from typing import List, Optional, Set, Tuple

from repro.core.header import Header
from repro.network.channel import VirtualChannel


class MessageStatus(enum.Enum):
    #: Waiting in the source's injection queue.
    QUEUED = 0
    #: Header launched; path setup and/or data transfer in progress.
    ACTIVE = 1
    #: All data flits consumed by the destination PE (and, in reliable
    #: mode, the tail acknowledgment received by the source).
    DELIVERED = 2
    #: Given up after exhausting retries, or destination unreachable.
    DROPPED = 3
    #: Interrupted by a dynamic fault and torn down without retransmit.
    KILLED = 4


class ControlKind(enum.Enum):
    """Kinds of control flits carried by the virtual control channels."""

    HEADER = "header"          # routing header moving forward
    HEADER_BACK = "header_bt"  # routing header backtracking one hop
    ACK_POS = "ack+"           # positive scouting acknowledgment
    ACK_NEG = "ack-"           # negative acknowledgment (after backtrack)
    PATH_ACK = "path_ack"      # header-reached-destination acknowledgment
    RESUME = "resume"          # detour complete: re-open data gates
    KILL_UP = "kill_up"        # teardown toward the source
    KILL_DOWN = "kill_down"    # teardown toward the destination
    TAIL_ACK = "tail_ack"      # reliable-delivery acknowledgment


class ControlFlit:
    """One control flit in flight on the multiplexed control channels.

    ``position`` is the router path-index the token is currently
    *heading to*; arrival processing happens when the token wins link
    arbitration and crosses.  ``ready_cycle`` enforces one hop per
    cycle.
    """

    __slots__ = ("kind", "message", "position", "ready_cycle")

    def __init__(self, kind: ControlKind, message: "Message", position: int,
                 ready_cycle: int):
        self.kind = kind
        self.message = message
        self.position = position
        self.ready_cycle = ready_cycle

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ControlFlit({self.kind.value}, msg={self.message.msg_id}, "
            f"pos={self.position})"
        )


class HeaderPhase(enum.Enum):
    """Where the routing header currently is."""

    #: At a router, awaiting a routing decision (RCU pending set).
    PENDING = 0
    #: In flight on a control channel (decoupled-header mode only).
    IN_FLIGHT = 1
    #: Consumed by the destination router.
    DELIVERED = 2
    #: Destroyed by a teardown / kill.
    GONE = 3


class TPMode(enum.Enum):
    """Two-Phase routing mode (Figure 6)."""

    DP = 0      # optimistic phase: Duato's Protocol restrictions
    DETOUR = 1  # conservative phase: unrestricted search with misroutes


class Message:
    """One message and all of its pipeline / routing state."""

    __slots__ = (
        "msg_id", "src", "dst", "length", "inline_header",
        "created_cycle", "injected_cycle", "delivered_cycle",
        "status", "drop_reason",
        "header", "header_phase", "header_router",
        "tp_mode", "needs_path_ack", "path_established",
        "path", "path_nodes", "k_at", "held", "released", "link_misroute",
        "acks_at", "tried", "arrival_dims",
        "buffered", "crossed", "at_source", "ejected", "killed_flits",
        "head_link", "tail_idx", "total_flits", "hop_cap",
        "detour_stack", "detour_count", "backtrack_count", "backtrack_lock",
        "misroute_total", "hops_taken", "retries", "retry_wait",
        "wait_cycles", "consecutive_waits", "original_id", "retransmits",
        "tail_acked", "teardown", "teardown_reason",
        "parked", "park_node", "park_ver", "park_epoch", "wake_at",
        "dm_quiet", "kern_row",
    )

    def __init__(self, msg_id: int, src: int, dst: int, length: int,
                 offsets: Tuple[int, ...], created_cycle: int,
                 inline_header: bool):
        self.msg_id = msg_id
        self.src = src
        self.dst = dst
        #: Number of data flits (the paper's L); the routing header is
        #: one additional flit.
        self.length = length
        #: True when the header travels in-band as the first flit on
        #: data channels (pure wormhole, e.g. the DP baseline); False
        #: when it travels on the control channels (PCS/SR/TP).
        self.inline_header = inline_header

        self.created_cycle = created_cycle
        self.injected_cycle: Optional[int] = None
        self.delivered_cycle: Optional[int] = None
        self.status = MessageStatus.QUEUED
        self.drop_reason: Optional[str] = None

        self.header = Header(offsets=list(offsets))
        self.header_phase = HeaderPhase.PENDING
        #: Path index of the router where the header is (or is heading).
        self.header_router = 0
        self.tp_mode = TPMode.DP
        self.needs_path_ack = False
        self.path_established = False

        # Reserved path and per-link / per-router state (see module
        # docstring for the indexing convention).
        self.path: List[VirtualChannel] = []
        self.path_nodes: List[int] = [src]
        self.k_at: List[int] = []
        self.held: List[bool] = []
        self.released: List[bool] = []
        #: Whether each path link was taken as a misroute (moved the
        #: header away from the destination); backtracking over such a
        #: link restores the misroute budget (Theorem 2).
        self.link_misroute: List[bool] = []
        self.acks_at: List[int] = [0]
        #: Output channels already searched from each visited router
        #: (the RCU history store, kept per message).
        self.tried: List[Set[int]] = [set()]
        #: (dim, direction) of the hop that *entered* each router on the
        #: path (None for the source); used by the Theorem 2 selection
        #: rule "misroute in the same dimension as the input channel".
        self.arrival_dims: List[Optional[Tuple[int, int]]] = [None]

        # Data pipeline occupancy.
        self.buffered: List[int] = []
        self.crossed: List[int] = []
        #: Flits that traverse data channels (header included if inline).
        self.total_flits = length + (1 if inline_header else 0)
        #: Flits not yet injected; the in-band header counts as a flit.
        self.at_source = self.total_flits
        self.ejected = 0
        self.killed_flits = 0
        #: Highest path-link index the first data flit has crossed.
        self.head_link = -1
        #: Lowest path-link index holding buffered flits (scan start).
        self.tail_idx = 0

        # Routing statistics / protocol scratch state.
        self.detour_stack: List[Tuple[int, int]] = []
        self.detour_count = 0
        self.backtrack_count = 0
        #: Path-link index the header is currently backtracking over
        #: (-1 when none).  The data gate of this link stays closed no
        #: matter what acknowledgments arrive, so the first data flit
        #: can never race onto a link being released.
        self.backtrack_lock = -1
        self.misroute_total = 0
        self.hops_taken = 0
        #: Livelock hop budget (engine-assigned; depends on src-dst
        #: distance and the config's cap parameters, both constant for
        #: the message's lifetime).
        self.hop_cap = 0
        self.retries = 0
        #: Cycle until which a retry is deferred (simple backoff).
        self.retry_wait = 0
        self.wait_cycles = 0
        #: Consecutive cycles the header has been blocked; reset on any
        #: forward/backward progress.  Feeds the recovery escape hatch.
        self.consecutive_waits = 0
        #: For retransmitted copies: id of the original message.
        self.original_id = msg_id
        self.retransmits = 0
        self.tail_acked = False
        #: Path teardown in progress (kill flits traveling): data
        #: movement is frozen until the kill reaches the source.
        self.teardown = False
        #: Why the teardown started: "fault" (dynamic failure hit the
        #: path) or "abort" (routing gave up) — decides whether the
        #: source retransmits, retries, or drops.
        self.teardown_reason: Optional[str] = None

        # Event-engine scheduling state (engine-owned; see DESIGN.md
        # §11).  A *parked* header skips its routing decision until one
        # of its wake conditions can change the outcome: a virtual
        # channel released at its router (``park_ver`` falls behind the
        # node's release version), a fault-epoch change, or the timed
        # retry cycle ``wake_at``.  ``dm_quiet`` marks a message whose
        # data pipeline cannot move until a state-change notification
        # (acknowledgment, header arrival, path extension) clears it.
        self.parked = False
        self.park_node = 0
        self.park_ver = 0
        self.park_epoch = 0
        self.wake_at = 0
        self.dm_quiet = False
        #: Row index in the SoA flit-transport kernel's arrays while the
        #: message is ACTIVE and attached (-1 otherwise); while attached
        #: the kernel's buffers — not ``buffered``/``crossed`` — hold
        #: the live occupancy (see repro.sim.kernel.DataKernel).
        self.kern_row = -1

    # ------------------------------------------------------------------
    # Derived views
    # ------------------------------------------------------------------
    @property
    def head_router(self) -> int:
        """Path index of the router holding the first data flit."""
        return self.head_link + 1

    @property
    def injected_flits(self) -> int:
        return self.total_flits - self.at_source

    def current_node(self) -> int:
        """Network node id where the header currently is."""
        return self.path_nodes[self.header_router]

    def is_terminal(self) -> bool:
        return self.status in (
            MessageStatus.DELIVERED,
            MessageStatus.DROPPED,
            MessageStatus.KILLED,
        )

    def flit_conservation_ok(self) -> bool:
        """Invariant: every injected flit is buffered, ejected, or killed."""
        return self.injected_flits == (
            sum(self.buffered) + self.ejected + self.killed_flits
        )

    # ------------------------------------------------------------------
    # Path mutation (used by the engine)
    # ------------------------------------------------------------------
    def extend_path(self, vc: VirtualChannel, next_node: int, k: int,
                    hold: bool, dim: int, direction: int,
                    is_misroute: bool = False) -> None:
        """Record a newly reserved virtual channel at the header's end."""
        self.path.append(vc)
        self.path_nodes.append(next_node)
        self.k_at.append(k)
        self.held.append(hold)
        self.released.append(False)
        self.link_misroute.append(is_misroute)
        self.buffered.append(0)
        self.crossed.append(0)
        self.acks_at.append(0)
        self.tried.append(set())
        self.arrival_dims.append((dim, direction))

    def pop_path(self) -> VirtualChannel:
        """Drop the last path link (header backtracked over it)."""
        vc = self.path.pop()
        self.path_nodes.pop()
        self.k_at.pop()
        self.held.pop()
        self.released.pop()
        self.link_misroute.pop()
        if self.buffered.pop() != 0:
            raise RuntimeError(
                f"message {self.msg_id}: backtracked over a link holding "
                "data flits"
            )
        self.crossed.pop()
        self.acks_at.pop()
        self.tried.pop()
        self.arrival_dims.pop()
        return vc

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Message({self.msg_id}, {self.src}->{self.dst}, "
            f"status={self.status.name}, hdr@{self.header_router}, "
            f"links={len(self.path)})"
        )
