"""Parallel replication campaigns over a multiprocessing pool.

The paper's repeat-until-confident protocol and the figure drivers'
(protocol, load, fault) sweeps are embarrassingly parallel: every
replication is an independent simulation fully determined by its
:class:`~repro.sim.config.SimulationConfig` (the engine seeds all
randomness from ``config.seed``).  This module fans those simulations
out across worker processes while keeping the results bit-identical to
a serial campaign:

* workers receive a picklable ``SimulationConfig`` and return a
  picklable :class:`~repro.sim.stats.RunResult`;
* results are collected **in submission order** (``Pool.map`` with
  ``chunksize=1``), never in completion order;
* :func:`replicate_parallel` runs all ``max_runs`` candidate seeds
  speculatively, then *truncates* the ordered result list with the same
  stopping rule the serial loop applies incrementally
  (:func:`~repro.sim.stats.replications_converged`), so the surviving
  run list — and therefore the aggregated
  :class:`~repro.sim.stats.ReplicatedResult` — matches the serial
  campaign exactly.  The only difference is that converged points burn
  a few extra speculative replications, which is the price of running
  them concurrently.

Worker count resolution (:func:`resolve_jobs`): an explicit ``jobs``
argument (the CLI ``--jobs`` flag) wins, else the ``REPRO_JOBS``
environment variable, else serial (1).  ``jobs=1`` bypasses the pool
entirely so the serial code path stays the default.
"""

from __future__ import annotations

import os
from multiprocessing import Pool
from typing import Callable, List, Optional, Sequence

from repro.sim.config import SimulationConfig
from repro.sim.stats import (
    ReplicatedResult,
    RunResult,
    aggregate_replications,
    replications_converged,
)


def resolve_jobs(jobs: Optional[int] = None) -> int:
    """Worker-count resolution: explicit arg > ``REPRO_JOBS`` env > 1.

    Raises ``ValueError`` for non-positive or unparsable requests — a
    typo'd ``REPRO_JOBS`` should fail loudly, not silently serialize.
    """
    if jobs is None:
        env = os.environ.get("REPRO_JOBS", "").strip()
        if not env:
            return 1
        try:
            jobs = int(env)
        except ValueError:
            raise ValueError(
                f"REPRO_JOBS must be a positive integer, got {env!r}"
            ) from None
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    return jobs


def run_one_config(config: SimulationConfig) -> RunResult:
    """Worker entry point: one full simulation from a picklable config.

    Top-level (picklable by reference) so it works with every
    multiprocessing start method, not just fork.
    """
    # Imported here so pool workers pay the import once per process,
    # and to avoid a circular import (simulator -> stats -> parallel).
    from repro.sim.simulator import NetworkSimulator

    return NetworkSimulator(config).run()


def run_configs(
    configs: Sequence[SimulationConfig],
    jobs: Optional[int] = None,
) -> List[RunResult]:
    """Run simulations for ``configs``, preserving input order.

    With ``jobs <= 1`` (or a single config) this is a plain serial
    loop; otherwise the configs are mapped over a process pool with
    ``chunksize=1`` so long runs interleave across workers while the
    result list still lines up index-for-index with the input.
    """
    configs = list(configs)
    jobs = resolve_jobs(jobs)
    if jobs <= 1 or len(configs) <= 1:
        return [run_one_config(cfg) for cfg in configs]
    with Pool(processes=min(jobs, len(configs))) as pool:
        return pool.map(run_one_config, configs, chunksize=1)


def replicate_parallel(
    make_config: Callable[[int], SimulationConfig],
    min_runs: int = 2,
    max_runs: int = 8,
    target_relative_ci: float = 0.05,
    base_seed: int = 1,
    jobs: Optional[int] = None,
) -> ReplicatedResult:
    """Parallel ``repeat_until_confident`` with serial-identical output.

    ``make_config(seed)`` builds the replication config for one seed
    (called in this process; only the finished configs cross the
    process boundary).  All ``max_runs`` seeds run speculatively, then
    the ordered results are truncated at the first prefix length
    ``n >= min_runs`` satisfying the CI stopping rule — exactly the
    prefix the serial loop would have produced — before aggregation.
    """
    if min_runs < 1 or max_runs < min_runs:
        raise ValueError("need 1 <= min_runs <= max_runs")
    configs = [make_config(base_seed + i) for i in range(max_runs)]
    results = run_configs(configs, jobs=jobs)
    keep = max_runs
    for n in range(min_runs, max_runs + 1):
        if replications_converged(results[:n], target_relative_ci):
            keep = n
            break
    return aggregate_replications(results[:keep], target_relative_ci)
