"""Simulation configuration (the paper's Section 6.0 parameters).

The defaults mirror the paper's evaluation setup where practical: a
torus (16-ary 2-cube in the paper), 32-flit messages with a one-flit
routing header, uniformly distributed destinations, and congestion
control limiting each injection channel to eight buffered messages.
The benchmark harness scales the radix and run length down by default
so the full figure suite regenerates in laptop wall-clock time, and
restores the paper-scale parameters under ``REPRO_PAPER_SCALE=1``.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field, replace
from typing import Any, Dict, Optional


def _default_data_kernel() -> bool:
    """Default for :attr:`SimulationConfig.data_kernel`.

    ``REPRO_DATA_KERNEL=0`` flips the fleet default to the object-walk
    data phase — CI uses it as a test-matrix dimension so the whole
    suite runs against both implementations.  Configs that set the
    field explicitly are unaffected.
    """
    return os.environ.get("REPRO_DATA_KERNEL", "1") != "0"


@dataclass
class FaultConfig:
    """Static and dynamic fault injection for one run."""

    #: Static node faults placed randomly before the run.
    static_node_faults: int = 0
    #: Reject placements that disconnect the healthy network.
    keep_connected: bool = True
    #: Dynamic faults injected at random cycles during measurement.
    dynamic_faults: int = 0
    #: Dynamic fault kind: "link" (Figure 16's scenario) or "node".
    dynamic_kind: str = "link"
    #: Cycle window [start, stop) in which dynamic faults may strike;
    #: ``None`` stop defaults to the full run length.
    dynamic_start: int = 0
    dynamic_stop: Optional[int] = None


@dataclass
class RecoveryConfig:
    """Distributed recovery and reliable-delivery options (Section 2.4)."""

    #: Hold every path until the tail reaches the destination, then tear
    #: it down with a destination-to-source tail acknowledgment
    #: ("with TAck" in Figure 17).
    tail_ack: bool = False
    #: Retransmit messages interrupted by dynamic faults (only
    #: meaningful with ``tail_ack``, which keeps the source copy).
    retransmit: bool = False
    #: Maximum retransmissions per original message.
    max_retransmits: int = 2
    #: Source-level retries after a failed path construction (the
    #: "re-try from the source" of Section 4.0).
    max_source_retries: int = 2


@dataclass
class ResilienceConfig:
    """Deadlock diagnosis/recovery and runtime auditing knobs.

    On watchdog expiry the engine builds the message wait-for graph
    (:mod:`repro.sim.postmortem`), then — unless ``deadlock_strict`` —
    ejects a victim message through the kill-flit teardown path so the
    network resumes.  The invariant auditor
    (:mod:`repro.sim.invariants`) cross-checks flit conservation, VC
    state legality, buffer bounds, and reservation ownership every
    ``audit_every`` cycles when enabled.
    """

    #: Raise :class:`~repro.sim.engine.DeadlockError` (with the rendered
    #: wait-for diagnosis) on watchdog expiry instead of recovering.
    deadlock_strict: bool = False
    #: Safety valve: give up (raise) after this many victim ejections
    #: in one run — a network needing more is systemically wedged.
    max_deadlock_recoveries: int = 256
    #: Per-original-message cap on deadlock-recovery ejections: a
    #: message (counted across its retry clones) ejected this many
    #: times is no longer an eligible victim, and when *only* capped
    #: candidates remain the run fails hard instead of livelocking
    #: recovery on the same pathological cycle.  The natural retry
    #: budget (``RecoveryConfig.max_source_retries``) bounds ejections
    #: per origin well below the default, so default behavior is
    #: unchanged.
    max_victim_ejections: int = 16
    #: Run the runtime invariant auditor during :meth:`Engine.step`.
    audit_invariants: bool = False
    #: Audit every N cycles (1 = every cycle; audits are O(network)).
    audit_every: int = 64

    # ------------------------------------------------------------------
    # Online dynamic reconfiguration (repro.reconfig, DESIGN.md §10).
    # ------------------------------------------------------------------
    #: Arm the :class:`~repro.reconfig.ReconfigController`: when faults
    #: accumulate and recovery pressure crosses the threshold, the
    #: network is drained and a new routing-restriction epoch committed.
    reconfig: bool = False
    #: Controller monitor tick period (cycles); also its declared
    #: fast-forward event horizon.
    reconfig_check_every: int = 64
    #: Sliding window (cycles) over which recovery pressure is summed.
    reconfig_window: int = 512
    #: Pressure score (weighted recovery-event deltas) that triggers a
    #: reconfiguration once the fault epoch has moved.
    reconfig_threshold: int = 4
    #: Max cycles to wait for in-flight messages to finish during the
    #: drain phase before stragglers are forcibly ejected.
    reconfig_drain_timeout: int = 400
    #: Cycles after a commit before the controller may trigger again.
    reconfig_cooldown: int = 1024
    #: Unsafe-ball radius committed at reconfiguration (the lever that
    #: switches TP to its conservative phase earlier around pockets).
    reconfig_unsafe_radius: int = 2
    #: Restrict inbound channels of near-dead-end pockets (iterative
    #: pruning, see :func:`repro.reconfig.restrictions.compute_plan`).
    reconfig_prune_dead_ends: bool = True

    def __post_init__(self) -> None:
        if self.audit_every < 1:
            raise ValueError("audit_every must be >= 1")
        if self.max_deadlock_recoveries < 0:
            raise ValueError("max_deadlock_recoveries must be >= 0")
        if self.max_victim_ejections < 1:
            raise ValueError("max_victim_ejections must be >= 1")
        if self.reconfig_check_every < 1:
            raise ValueError("reconfig_check_every must be >= 1")
        if self.reconfig_window < self.reconfig_check_every:
            raise ValueError(
                "reconfig_window must be >= reconfig_check_every"
            )
        if self.reconfig_threshold < 1:
            raise ValueError("reconfig_threshold must be >= 1")
        if self.reconfig_drain_timeout < 1:
            raise ValueError("reconfig_drain_timeout must be >= 1")
        if self.reconfig_cooldown < 0:
            raise ValueError("reconfig_cooldown must be >= 0")
        if self.reconfig_unsafe_radius < 1:
            raise ValueError("reconfig_unsafe_radius must be >= 1")


@dataclass
class SimulationConfig:
    """Everything needed to build and run one simulation."""

    # Topology (paper: 16-ary 2-cube).
    k: int = 8
    n: int = 2

    # Router resources.
    num_adaptive_vcs: int = 1
    buffer_depth: int = 2
    #: Implement positive/negative acknowledgment flits as dedicated
    #: control signals on the physical channel instead of multiplexed
    #: control-channel flits (the paper's Section 7.0 future-work
    #: proposal: "adding a few control signals to the physical channel,
    #: modifying the physical flow control accordingly (the logical
    #: behavior remains unchanged)").  Acknowledgments then stop
    #: competing with headers and data for link bandwidth.
    hardware_acks: bool = False

    # Workload (paper: 32-flit messages, 1-flit header, uniform).
    message_length: int = 32
    #: Destination-pattern name — see :mod:`repro.sim.traffic` and the
    #: workload catalog in EXPERIMENTS.md: "uniform", "hotspot",
    #: "transpose", "complement", "tornado", "nearest", "bursty".
    traffic: str = "uniform"
    #: Pattern knobs (DESIGN.md §9): ``hotspot_fraction`` /
    #: ``hotspot_count`` / ``hotspot_nodes`` for hotspot traffic;
    #: ``burst_on`` / ``burst_off`` / ``burst_off_load`` switch any
    #: pattern to on-off (MMBP) injection timing.
    traffic_params: Dict[str, Any] = field(default_factory=dict)
    #: Offered load in data flits per node per cycle (time-averaged —
    #: bursty injection concentrates it into ON windows).
    offered_load: float = 0.1
    injection_queue_limit: int = 8

    # Protocol selection: "dp", "mb", "tp", or "det" (the validation
    # dimension-order protocol), with constructor kwargs.
    protocol: str = "tp"
    protocol_params: Dict[str, Any] = field(default_factory=dict)

    # Run control.
    warmup_cycles: int = 1000
    measure_cycles: int = 4000
    #: Event-horizon fast-forward: when the network is quiescent
    #: (nothing in flight anywhere), jump the clock to just before the
    #: next cycle at which state can change — the next possible
    #: injection, armed dynamic fault, invariant-audit tick, or hook
    #: event.  Results are cycle-for-cycle and RNG-stream identical to
    #: the cycle-by-cycle path (pinned by tests/sim/test_determinism.py);
    #: disable only when instrumenting every cycle with a hook that does
    #: not declare its next event (see DESIGN.md §8).
    fast_forward: bool = True
    #: Event-driven engine core (DESIGN.md §11): per-cycle work is
    #: proportional to *events* — headers that can decide, flits that
    #: can move, injection queues with something to launch — instead of
    #: scanning every live message and busy queue each cycle.  Blocked
    #: routing headers park until a wake condition (a virtual-channel
    #: release at their router, a fault-epoch change, or their timed
    #: retry) can change the decision; messages whose data pipeline
    #: cannot move stay skipped until a state-change notification
    #: re-arms them.  Results are cycle-for-cycle identical to the
    #: brute-force scans (pinned by tests/sim/test_determinism.py across
    #: the on/off matrix); the switch exists as the equivalence oracle.
    event_engine: bool = True
    #: Struct-of-arrays flit-transport kernel (DESIGN.md §12): the data
    #: movement + ejection phase runs over flat preallocated buffers —
    #: a vectorized (numpy) predicate pass computes the move/eject
    #: candidate mask for every non-quiet message at once, and a
    #: compact ordered applier commits moves, credits, and ejections in
    #: exactly the order the object walk uses.  Results are
    #: cycle-for-cycle identical to the object walk (pinned by
    #: tests/sim/test_determinism.py across the full
    #: data_kernel × event_engine × fast_forward matrix); the switch
    #: exists as the equivalence oracle.  Silently ignored when numpy
    #: is not installed.  The default honors ``REPRO_DATA_KERNEL=0``
    #: (CI's matrix dimension); explicit settings always win.
    data_kernel: bool = field(default_factory=_default_data_kernel)
    #: After measurement, keep cycling (no new traffic) until in-flight
    #: messages finish, up to this many extra cycles.
    drain_cycles: int = 4000
    seed: int = 1

    # Safety valves.
    #: A header that exceeds ``hop_cap_base + hop_cap_factor * distance``
    #: hops is declared livelocked and aborted to recovery.
    hop_cap_base: int = 64
    hop_cap_factor: int = 8
    #: Cycles without any network activity before declaring deadlock.
    watchdog_cycles: int = 2000
    #: A header blocked (WAIT) this many consecutive cycles is handed
    #: to the recovery mechanism (path torn down, retried from the
    #: source) — the paper's escape hatch for blocked/deadlocked
    #: configurations.  Far above any legitimate congestion wait.
    max_header_wait: int = 1200

    faults: FaultConfig = field(default_factory=FaultConfig)
    recovery: RecoveryConfig = field(default_factory=RecoveryConfig)
    resilience: ResilienceConfig = field(default_factory=ResilienceConfig)

    def __post_init__(self) -> None:
        if self.message_length < 1:
            raise ValueError("message_length must be >= 1")
        if not 0.0 <= self.offered_load <= 1.0:
            raise ValueError("offered_load must be in [0, 1] flits/node/cycle")
        if self.injection_queue_limit < 1:
            raise ValueError("injection_queue_limit must be >= 1")
        if self.buffer_depth < 1:
            raise ValueError("buffer_depth must be >= 1")

    @property
    def total_cycles(self) -> int:
        return self.warmup_cycles + self.measure_cycles

    def with_(self, **overrides) -> "SimulationConfig":
        """A copy with the given fields replaced (sweep helper)."""
        return replace(self, **overrides)


def paper_scale(config: SimulationConfig) -> SimulationConfig:
    """Rescale a config to the paper's full 16-ary 2-cube setup."""
    return config.with_(
        k=16,
        warmup_cycles=2000,
        measure_cycles=10_000,
        drain_cycles=10_000,
    )
