"""Latency / throughput statistics (paper Section 6.0).

The paper reports average message latency (clock cycles) against
normalized accepted throughput (flits/cycle/node), running simulations
"repeatedly until the 95% confidence intervals for the sample means
were acceptable (less than 5% of the mean values)".  This module
provides:

* :class:`MessageRecord` — one finished message (the engine's output);
* :func:`summarize` — per-run aggregates over a measurement window;
* :func:`mean_confidence_interval` — Student-t 95% interval;
* :func:`repeat_until_confident` — the paper's repeat-replications
  protocol: independent seeds until the latency CI is tight enough.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence

#: Two-sided 95% Student-t critical values by degrees of freedom (1-30);
#: falls back to the normal 1.96 beyond the table.
_T_TABLE = [
    12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228,
    2.201, 2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086,
    2.080, 2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045, 2.042,
]


def t_critical_95(dof: int) -> float:
    """Two-sided 95% Student-t critical value."""
    if dof < 1:
        raise ValueError("need at least one degree of freedom")
    if dof <= len(_T_TABLE):
        return _T_TABLE[dof - 1]
    return 1.96


def mean_confidence_interval(samples: Sequence[float]) -> tuple:
    """``(mean, half_width)`` of the 95% CI for the sample mean."""
    n = len(samples)
    if n == 0:
        return (float("nan"), float("nan"))
    mean = sum(samples) / n
    if n == 1:
        return (mean, float("inf"))
    var = sum((x - mean) ** 2 for x in samples) / (n - 1)
    half = t_critical_95(n - 1) * math.sqrt(var / n)
    return (mean, half)


@dataclass(frozen=True)
class MessageRecord:
    """Terminal state of one message, as logged by the engine."""

    msg_id: int
    src: int
    dst: int
    status: str  # MessageStatus name
    created: int
    injected: Optional[int]
    delivered: Optional[int]
    distance: int
    hops: int
    misroutes: int
    backtracks: int
    detours: int
    retransmits: int
    #: True when a retry/retransmission clone superseded this record
    #: (excluded from loss statistics; the clone carries the outcome).
    superseded: bool

    @property
    def latency(self) -> Optional[int]:
        if self.delivered is None:
            return None
        return self.delivered - self.created


@dataclass
class RunResult:
    """Aggregates of one simulation run's measurement window."""

    cycles: int
    num_nodes: int
    latency_mean: float
    latency_ci95: float
    latency_count: int
    #: Accepted (delivered) throughput, data flits per node per cycle.
    throughput: float
    offered_load: float
    accepted_load: float
    delivered: int
    dropped: int
    killed: int
    retransmissions: int
    source_retries: int
    mean_hops: float
    mean_misroutes: float
    mean_backtracks: float
    total_detours: int
    control_flits: int
    drop_reasons: dict = field(default_factory=dict)
    latencies: List[int] = field(default_factory=list)
    #: Watchdog expiries resolved by deadlock-recovery victim ejection.
    deadlock_recoveries: int = 0
    #: Message ids ejected by deadlock recovery, in ejection order.
    deadlock_victims: List[int] = field(default_factory=list)
    #: Path teardowns by reason ("fault" / "abort" / "deadlock" /
    #: "reconfig").
    teardown_counts: dict = field(default_factory=dict)
    #: Victim selections where the per-origin re-ejection cap
    #: (``resilience.max_victim_ejections``) excluded a candidate.
    victim_cap_hits: int = 0
    #: Online reconfigurations committed (repro.reconfig) and their
    #: cumulative drain downtime in cycles.
    reconfigurations: int = 0
    reconfig_downtime: int = 0
    #: Message ids forcibly ejected at reconfiguration drain timeouts.
    reconfig_victims: List[int] = field(default_factory=list)
    #: Invariant audits run during the simulation (0 = auditor off).
    invariant_checks: int = 0
    #: Whether the network fully drained (no active messages, empty
    #: injection queues) before summarizing.  An undrained run holds
    #: truncated latency samples — in-flight messages never produced a
    #: record — and its figures must be treated with suspicion.
    drained: bool = True

    @property
    def delivery_ratio(self) -> float:
        total = self.delivered + self.dropped + self.killed
        return self.delivered / total if total else float("nan")


def summarize(engine, warmup: int) -> RunResult:
    """Build a :class:`RunResult` from a finished engine.

    Latency statistics cover delivered, non-superseded messages created
    after the warmup; throughput/offered/accepted use the engine's
    measurement-window flit counters.
    """
    records = [r for r in engine.records if not r.superseded]
    delivered = [
        r for r in records
        if r.status == "DELIVERED" and r.created >= warmup
    ]
    latencies = [r.latency for r in delivered if r.latency is not None]
    mean, half = mean_confidence_interval(latencies)

    measure_cycles = engine.measure_window_cycles()
    if measure_cycles <= 0:
        raise ValueError(
            "zero-length measurement window: the engine never ran past "
            f"its warmup (cycle {engine.cycle}); throughput cannot be "
            "normalized — run the simulation before summarizing"
        )
    nodes = engine.topology.num_nodes
    norm = measure_cycles * nodes
    dropped = sum(
        1 for r in records if r.status == "DROPPED" and r.created >= warmup
    )
    killed = sum(
        1 for r in records if r.status == "KILLED" and r.created >= warmup
    )

    def _mean(values: List[float]) -> float:
        return sum(values) / len(values) if values else float("nan")

    return RunResult(
        cycles=engine.cycle,
        num_nodes=nodes,
        latency_mean=mean,
        latency_ci95=half,
        latency_count=len(latencies),
        throughput=engine.measured_delivered_flits / norm,
        offered_load=engine.measured_offered_flits / norm,
        accepted_load=engine.measured_accepted_flits / norm,
        delivered=len(delivered),
        dropped=dropped,
        killed=killed,
        retransmissions=engine.retransmissions,
        source_retries=engine.source_retries,
        mean_hops=_mean([r.hops for r in delivered]),
        mean_misroutes=_mean([r.misroutes for r in delivered]),
        mean_backtracks=_mean([r.backtracks for r in delivered]),
        total_detours=sum(r.detours for r in records),
        control_flits=engine.control_flits_sent,
        drop_reasons=dict(engine.drop_reasons),
        latencies=latencies,
        deadlock_recoveries=engine.deadlock_recoveries,
        deadlock_victims=list(engine.deadlock_victims),
        teardown_counts=dict(engine.teardown_counts),
        victim_cap_hits=engine.victim_cap_hits,
        reconfigurations=engine.reconfigurations,
        reconfig_downtime=engine.reconfig_downtime_cycles,
        reconfig_victims=list(engine.reconfig_victims),
        invariant_checks=(
            engine.auditor.checks_run if engine.auditor is not None else 0
        ),
        drained=not engine.active and not any(engine.queues),
    )


@dataclass
class ReplicatedResult:
    """Aggregate of several independent replications of one run."""

    runs: List[RunResult]
    latency_mean: float
    latency_ci95: float
    throughput_mean: float
    throughput_ci95: float
    #: Whether the CI stopping rule was actually satisfied.  A single
    #: replication can never certify its interval (the n=1 CI half
    #: width is infinite), so campaigns with ``max_runs == 1`` are
    #: always unconverged and say so instead of hiding behind
    #: ``relative_ci == inf``.
    converged: bool = True

    @property
    def relative_ci(self) -> float:
        if not self.latency_mean or math.isnan(self.latency_mean):
            return float("inf")
        return self.latency_ci95 / self.latency_mean

    @property
    def delivered(self) -> int:
        return sum(r.delivered for r in self.runs)

    @property
    def dropped(self) -> int:
        return sum(r.dropped for r in self.runs)

    @property
    def killed(self) -> int:
        return sum(r.killed for r in self.runs)

    @property
    def undrained_runs(self) -> int:
        """Replications whose network never fully drained."""
        return sum(1 for r in self.runs if not r.drained)


def replications_converged(
    runs: Sequence[RunResult], target_relative_ci: float
) -> bool:
    """The campaign stopping rule, shared by serial and parallel paths.

    True when the 95% CI of the replication latency means is within
    ``target_relative_ci`` of the mean.  Fewer than two non-NaN means
    can never converge: the n=1 interval is infinite (so this also
    encodes "never stop at n=1" explicitly rather than by accident of
    ``inf`` comparisons).
    """
    lat_means = [
        r.latency_mean for r in runs if not math.isnan(r.latency_mean)
    ]
    if len(lat_means) < 2:
        return False
    mean, half = mean_confidence_interval(lat_means)
    return mean > 0 and half / mean <= target_relative_ci


def aggregate_replications(
    runs: Sequence[RunResult], target_relative_ci: float = 0.05
) -> ReplicatedResult:
    """Fold replication runs into a :class:`ReplicatedResult`.

    Pure function of the (ordered) run list, so a parallel campaign
    that reproduces the serial run list reproduces the aggregate
    exactly.
    """
    runs = list(runs)
    lat_means = [
        r.latency_mean for r in runs if not math.isnan(r.latency_mean)
    ]
    tput_means = [r.throughput for r in runs]
    lat_mean, lat_half = mean_confidence_interval(lat_means)
    tput_mean, tput_half = mean_confidence_interval(tput_means)
    return ReplicatedResult(
        runs=runs,
        latency_mean=lat_mean,
        latency_ci95=lat_half,
        throughput_mean=tput_mean,
        throughput_ci95=tput_half,
        converged=replications_converged(runs, target_relative_ci),
    )


def repeat_until_confident(
    run_one: Callable[[int], RunResult],
    min_runs: int = 2,
    max_runs: int = 8,
    target_relative_ci: float = 0.05,
    base_seed: int = 1,
) -> ReplicatedResult:
    """The paper's protocol: replicate until the 95% CI is < 5% of mean.

    ``run_one(seed)`` performs one independent simulation.  Replication
    means (not pooled samples) feed the interval, as in classic
    independent-replications output analysis [Ferrari 78].  The result
    carries ``converged=False`` when the rule was never satisfied
    within ``max_runs`` — in particular a single replication is always
    unconverged, since its confidence interval is unbounded.
    """
    if min_runs < 1 or max_runs < min_runs:
        raise ValueError("need 1 <= min_runs <= max_runs")
    runs: List[RunResult] = []
    for i in range(max_runs):
        runs.append(run_one(base_seed + i))
        if len(runs) < min_runs:
            continue
        if replications_converged(runs, target_relative_ci):
            break
    return aggregate_replications(runs, target_relative_ci)
