"""Time-space diagrams of message progress (paper Figure 1).

The paper introduces the flow-control mechanisms with time-space
diagrams: time on one axis, the links of the path on the other, showing
the routing header advancing, acknowledgments flowing backward, and the
data pipeline following.  :class:`MessageTracer` samples one message's
state every cycle and renders exactly that picture as ASCII, which
makes flow-control behaviour — the growing ``2K - 1`` scouting gap, the
PCS setup round-trip, detour stalls — directly visible:

>>> tracer = MessageTracer(engine, msg)     # doctest: +SKIP
>>> tracer.run(100)                         # doctest: +SKIP
>>> print(tracer.render())                  # doctest: +SKIP

Legend: ``H`` header position, ``B`` backtracking header, ``#`` data
flits buffered at a router, ``<`` acknowledgment in flight, ``>`` kill
flit, ``*`` destination delivery.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.sim.engine import Engine
from repro.sim.message import ControlKind, HeaderPhase, Message

#: Control-token kinds drawn as backward-flowing acknowledgments.
_ACK_KINDS = (
    ControlKind.ACK_POS,
    ControlKind.ACK_NEG,
    ControlKind.PATH_ACK,
    ControlKind.RESUME,
    ControlKind.TAIL_ACK,
)
_KILL_KINDS = (ControlKind.KILL_UP, ControlKind.KILL_DOWN)


@dataclass
class TraceSample:
    """One cycle's snapshot of a traced message."""

    cycle: int
    header_router: Optional[int]
    backtracking: bool
    data_at: Dict[int, int] = field(default_factory=dict)
    at_source: int = 0
    ejected: int = 0
    ack_positions: List[int] = field(default_factory=list)
    kill_positions: List[int] = field(default_factory=list)
    path_len: int = 0
    status: str = "ACTIVE"


class MessageTracer:
    """Samples one message each cycle and renders a time-space diagram."""

    def __init__(self, engine: Engine, message: Message):
        self.engine = engine
        self.message = message
        self.samples: List[TraceSample] = []

    # ------------------------------------------------------------------
    def sample(self) -> TraceSample:
        """Record the message's current state."""
        # With the SoA kernel on, occupancy lives in its flat buffers
        # between cycles; make the object lists current first.
        self.engine.sync_data_state()
        msg = self.message
        header_router: Optional[int] = msg.header_router
        backtracking = msg.header.backtrack
        if msg.header_phase in (HeaderPhase.GONE,):
            header_router = None
        data_at = {
            i + 1: count
            for i, count in enumerate(msg.buffered)
            if count > 0
        }
        acks: List[int] = []
        kills: List[int] = []
        for queue in self.engine.control_out:
            for token in list(queue._queue):
                if token.message is not msg:
                    continue
                if token.kind in _ACK_KINDS:
                    acks.append(token.position)
                elif token.kind in _KILL_KINDS:
                    kills.append(token.position)
                elif token.kind is ControlKind.HEADER_BACK:
                    backtracking = True
        snapshot = TraceSample(
            cycle=self.engine.cycle,
            header_router=header_router,
            backtracking=backtracking,
            data_at=data_at,
            at_source=msg.at_source,
            ejected=msg.ejected,
            ack_positions=acks,
            kill_positions=kills,
            path_len=len(msg.path),
            status=msg.status.name,
        )
        self.samples.append(snapshot)
        return snapshot

    def run(self, max_cycles: int, until_terminal: bool = True) -> None:
        """Step the engine, sampling after every cycle."""
        for _ in range(max_cycles):
            self.engine.step()
            self.sample()
            if until_terminal and self.message.is_terminal():
                break

    # ------------------------------------------------------------------
    def render(self, max_width: int = 40) -> str:
        """ASCII time-space diagram (time down, routers across)."""
        if not self.samples:
            return "(no samples)"
        width = min(
            max(max(s.path_len for s in self.samples) + 1, 2), max_width
        )
        lines = [self._header_line(width)]
        for s in self.samples:
            lines.append(self._row(s, width))
        lines.append(
            "legend: H header  B backtracking header  # data  "
            "< ack  > kill  * delivered flit"
        )
        return "\n".join(lines)

    @staticmethod
    def _header_line(width: int) -> str:
        cells = "".join(f"R{i:<3}" for i in range(width))
        return f"{'cycle':>6}  {cells}"

    def _row(self, s: TraceSample, width: int) -> str:
        cells = [" .  "] * width
        for pos, count in s.data_at.items():
            if pos < width:
                cells[pos] = f" {'#' * min(count, 2):<3}"
        if s.at_source > 0:
            cells[0] = f" {'#' * min(s.at_source, 2):<3}"
        for pos in s.ack_positions:
            if 0 <= pos < width:
                cells[pos] = " <  "
        for pos in s.kill_positions:
            if 0 <= pos < width:
                cells[pos] = " >  "
        if s.header_router is not None and s.header_router < width:
            mark = "B" if s.backtracking else "H"
            cells[s.header_router] = f" {mark}  "
        if s.ejected and s.path_len < width:
            cells[s.path_len] = f" *{min(s.ejected, 9)} "
        return f"{s.cycle:>6}  {''.join(cells)}"


def trace_single_message(protocol: str, src: int, dst: int,
                         length: int = 8, k: int = 8, n: int = 2,
                         protocol_params: Optional[dict] = None,
                         max_cycles: int = 500) -> MessageTracer:
    """Convenience: trace one message on an idle network."""
    import random

    from repro.sim.config import SimulationConfig
    from repro.sim.simulator import make_protocol

    cfg = SimulationConfig(
        k=k, n=n, protocol=protocol, offered_load=0.0,
        message_length=length, warmup_cycles=0, measure_cycles=0,
    )
    engine = Engine(
        cfg, make_protocol(protocol, **(protocol_params or {})),
        rng=random.Random(1),
    )
    msg = engine.inject(src, dst, length=length)
    tracer = MessageTracer(engine, msg)
    tracer.sample()
    tracer.run(max_cycles)
    return tracer
