"""Simulator validation with deterministic communication patterns.

The paper notes its simulation model "was validated using deterministic
communication patterns" (Section 6.0, following Ferrari [14]): under a
workload whose behaviour is analytically predictable, the simulator's
measurements must match the prediction.  This module implements that
methodology for the reproduction:

* **nearest-neighbor**: every node sends to its +x neighbor.  All
  paths are link-disjoint (each message uses only its own +x channel),
  so there is no contention and every message's latency must equal the
  idle-network formula for the protocol's flow control; sustainable
  throughput equals the offered load up to the channel capacity.
* **fixed-distance ring**: every node sends ``d`` hops along +x.  The
  per-channel utilization is exactly ``load * d`` — measured link
  utilization must match.

:func:`validate` runs the full battery and returns a report; the test
suite asserts every check passes, giving the same evidence the paper's
validation produced.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List

from repro.core.latency_model import t_pcs, t_wormhole
from repro.sim.config import SimulationConfig
from repro.sim.engine import Engine
from repro.sim.simulator import make_protocol


@dataclass(frozen=True)
class ValidationCheck:
    name: str
    expected: float
    measured: float
    tolerance: float

    @property
    def passed(self) -> bool:
        if self.tolerance == 0:
            return self.expected == self.measured
        return abs(self.measured - self.expected) <= self.tolerance * max(
            abs(self.expected), 1e-12
        )


def _nearest_neighbor_engine(flow: str, k: int, length: int,
                             load_interval: int):
    """All nodes sending +x neighbor traffic at a fixed interval."""
    cfg = SimulationConfig(
        k=k, n=2, protocol="det", offered_load=0.0,
        message_length=length, warmup_cycles=0, measure_cycles=0,
    )
    params = {"flow": flow}
    engine = Engine(cfg, make_protocol("det", **params),
                    rng=random.Random(1))
    return engine


def nearest_neighbor_latency(flow: str, k: int = 8,
                             length: int = 8) -> List[ValidationCheck]:
    """Simultaneous nearest-neighbor messages: zero contention.

    Every node injects one message to its +x neighbor at the same
    cycle; paths are disjoint, so each must finish in exactly the
    idle-network time.
    """
    engine = _nearest_neighbor_engine(flow, k, length, 0)
    topo = engine.topology
    messages = []
    for node in range(topo.num_nodes):
        dst = topo.neighbor(node, 0, +1)
        messages.append(engine.inject(node, dst, length=length))
    budget = 10 * (length + 10)
    for _ in range(budget):
        engine.step()
        if all(m.is_terminal() for m in messages):
            break
    if flow == "wr":
        expected = t_wormhole(1, length)
    elif flow == "pcs":
        expected = t_pcs(1, length)
    else:
        expected = t_pcs(1, length)  # K=3 > 1 link degenerates to PCS
    checks = []
    latencies = {
        m.delivered_cycle - m.created_cycle
        for m in messages
        if m.delivered_cycle is not None
    }
    checks.append(
        ValidationCheck(
            name=f"nearest-neighbor {flow}: all delivered",
            expected=len(messages),
            measured=sum(1 for m in messages if m.status.name == "DELIVERED"),
            tolerance=0,
        )
    )
    checks.append(
        ValidationCheck(
            name=f"nearest-neighbor {flow}: uniform latency {expected}",
            expected=1,
            measured=int(latencies == {expected}),
            tolerance=0,
        )
    )
    return checks


def ring_utilization(distance: int = 3, k: int = 8, length: int = 4,
                     interval: int = 40) -> List[ValidationCheck]:
    """Fixed-distance +x traffic: channel utilization = load * distance.

    Each node injects a ``length``-flit message every ``interval``
    cycles to the node ``distance`` hops along +x for ``rounds``
    rounds.  Every +x channel then carries exactly
    ``length * distance / interval`` flits/cycle.
    """
    cfg = SimulationConfig(
        k=k, n=2, protocol="det", offered_load=0.0,
        message_length=length, warmup_cycles=0, measure_cycles=0,
    )
    engine = Engine(cfg, make_protocol("det", flow="wr"),
                    rng=random.Random(1))
    topo = engine.topology
    rounds = 5
    injected = 0
    cycles = rounds * interval
    for cycle in range(cycles):
        if cycle % interval == 0 and cycle // interval < rounds:
            for node in range(topo.num_nodes):
                coords = topo.coords(node)
                dst = topo.node_id((coords[0] + distance,) + coords[1:])
                engine.inject(node, dst, length=length)
                injected += 1
        engine.step()
    engine.drain(5000)
    # Expected flit crossings per +x channel: every message crosses
    # `distance` consecutive +x links; by ring symmetry each channel
    # carries `rounds * distance` messages' worth... each +x channel is
    # crossed by exactly `distance` sources per round.
    expected_per_channel = rounds * distance * (length + 1)  # +1 header
    measured = []
    for node in range(topo.num_nodes):
        ch = topo.channel_id(node, 0, +1)
        measured.append(
            sum(vc.grants for vc in engine.channels.vcs(ch))
        )
    checks = [
        ValidationCheck(
            name="ring: all messages delivered",
            expected=injected,
            measured=engine.delivered_messages,
            tolerance=0,
        ),
        ValidationCheck(
            name=(
                f"ring: per-channel flit crossings == "
                f"{expected_per_channel}"
            ),
            expected=1,
            measured=int(
                all(m == expected_per_channel for m in measured)
            ),
            tolerance=0,
        ),
    ]
    return checks


def validate() -> List[ValidationCheck]:
    """The full deterministic-pattern validation battery."""
    checks: List[ValidationCheck] = []
    for flow in ("wr", "sr", "pcs"):
        checks.extend(nearest_neighbor_latency(flow))
    checks.extend(ring_utilization())
    return checks


def render(checks: List[ValidationCheck]) -> str:
    lines = ["=== deterministic-pattern validation (Section 6.0) ==="]
    for c in checks:
        status = "ok" if c.passed else "FAIL"
        lines.append(
            f"  [{status:>4}] {c.name}: expected {c.expected}, "
            f"measured {c.measured}"
        )
    failed = sum(1 for c in checks if not c.passed)
    lines.append(f"{len(checks)} checks, {failed} failures")
    return "\n".join(lines)
