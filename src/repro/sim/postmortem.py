"""Deadlock diagnosis and victim selection (the resilience layer).

When the engine's progress watchdog expires, this module reconstructs
the *message wait-for graph* from live engine state: a blocked routing
header at router ``R`` wants a virtual channel on one of the profitable
output channels of ``R``; every busy virtual channel on a wanted output
contributes a ``waiter -> holder`` edge.  Strongly connected components
of that graph are the blocking cycles — the classic circular-wait
signature of a routing deadlock.

Diagnosis feeds two consumers:

* **strict mode** (``ResilienceConfig.deadlock_strict``) renders the
  graph and cycles into the :class:`~repro.sim.engine.DeadlockError`
  message, so a crashed run explains *which* messages blocked each
  other instead of only saying "no progress";
* **recovery mode** (the default) selects a victim message from the
  cycle and hands it to the engine's existing kill-flit teardown path
  (Section 2.4), which frees the victim's virtual channels and lets the
  rest of the network resume — the victim retries from its source under
  the usual ``RecoveryConfig`` bounds.  This mirrors deadlock-recovery
  routers (e.g. DBR-style victim ejection): detection is the expensive
  part and it only runs after the watchdog, never on the fast path.

The edge construction deliberately *over-approximates*: it does not
re-run the routing protocol to learn exactly which virtual channel a
header would accept, it assumes any busy VC on a profitable (or, in
detour mode, any healthy) output could be the one being waited on.
Over-approximation can only add edges, so a genuine circular wait is
always contained in some reported cycle; victim ejection therefore
never misses a real deadlock.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from repro.sim.message import HeaderPhase, Message, MessageStatus


@dataclass(frozen=True)
class WaitEdge:
    """One ``waiter -> holder`` dependency in the wait-for graph."""

    waiter: int  #: blocked message id
    holder: int  #: message id owning the wanted virtual channel
    node: int    #: node where the waiter's header is blocked
    channel_id: int  #: wanted physical channel
    vc_index: int    #: busy virtual channel on that physical channel

    def describe(self) -> str:
        return (
            f"msg {self.waiter} @node {self.node} waits on "
            f"ch {self.channel_id}.vc{self.vc_index} held by "
            f"msg {self.holder}"
        )


@dataclass
class DeadlockDiagnosis:
    """Rendered snapshot of who blocks whom at watchdog expiry."""

    cycle: int
    active_messages: int
    blocked: List[int] = field(default_factory=list)
    edges: List[WaitEdge] = field(default_factory=list)
    #: Message-id cycles (each a closed walk, first element repeated
    #: implicitly) extracted from the wait-for graph.
    cycles: List[List[int]] = field(default_factory=list)

    def render(self) -> str:
        """Multi-line human-readable wait-for report."""
        lines = [
            f"deadlock watchdog expired at cycle {self.cycle}: "
            f"{self.active_messages} active message(s), "
            f"{len(self.blocked)} blocked header(s), "
            f"{len(self.edges)} wait-for edge(s), "
            f"{len(self.cycles)} blocking cycle(s)"
        ]
        by_waiter: Dict[int, List[WaitEdge]] = {}
        for edge in self.edges:
            by_waiter.setdefault(edge.waiter, []).append(edge)
        for i, cyc in enumerate(self.cycles, start=1):
            chain = " -> ".join(str(m) for m in cyc + cyc[:1])
            lines.append(f"  cycle {i}: {chain}")
            members = set(cyc)
            for mid in cyc:
                for edge in by_waiter.get(mid, []):
                    if edge.holder in members:
                        lines.append(f"    {edge.describe()}")
        if not self.cycles:
            if self.edges:
                lines.append("  no closed cycle; acyclic wait chains:")
                for edge in self.edges:
                    lines.append(f"    {edge.describe()}")
            else:
                lines.append(
                    "  no wait-for edges: blockage is not a routing "
                    "circular wait (lost token or frozen message)"
                )
        return "\n".join(lines)


def _blocked_messages(engine) -> List[Message]:
    """Active messages whose routing header is stalled at a router."""
    return [
        msg
        for msg in engine.active.values()
        if msg.status is MessageStatus.ACTIVE
        and not msg.teardown
        and msg.header_phase is HeaderPhase.PENDING
    ]


def _wanted_channels(engine, msg: Message) -> List[int]:
    """Healthy output channels the blocked header could want next.

    Profitable ports when routing minimally; every healthy port when
    the header is in detour/misroute territory (TP conservative phase)
    or no profitable port survives the fault set.
    """
    topo = engine.topology
    node = msg.current_node()
    profitable = [
        topo.channel_id(node, dim, direction)
        for dim, direction in topo.profitable_ports(node, msg.dst)
    ]
    healthy = [
        ch for ch in profitable if not engine.faults.channel_faulty[ch]
    ]
    if healthy and not msg.header.detour:
        return healthy
    return [
        topo.channel_id(node, dim, direction)
        for dim, direction in topo.ports(node)
        if not engine.faults.channel_faulty[
            topo.channel_id(node, dim, direction)
        ]
    ]


def diagnose(engine) -> DeadlockDiagnosis:
    """Build the wait-for graph and its cycles from live engine state."""
    # The SoA kernel holds live occupancy in its flat buffers;
    # reconstruct the object lists before reading them.
    engine.sync_data_state()
    blocked = _blocked_messages(engine)
    edges: List[WaitEdge] = []
    for msg in blocked:
        node = msg.current_node()
        for ch in _wanted_channels(engine, msg):
            for vc in engine.channels.vcs(ch):
                if vc.owner is None or vc.owner == msg.msg_id:
                    continue
                edges.append(
                    WaitEdge(
                        waiter=msg.msg_id,
                        holder=vc.owner,
                        node=node,
                        channel_id=ch,
                        vc_index=vc.index,
                    )
                )
    return DeadlockDiagnosis(
        cycle=engine.cycle,
        active_messages=len(engine.active),
        blocked=[m.msg_id for m in blocked],
        edges=edges,
        cycles=_find_cycles(edges),
    )


def _find_cycles(edges: List[WaitEdge]) -> List[List[int]]:
    """Cycles in the wait-for graph, one per non-trivial SCC."""
    adjacency: Dict[int, List[int]] = {}
    for edge in edges:
        adjacency.setdefault(edge.waiter, []).append(edge.holder)
        adjacency.setdefault(edge.holder, [])
    sccs = _tarjan_sccs(adjacency)
    cycles = []
    for scc in sccs:
        if len(scc) < 2:
            continue
        walk = _cycle_walk(adjacency, scc)
        cycles.append(walk if walk is not None else sorted(scc))
    return cycles


def _tarjan_sccs(adjacency: Dict[int, List[int]]) -> List[Set[int]]:
    """Iterative Tarjan strongly-connected components."""
    index: Dict[int, int] = {}
    lowlink: Dict[int, int] = {}
    on_stack: Set[int] = set()
    stack: List[int] = []
    sccs: List[Set[int]] = []
    counter = [0]

    for root in adjacency:
        if root in index:
            continue
        work = [(root, iter(adjacency[root]))]
        index[root] = lowlink[root] = counter[0]
        counter[0] += 1
        stack.append(root)
        on_stack.add(root)
        while work:
            node, successors = work[-1]
            advanced = False
            for succ in successors:
                if succ not in index:
                    index[succ] = lowlink[succ] = counter[0]
                    counter[0] += 1
                    stack.append(succ)
                    on_stack.add(succ)
                    work.append((succ, iter(adjacency[succ])))
                    advanced = True
                    break
                if succ in on_stack:
                    lowlink[node] = min(lowlink[node], index[succ])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[node])
            if lowlink[node] == index[node]:
                scc: Set[int] = set()
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    scc.add(member)
                    if member == node:
                        break
                sccs.append(scc)
    return sccs


def _cycle_walk(
    adjacency: Dict[int, List[int]], scc: Set[int]
) -> Optional[List[int]]:
    """An explicit closed walk through one SCC (for readable reports)."""
    start = min(scc)
    walk = [start]
    seen = {start}
    node = start
    while True:
        nxt = next(
            (s for s in adjacency.get(node, []) if s in scc), None
        )
        if nxt is None:
            return None
        if nxt == start:
            return walk
        if nxt in seen:
            # Close the walk at the revisited node instead.
            return walk[walk.index(nxt):]
        walk.append(nxt)
        seen.add(nxt)
        node = nxt


def select_victim(diagnosis: DeadlockDiagnosis, engine) -> Optional[Message]:
    """Pick the message to eject so the network can resume.

    Preference order: members of a blocking cycle, then any blocked
    header, then any active message — always skipping messages already
    in teardown (their resources are already being recovered).  Within
    a pool the victim is the message with the least committed data
    (cheapest to retry from the source), ties broken by lowest id for
    determinism.

    Two further exclusions bound pathological recovery:

    * **re-ejection cap** — a message whose origin (itself plus its
      retry clones, keyed by ``original_id``) has already been ejected
      ``resilience.max_victim_ejections`` times is skipped; when the
      cap excluded at least one candidate the engine's
      ``victim_cap_hits`` counter is bumped, and if *no* victim
      remains at all the engine escalates to a hard
      :class:`~repro.sim.engine.DeadlockError` instead of livelocking
      recovery on the same cycle forever;
    * **reconfiguration freeze** — while ``engine.routing_freeze``
      holds headers at their sources, a message with no reservations
      yet owns no virtual channel, cannot be a holder in any wait
      cycle, and ejecting it could not unblock anything, so it is
      never selected.
    """
    cap = engine.config.resilience.max_victim_ejections
    ejections = engine._ejections_by_origin
    freeze = engine.routing_freeze
    capped = False

    def eligible(msg_id: int) -> Optional[Message]:
        nonlocal capped
        msg = engine.messages.get(msg_id)
        if msg is None or msg.teardown or msg.is_terminal():
            return None
        if freeze and not msg.path:
            return None
        if ejections.get(msg.original_id, 0) >= cap:
            capped = True
            return None
        return msg

    pools: List[List[int]] = [
        [mid for cyc in diagnosis.cycles for mid in cyc],
        diagnosis.blocked,
        list(engine.active),
    ]
    victim: Optional[Message] = None
    for pool in pools:
        candidates = [m for m in map(eligible, pool) if m is not None]
        if candidates:
            victim = min(
                candidates, key=lambda m: (m.injected_flits, m.msg_id)
            )
            break
    if capped:
        engine.victim_cap_hits += 1
    return victim
