"""High-level simulation facade.

:class:`NetworkSimulator` wires the whole system together from a
:class:`~repro.sim.config.SimulationConfig`: topology, fault placement,
dynamic fault schedule, traffic generator, routing protocol, and the
flit-level engine — then runs warmup + measurement (+ drain) and
returns a :class:`~repro.sim.stats.RunResult`.

>>> from repro import NetworkSimulator, SimulationConfig
>>> cfg = SimulationConfig(k=4, n=2, protocol="tp", offered_load=0.05,
...                        warmup_cycles=200, measure_cycles=800)
>>> result = NetworkSimulator(cfg).run()
>>> result.delivered > 0
True
"""

from __future__ import annotations

import random
from typing import Optional

from repro.core.two_phase import TwoPhaseProtocol
from repro.faults.injection import (
    DynamicFaultSchedule,
    place_random_node_faults,
    random_dynamic_schedule,
)
from repro.faults.model import FaultState
from repro.network.topology import KAryNCube
from repro.reconfig.controller import ReconfigController
from repro.routing.duato import DuatoProtocol
from repro.routing.mb import MBmProtocol
from repro.routing.oblivious import DimensionOrderProtocol
from repro.sim.config import SimulationConfig
from repro.sim.engine import Engine, HookChain
from repro.sim.stats import RunResult, summarize
from repro.sim.traffic import TrafficGenerator

PROTOCOLS = {
    "dp": DuatoProtocol,
    "mb": MBmProtocol,
    "tp": TwoPhaseProtocol,
    "det": DimensionOrderProtocol,
}


def make_protocol(name: str, **params):
    """Instantiate a routing protocol by its short name.

    ``dp`` — Duato's Protocol (wormhole baseline); ``mb`` — MB-m over
    PCS; ``tp`` — Two-Phase (``k_unsafe=0`` aggressive by default,
    ``k_unsafe=3`` conservative); ``det`` — dimension-order with
    selectable flow control (validation).
    """
    try:
        cls = PROTOCOLS[name]
    except KeyError:
        raise ValueError(
            f"unknown protocol {name!r}; choose from {sorted(PROTOCOLS)}"
        ) from None
    return cls(**params)


class NetworkSimulator:
    """Build and run one complete simulation from a config."""

    def __init__(self, config: SimulationConfig,
                 protocol=None, rng: Optional[random.Random] = None):
        self.config = config
        self.rng = rng if rng is not None else random.Random(config.seed)
        self.topology = KAryNCube(config.k, config.n)
        self.faults = FaultState(self.topology)
        self.protocol = protocol if protocol is not None else make_protocol(
            config.protocol, **config.protocol_params
        )

        if config.faults.static_node_faults:
            place_random_node_faults(
                self.faults,
                config.faults.static_node_faults,
                self.rng,
                keep_connected=config.faults.keep_connected,
            )

        healthy = [
            node for node in range(self.topology.num_nodes)
            if not self.faults.is_node_faulty(node)
        ]
        self.traffic = TrafficGenerator(
            config.traffic, self.topology, self.rng, healthy_nodes=healthy,
            params=config.traffic_params,
        )

        schedule: Optional[DynamicFaultSchedule] = None
        if config.faults.dynamic_faults:
            stop = config.faults.dynamic_stop
            if stop is None:
                stop = config.total_cycles
            schedule = random_dynamic_schedule(
                self.topology,
                config.faults.dynamic_faults,
                horizon=stop,
                rng=self.rng,
                kind=config.faults.dynamic_kind,
                start_cycle=config.faults.dynamic_start,
            )

        self.engine = Engine(
            config,
            self.protocol,
            topology=self.topology,
            fault_state=self.faults,
            traffic=self.traffic,
            rng=self.rng,
            dynamic_schedule=schedule,
        )

        #: Online reconfiguration controller (DESIGN.md §10), armed by
        #: ``resilience.reconfig`` and composed after any user hook.
        self.reconfig: Optional[ReconfigController] = (
            ReconfigController(config.resilience)
            if config.resilience.reconfig else None
        )

    def run(self, on_cycle=None) -> RunResult:
        """Warmup + measurement, then drain, then summarize.

        ``on_cycle(engine)``, when given, is invoked after every
        executed cycle of the warmup+measurement phase (not the
        drain).  The chaos harness uses it to watch live state and
        inject fault bursts at adversarial moments; tracing and custom
        instrumentation fit the same hook.  A hook that declares
        ``next_event_cycle(engine)`` keeps the quiescence fast-forward
        enabled (skipped cycles are provably no-ops for it); any other
        hook falls back to cycle-by-cycle execution — see
        :meth:`repro.sim.engine.Engine.run`.

        With ``resilience.reconfig`` the
        :class:`~repro.reconfig.ReconfigController` runs as an
        additional hook after the caller's (both declare their event
        horizons, so fast-forward survives the composition); a
        reconfiguration still draining at the end of measurement is
        cancelled before the engine drain so the freeze cannot leak
        into it.
        """
        hook = on_cycle
        if self.reconfig is not None:
            hook = (
                HookChain([on_cycle, self.reconfig])
                if on_cycle is not None else self.reconfig
            )
        self.engine.run(self.config.total_cycles, on_cycle=hook)
        if self.reconfig is not None:
            self.reconfig.finalize(self.engine)
        if self.config.drain_cycles:
            self.engine.drain(self.config.drain_cycles)
        return self.results()

    def results(self) -> RunResult:
        # Settle lazily-committed VC grant credits and reconstruct
        # object-level occupancy before summarizing.
        self.engine.sync_data_state()
        return summarize(self.engine, self.config.warmup_cycles)


def run_config(config: SimulationConfig) -> RunResult:
    """One-shot convenience: build, run, summarize."""
    return NetworkSimulator(config).run()
