"""Routing-protocol interface shared by DP, MB-m, and Two-Phase routing.

Each cycle, the engine presents every pending routing header to its
protocol's :meth:`RoutingProtocol.decide`, which returns one of:

* ``RESERVE`` — take the given virtual channel (the routing function's
  candidate set filtered through the selection function); the engine
  reserves it, programs its scouting distance, and forwards the header;
* ``WAIT`` — block in place and re-evaluate next cycle (wormhole
  blocking on a busy deterministic channel, or a source-side retry
  backoff);
* ``BACKTRACK`` — release the most recent channel and step the header
  one hop toward the source (only protocols with decoupled headers);
* ``ABORT`` — give up on the current attempt; the engine tears the
  path down and either requeues the message at the source or drops it.

Protocols are stateless across messages: every per-message scratch
value (history store contents, detour stack, mode bits) lives on the
:class:`~repro.sim.message.Message`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional, Protocol, Tuple

from repro.core.flow_control import FlowControlConfig
from repro.faults.model import FaultState
from repro.network.channel import ChannelBank, VirtualChannel
from repro.network.topology import KAryNCube
from repro.routing.cache import RouteCache
from repro.sim.message import Message


class Action(enum.Enum):
    RESERVE = 0
    WAIT = 1
    BACKTRACK = 2
    ABORT = 3


@dataclass
class Decision:
    action: Action
    #: For RESERVE: the chosen virtual channel.
    vc: Optional[VirtualChannel] = None
    #: For RESERVE: the port taken, as (dim, direction).
    port: Optional[Tuple[int, int]] = None
    #: For RESERVE: scouting distance K to program into the channel.
    k: int = 0
    #: For RESERVE: reserve with the data gate held closed (channels
    #: accepted during detour construction are all-or-nothing).
    hold: bool = False
    #: For RESERVE: the hop moves the header away from its destination.
    is_misroute: bool = False
    #: For ABORT: human-readable reason recorded on the message.
    reason: str = ""


WAIT = Decision(action=Action.WAIT)


class RoutingContext:
    """Read-only view of the network handed to routing decisions."""

    __slots__ = ("topology", "faults", "channels", "cycle", "cache")

    def __init__(self, topology: KAryNCube, faults: FaultState,
                 channels: ChannelBank, cycle: int = 0,
                 cache: Optional[RouteCache] = None):
        self.topology = topology
        self.faults = faults
        self.channels = channels
        self.cycle = cycle
        #: Fault-epoch-keyed memo of routing candidate sets shared by
        #: every decision made against this context.
        self.cache = cache if cache is not None else RouteCache(
            topology, faults
        )


class RoutingProtocol(Protocol):
    """Interface implemented by every routing protocol."""

    #: Whether the header travels in-band on data channels (pure
    #: wormhole) instead of on the control channels.
    inline_header: bool
    #: Flow-control programming used by this protocol.
    flow_control: FlowControlConfig

    def decide(self, ctx: RoutingContext, message: Message) -> Decision:
        """Routing function + selection function for one pending header."""
        ...

    def on_arrival(self, ctx: RoutingContext, message: Message) -> None:
        """Hook invoked when the header arrives at a new router."""
        ...
