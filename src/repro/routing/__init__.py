"""Routing protocols: Duato's Protocol, MB-m, and building blocks.

Protocol classes are importable from their concrete modules (and the
Two-Phase protocol from :mod:`repro.core.two_phase`); this package
``__init__`` only re-exports the interface types to avoid import
cycles with :mod:`repro.sim`.
"""

from repro.routing.base import Action, Decision, RoutingContext

__all__ = ["Action", "Decision", "RoutingContext"]
