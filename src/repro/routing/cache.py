"""Memoized routing candidate sets, invalidated by fault epoch.

The routing functions of every protocol enumerate the same candidate
sets over and over: the profitable ports of ``(node, dst)`` filtered by
fault status and safety designation, the dimension-order escape hop,
and the Theorem 2 misroute ordering.  All of these depend only on the
immutable topology and on the fault state — *not* on virtual-channel
occupancy, which the selection functions check live — so a blocked
header re-evaluated for hundreds of cycles recomputes identical lists.

:class:`RouteCache` memoizes them per (router, destination, phase)
where "phase" is the safety filter / misroute context, and keys the
fault-dependent caches on :attr:`FaultState.epoch`: any fault,
unsafe-marking, or online-reconfiguration event bumps the epoch
(``FaultState._recompute_unsafe`` is the single funnel point) and the
next lookup drops every stale entry — a candidate tuple therefore
never mixes channels admitted under two different epochs.  The
dimension-order escape route is a pure function of the topology and is
cached forever.

Reconfiguration restrictions (:attr:`FaultState.channel_restricted`)
are filtered here alongside fault status, with two carve-outs.  First,
a restricted channel whose head node *is* the destination stays
eligible (the final delivery hop), so restricting every inbound
channel of a pocket node never makes that node unreachable.  Second,
restrictions are a *steering* mechanism, not a correctness one:
callers implementing a recovery search whose deliverability argument
needs every healthy channel (TP's conservative detour phase) pass
``honor_restrictions=False`` and see the unrestricted sets.  The
escape layer is exempt for the same reason — restrictions prune only
the optimistic adaptive/misroute sets, so the deadlock-free escape
network survives any restriction pattern (Duato-style separation).

Entries are tuples of ``(dim, direction, channel_id, next_node)`` so
protocol hot loops avoid the ``channel_id``/``channel`` lookups too.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.faults.model import FaultState
from repro.network.channel import VCClass
from repro.network.topology import KAryNCube
from repro.routing.dimension_order import deterministic_route

#: One candidate hop: (dim, direction, channel_id, next_node).
Candidate = Tuple[int, int, int, int]
#: Escape hop: (dim, direction, vclass, channel_id).
Escape = Tuple[int, int, VCClass, int]


class RouteCache:
    """Epoch-checked memo of fault-filtered routing candidate sets."""

    __slots__ = ("topology", "faults", "_epoch", "_adaptive", "_misroute",
                 "_escape")

    def __init__(self, topology: KAryNCube, faults: FaultState):
        self.topology = topology
        self.faults = faults
        self._epoch = faults.epoch
        #: (node, dst, require_safe, honor_restrictions) -> Candidates.
        self._adaptive: Dict[tuple, Tuple[Candidate, ...]] = {}
        #: (node, dst, arrival, allow_u_turn, honor_restrictions)
        #: -> tuple of Candidate.
        self._misroute: Dict[tuple, Tuple[Candidate, ...]] = {}
        #: (node, dst) -> Escape or None; fault-independent, never cleared.
        self._escape: Dict[Tuple[int, int], Optional[Escape]] = {}

    def _sync(self) -> None:
        epoch = self.faults.epoch
        if epoch != self._epoch:
            self._epoch = epoch
            self._adaptive.clear()
            self._misroute.clear()

    # ------------------------------------------------------------------
    def adaptive_candidates(
        self, node: int, dst: int, require_safe: Optional[bool],
        honor_restrictions: bool = True,
    ) -> Tuple[Candidate, ...]:
        """Profitable ports passing the fault/safety filter, in order.

        ``require_safe`` is the phase key: ``True`` admits only safe
        channels, ``False`` only unsafe ones, ``None`` ignores the
        designation.  ``honor_restrictions=False`` skips the
        reconfiguration-restriction filter (recovery searches only).
        Virtual-channel occupancy is deliberately *not* part of the
        entry — callers check free VCs live.
        """
        self._sync()
        key = (node, dst, require_safe, honor_restrictions)
        cached = self._adaptive.get(key)
        if cached is None:
            topo = self.topology
            faulty = self.faults.channel_faulty
            unsafe = self.faults.channel_unsafe
            restricted = self.faults.channel_restricted
            out: List[Candidate] = []
            for dim, direction in topo.profitable_ports(node, dst):
                ch = topo.channel_id(node, dim, direction)
                if faulty[ch]:
                    continue
                next_node = topo.channel(ch).dst
                if (honor_restrictions and restricted[ch]
                        and next_node != dst):
                    continue
                if require_safe is True and unsafe[ch]:
                    continue
                if require_safe is False and not unsafe[ch]:
                    continue
                out.append((dim, direction, ch, next_node))
            cached = tuple(out)
            self._adaptive[key] = cached
        return cached

    def misroute_candidates(
        self,
        node: int,
        dst: int,
        arrival: Optional[Tuple[int, int]],
        allow_u_turn: bool,
        honor_restrictions: bool = True,
    ) -> Tuple[Candidate, ...]:
        """Healthy unprofitable ports in the Theorem 2 preference order.

        Premise (iii) of Theorem 2: when misrouting, prefer an output
        channel in the *same dimension* as the input channel.  The
        reverse of the arrival port (a U-turn) is appended last and
        only when ``allow_u_turn``.  ``honor_restrictions=False``
        skips the reconfiguration-restriction filter.
        """
        self._sync()
        key = (node, dst, arrival, allow_u_turn, honor_restrictions)
        cached = self._misroute.get(key)
        if cached is None:
            topo = self.topology
            faulty = self.faults.channel_faulty
            restricted = self.faults.channel_restricted
            reverse = None
            if arrival is not None:
                reverse = (arrival[0], -arrival[1])
            same_dim: List[Candidate] = []
            other: List[Candidate] = []
            for dim, direction in topo.ports(node):
                if topo.is_profitable(node, dst, dim, direction):
                    continue
                if (dim, direction) == reverse:
                    continue
                ch = topo.channel_id(node, dim, direction)
                if faulty[ch]:
                    continue
                next_node = topo.channel(ch).dst
                if (honor_restrictions and restricted[ch]
                        and next_node != dst):
                    continue
                entry = (dim, direction, ch, next_node)
                if arrival is not None and dim == arrival[0]:
                    same_dim.append(entry)
                else:
                    other.append(entry)
            out = same_dim + other
            if allow_u_turn and reverse is not None:
                ch = topo.channel_id(node, reverse[0], reverse[1])
                if not faulty[ch]:
                    rev_next = topo.channel(ch).dst
                    if (not honor_restrictions or not restricted[ch]
                            or rev_next == dst):
                        out.append(
                            (reverse[0], reverse[1], ch, rev_next)
                        )
            cached = tuple(out)
            self._misroute[key] = cached
        return cached

    def escape(self, node: int, dst: int) -> Optional[Escape]:
        """The dimension-order escape hop with its dateline class.

        A pure function of the topology (fault status of the escape
        channel is the caller's concern), so entries survive epoch
        bumps.
        """
        key = (node, dst)
        try:
            return self._escape[key]
        except KeyError:
            det = deterministic_route(self.topology, node, dst)
            entry: Optional[Escape] = None
            if det is not None:
                dim, direction, vclass = det
                entry = (
                    dim, direction, vclass,
                    self.topology.channel_id(node, dim, direction),
                )
            self._escape[key] = entry
            return entry
