"""MB-m: misrouting backtracking protocol over PCS flow control [17].

The conservative baseline of the paper's evaluation.  The routing
header performs path setup decoupled from data transmission (pipelined
circuit switching): it searches the network depth-first with at most
``m`` misroutes, backtracking — and releasing channels — when stuck,
with a per-node history (the RCU history store) preventing re-searching
output channels already tried on the current path.  Data flits enter
the network only after the header reaches the destination and a path
acknowledgment returns to the source, which makes the protocol
extremely robust but costs the ``3l`` setup latency of Section 2.2.

Because the header never blocks holding partially built paths (it
misroutes or backtracks instead), MB-m needs no virtual-channel class
partition for deadlock freedom; it draws from every VC of a physical
channel.  A search that exhausts the budget retreats to the source and
retries after a backoff; a bounded number of failed attempts marks the
message undeliverable (the higher-level-protocol escape of Section
4.0).
"""

from __future__ import annotations

from repro.core.flow_control import FlowControlConfig
from repro.routing.base import WAIT, Action, Decision, RoutingContext
from repro.routing.selection import free_vc_any_class
from repro.sim.message import Message

#: Default misroute budget; Theorem 2 shows 6 suffices to search every
#: input link of the destination within a plane.
DEFAULT_MISROUTE_LIMIT = 6


class MBmProtocol:
    """Misrouting, backtracking protocol with ``m`` misroutes (PCS)."""

    name = "mb"
    inline_header = False

    def __init__(self, misroute_limit: int = DEFAULT_MISROUTE_LIMIT,
                 retry_backoff: int = 16, max_retries: int = 3):
        if misroute_limit < 0:
            raise ValueError("misroute limit must be non-negative")
        self.misroute_limit = misroute_limit
        self.retry_backoff = retry_backoff
        self.max_retries = max_retries
        self.flow_control = FlowControlConfig.pcs()

    def on_arrival(self, ctx: RoutingContext, message: Message) -> None:
        """History is initialized per visited node by the engine."""

    def decide(self, ctx: RoutingContext, message: Message) -> Decision:
        if ctx.cycle < message.retry_wait:
            return WAIT

        node = message.current_node()
        dst = message.dst
        j = message.header_router
        tried = message.tried[j]
        # Self-avoiding depth-first search: never re-enter a node on
        # the current path (the walk would cycle); backtracking is the
        # only way back.
        on_path = set(message.path_nodes)

        # Profitable, healthy, not-yet-searched channels with a free VC.
        for dim, direction, ch, next_node in ctx.cache.adaptive_candidates(
            node, dst, None
        ):
            if ch in tried:
                continue
            if next_node in on_path:
                continue
            vc = free_vc_any_class(ctx, ch)
            if vc is not None:
                return Decision(
                    action=Action.RESERVE, vc=vc, port=(dim, direction)
                )

        # Misroute (preferred over backtracking, Section 3.0) while the
        # budget allows; U-turns are not taken — MB-m backtracks instead.
        if message.header.misroutes < self.misroute_limit:
            arrival = message.arrival_dims[j]
            for dim, direction, ch, next_node in (
                ctx.cache.misroute_candidates(
                    node, dst, arrival, allow_u_turn=False
                )
            ):
                if ch in tried:
                    continue
                if next_node in on_path:
                    continue
                vc = free_vc_any_class(ctx, ch)
                if vc is not None:
                    return Decision(
                        action=Action.RESERVE,
                        vc=vc,
                        port=(dim, direction),
                        is_misroute=True,
                    )

        # Nothing searchable here: retreat (releasing the channel) or,
        # at the source, retry the whole search after a backoff.
        if j > 0:
            return Decision(action=Action.BACKTRACK)

        if message.retries < self.max_retries:
            message.retries += 1
            message.retry_wait = ctx.cycle + self.retry_backoff
            message.tried[0].clear()
            return WAIT
        return Decision(
            action=Action.ABORT,
            reason="MB-m search exhausted after retries",
        )
