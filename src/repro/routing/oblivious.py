"""Deterministic dimension-order protocol with selectable flow control.

This protocol exists to validate the simulator against the closed-form
latency expressions of Section 2.2 and to exercise each flow-control
mechanism in isolation: it always follows the dimension-order path on
the deterministic (dateline-classed) virtual channels, blocking when
the channel is busy, and can be configured as

* ``flow="wr"``  — in-band header, wormhole (validates ``t_WR``);
* ``flow="sr"``  — decoupled header, scouting distance ``k`` from the
  first hop (validates ``t_scouting``);
* ``flow="pcs"`` — decoupled header, data gated on the path
  acknowledgment (validates ``t_PCS``).

It performs no misrouting or backtracking: a faulty channel on the
dimension-order path makes the message undeliverable.

With ``dateline=False`` the dateline classing is deliberately
disabled (every hop uses class 0), reproducing naive wormhole routing
on a torus — the textbook configuration whose ring wrap-around closes
a cyclic channel dependency and genuinely deadlocks under load.  The
resilience layer's chaos harness uses it to exercise the watchdog's
wait-for-graph diagnosis and victim-ejection recovery against *real*
cyclic deadlocks rather than simulated stalls.
"""

from __future__ import annotations

from repro.core.flow_control import FlowControlConfig, FlowControlKind
from repro.network.channel import VCClass
from repro.routing.base import WAIT, Action, Decision, RoutingContext
from repro.sim.message import Message


class DimensionOrderProtocol:
    """E-cube routing over the escape channels, any flow control."""

    name = "det"

    def __init__(self, flow: str = "wr", k: int = 3, dateline: bool = True):
        self.dateline = dateline
        if flow == "wr":
            self.flow_control = FlowControlConfig.wormhole()
            self.inline_header = True
        elif flow == "sr":
            self.flow_control = FlowControlConfig.scouting(
                k_safe=k, k_unsafe=k
            )
            self.inline_header = False
        elif flow == "pcs":
            self.flow_control = FlowControlConfig.pcs()
            self.inline_header = False
        else:
            raise ValueError(
                f"flow must be 'wr', 'sr', or 'pcs', got {flow!r}"
            )

    def on_arrival(self, ctx: RoutingContext, message: Message) -> None:
        """No per-hop scratch state."""

    def decide(self, ctx: RoutingContext, message: Message) -> Decision:
        node = message.current_node()
        det = ctx.cache.escape(node, message.dst)
        assert det is not None, "decide() must not be called at destination"
        dim, direction, vclass, ch = det
        if not self.dateline:
            vclass = VCClass.DETERMINISTIC_0  # naive: cycle NOT broken
        if ctx.faults.channel_faulty[ch]:
            return Decision(
                action=Action.ABORT,
                reason="faulty channel on dimension-order path",
            )
        vc = ctx.channels.deterministic(ch, vclass)
        if vc.is_free:
            k = self.flow_control.k_for(message.header.sr)
            if self.flow_control.kind is FlowControlKind.SCOUTING:
                k = self.flow_control.k_safe
            return Decision(
                action=Action.RESERVE, vc=vc, port=(dim, direction), k=k
            )
        return WAIT
