"""Selection-function helpers shared by DP, MB-m, and Two-Phase routing.

The paper separates the *routing function* (the set of candidate output
virtual channels) from the *selection function* (the priority scheme
that picks one).  These helpers enumerate candidate ports under the
safety / profitability / class constraints each protocol needs; the
protocols then apply their priority ordering.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.network.channel import VirtualChannel
from repro.routing.base import RoutingContext


def adaptive_candidate(
    ctx: RoutingContext,
    node: int,
    dst: int,
    require_safe: Optional[bool],
) -> Optional[Tuple[int, int, VirtualChannel]]:
    """First profitable port with a free adaptive VC.

    ``require_safe`` filters on the unsafe-channel designation:
    ``True`` admits only safe channels, ``False`` only unsafe ones,
    ``None`` ignores the designation (the fault-free DP baseline has no
    unsafe store).  Faulty channels are never candidates.  The
    fault-filtered port enumeration comes from the context's
    :class:`~repro.routing.cache.RouteCache`; only the free-VC check
    runs live.
    """
    free_adaptive = ctx.channels.free_adaptive
    for dim, direction, ch, _ in ctx.cache.adaptive_candidates(
        node, dst, require_safe
    ):
        vc = free_adaptive(ch)
        if vc is not None:
            return (dim, direction, vc)
    return None


def free_vc_any_class(
    ctx: RoutingContext, channel_id: int
) -> Optional[VirtualChannel]:
    """First free VC of any class on a channel (MB-m's undivided pool).

    PCS-based protocols owe their deadlock freedom to backtracking, not
    to a channel-class partition, so MB-m draws from every virtual
    channel of a physical channel.
    """
    for vc in ctx.channels.vcs(channel_id):
        if vc.is_free:
            return vc
    return None


def port_usable(ctx: RoutingContext, node: int, dim: int,
                direction: int) -> bool:
    """Whether the port's channel is healthy (ignores reservations)."""
    ch = ctx.topology.channel_id(node, dim, direction)
    return not ctx.faults.channel_faulty[ch]


def misroute_ports(
    ctx: RoutingContext,
    node: int,
    dst: int,
    arrival: Optional[Tuple[int, int]],
    allow_u_turn: bool,
) -> List[Tuple[int, int]]:
    """Healthy unprofitable ports, in the Theorem 2 preference order.

    Premise (iii) of Theorem 2: when misrouting, prefer an output
    channel in the *same dimension* as the input channel.  The reverse
    of the arrival port (a U-turn) is appended last and only when
    ``allow_u_turn`` — the aggressive TP variant turns around inside an
    alley instead of backtracking.
    """
    return [
        (dim, direction)
        for dim, direction, _, _ in ctx.cache.misroute_candidates(
            node, dst, arrival, allow_u_turn
        )
    ]
