"""Deterministic dimension-order (e-cube) routing with dateline classes.

Duato's Protocol partitions each physical channel's virtual channels
into a *restricted* deterministic set and an *unrestricted* adaptive
set (Section 4.0).  The deterministic set must itself be deadlock-free;
on a torus the standard construction is dimension-order routing with
two virtual-channel classes per ring and a *dateline*: a message uses
class 0 while its remaining deterministic path along the current ring
still has to cross the wrap-around link, and class 1 once it has
crossed (or never will).  Class 1 therefore never uses a wrap link and
class 0 never uses the link leaving the destination-side segment, so
neither class closes a cycle on any ring.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.network.channel import VCClass
from repro.network.topology import KAryNCube, MINUS, PLUS


def next_hop(topology: KAryNCube, node: int, dst: int) -> Optional[Tuple[int, int]]:
    """Dimension-order next port from ``node`` toward ``dst``.

    Corrects dimensions lowest-first; returns ``None`` at the
    destination.  The direction is the shortest way around the ring
    (positive on ties), matching :meth:`KAryNCube.offset`.
    """
    for dim in range(topology.n):
        off = topology.offset(node, dst, dim)
        if off > 0:
            return (dim, PLUS)
        if off < 0:
            return (dim, MINUS)
    return None


def crosses_wrap(topology: KAryNCube, node: int, dst: int, dim: int,
                 direction: int) -> bool:
    """Whether the remaining ring path ``node -> dst`` along ``dim`` in
    ``direction`` still has to cross the wrap-around (dateline) link.

    The dateline sits on the ``k-1 -> 0`` edge for the positive
    direction and the ``0 -> k-1`` edge for the negative direction.
    """
    k = topology.k
    c = topology.coords(node)[dim]
    t = topology.coords(dst)[dim]
    if c == t:
        return False
    if direction == PLUS:
        return c > t  # must pass k-1 -> 0 before reaching t
    return c < t      # must pass 0 -> k-1 before reaching t


def dateline_class(topology: KAryNCube, node: int, dst: int, dim: int,
                   direction: int) -> VCClass:
    """Deterministic VC class for the hop leaving ``node`` along a ring.

    Class 0 while the wrap crossing is still ahead, class 1 afterwards
    (and for paths that never wrap).
    """
    if crosses_wrap(topology, node, dst, dim, direction):
        return VCClass.DETERMINISTIC_0
    return VCClass.DETERMINISTIC_1


def deterministic_route(topology: KAryNCube, node: int,
                        dst: int) -> Optional[Tuple[int, int, VCClass]]:
    """The deterministic escape hop: port plus dateline class.

    This is the channel Duato's Protocol falls back to when no adaptive
    candidate is available; it is recomputed from the *current* node, so
    a message that progressed adaptively still has a valid escape path.
    """
    hop = next_hop(topology, node, dst)
    if hop is None:
        return None
    dim, direction = hop
    return (dim, direction, dateline_class(topology, node, dst, dim, direction))
