"""Duato's Protocol (DP) — the fully adaptive wormhole baseline [12].

Virtual channels on each physical channel are partitioned into an
*unrestricted* adaptive set (fully adaptive minimal routing) and a
*restricted* deterministic set (dimension-order with dateline classes,
the deadlock-free escape subnetwork).  The selection function prefers a
free adaptive channel; otherwise it takes the deterministic escape
channel, and blocks (wormhole-style) while that channel is busy —
re-examining the adaptive channels every cycle, so the header grabs
whichever frees first.

DP is a pure wormhole protocol: the header travels in-band as the first
flit of the message, data commits immediately, and there is no
backtracking.  It is therefore *not* fault-tolerant — a header that
meets a faulty channel on its only remaining path is undeliverable (the
engine drops it); the paper only evaluates DP in the fault-free network
(Figure 12).
"""

from __future__ import annotations

from repro.core.flow_control import FlowControlConfig
from repro.routing.base import (
    WAIT,
    Action,
    Decision,
    RoutingContext,
)
from repro.routing.selection import adaptive_candidate
from repro.sim.message import Message


class DuatoProtocol:
    """Fully adaptive minimal wormhole routing (Duato's Protocol)."""

    name = "dp"
    inline_header = True

    def __init__(self) -> None:
        self.flow_control = FlowControlConfig.wormhole()

    def on_arrival(self, ctx: RoutingContext, message: Message) -> None:
        """DP keeps no per-hop scratch state."""

    def decide(self, ctx: RoutingContext, message: Message) -> Decision:
        node = message.current_node()
        dst = message.dst

        # Unrestricted partition: any profitable adaptive channel.  DP
        # has no unsafe store, so safety is ignored (require_safe=None).
        candidate = adaptive_candidate(ctx, node, dst, require_safe=None)
        if candidate is not None:
            dim, direction, vc = candidate
            return Decision(
                action=Action.RESERVE, vc=vc, port=(dim, direction), k=0
            )

        # Restricted partition: the dimension-order escape channel.
        det = ctx.cache.escape(node, dst)
        assert det is not None, "decide() must not be called at destination"
        dim, direction, vclass, ch = det
        if ctx.faults.channel_faulty[ch]:
            # A wormhole header cannot retreat; the message is stuck.
            return Decision(
                action=Action.ABORT,
                reason="deterministic channel faulty (DP is not fault-tolerant)",
            )
        vc = ctx.channels.deterministic(ch, vclass)
        if vc.is_free:
            return Decision(
                action=Action.RESERVE, vc=vc, port=(dim, direction), k=0
            )
        # Busy escape channel: block and wait; an adaptive channel that
        # frees first will be taken on a later cycle's re-evaluation.
        return WAIT
