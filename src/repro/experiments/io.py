"""Save / load experiment results as JSON.

Figure regeneration is minutes of simulation; persisting the measured
series lets downstream tooling (plotting, regression comparison against
a previous run) consume them without re-simulating.  The format is a
plain JSON document mirroring :class:`~repro.experiments.common.Experiment`.
"""

from __future__ import annotations

import json
import math
import pathlib
from typing import Union

from repro.experiments.common import Experiment, Point, Series

FORMAT_VERSION = 1


def _point_to_dict(point: Point) -> dict:
    def _clean(value: float):
        if isinstance(value, float) and math.isnan(value):
            return None
        return value

    return {
        "offered_load": point.offered_load,
        "latency": _clean(point.latency),
        "latency_ci": _clean(point.latency_ci),
        "throughput": point.throughput,
        "delivered": point.delivered,
        "dropped": point.dropped,
        "killed": point.killed,
        "extra": point.extra,
    }


def _point_from_dict(data: dict) -> Point:
    def _restore(value):
        return float("nan") if value is None else value

    return Point(
        offered_load=data["offered_load"],
        latency=_restore(data["latency"]),
        latency_ci=_restore(data["latency_ci"]),
        throughput=data["throughput"],
        delivered=data["delivered"],
        dropped=data["dropped"],
        killed=data["killed"],
        extra=dict(data.get("extra", {})),
    )


def experiment_to_dict(exp: Experiment) -> dict:
    return {
        "format_version": FORMAT_VERSION,
        "figure": exp.figure,
        "title": exp.title,
        "scale": exp.scale_name,
        "series": [
            {
                "label": s.label,
                "points": [_point_to_dict(p) for p in s.points],
            }
            for s in exp.series
        ],
    }


def experiment_from_dict(data: dict) -> Experiment:
    version = data.get("format_version")
    if version != FORMAT_VERSION:
        raise ValueError(
            f"unsupported experiment format version {version!r}"
        )
    exp = Experiment(
        figure=data["figure"],
        title=data["title"],
        scale_name=data["scale"],
    )
    for sdata in data["series"]:
        series = Series(label=sdata["label"])
        series.points = [_point_from_dict(p) for p in sdata["points"]]
        exp.series.append(series)
    return exp


def save_experiment(exp: Experiment,
                    path: Union[str, pathlib.Path]) -> pathlib.Path:
    """Write an experiment to a JSON file; returns the path."""
    path = pathlib.Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(experiment_to_dict(exp), indent=2))
    return path


def load_experiment(path: Union[str, pathlib.Path]) -> Experiment:
    """Read an experiment saved by :func:`save_experiment`."""
    data = json.loads(pathlib.Path(path).read_text())
    return experiment_from_dict(data)
