"""ASCII rendering of experiment results.

The benchmark harness prints each figure as aligned tables: one row per
offered-load point and one column group per series, mirroring the
latency-vs-throughput layout of the paper's plots so the curve shapes
(who wins, where saturation falls) can be read directly from the text
output.
"""

from __future__ import annotations

import math
from typing import List, Sequence

from repro.experiments.common import Experiment, Series


def _fmt(value: float, digits: int = 1) -> str:
    if value is None or (isinstance(value, float) and math.isnan(value)):
        return "-"
    return f"{value:.{digits}f}"


def render_series_table(series: Sequence[Series],
                        title: str = "") -> str:
    """Latency/throughput table with one row per load point."""
    lines: List[str] = []
    if title:
        lines.append(title)
    header = ["offered"]
    for s in series:
        header.append(f"{s.label} lat")
        header.append(f"{s.label} tput")
    widths = [max(9, len(h) + 1) for h in header]
    lines.append("".join(h.rjust(w) for h, w in zip(header, widths)))
    n_points = max((len(s.points) for s in series), default=0)
    for i in range(n_points):
        row = []
        offered = next(
            (s.points[i].offered_load for s in series if i < len(s.points)),
            float("nan"),
        )
        row.append(_fmt(offered, 3))
        for s in series:
            if i < len(s.points):
                row.append(_fmt(s.points[i].latency, 1))
                row.append(_fmt(s.points[i].throughput, 4))
            else:
                row.append("-")
                row.append("-")
        lines.append("".join(v.rjust(w) for v, w in zip(row, widths)))
    return "\n".join(lines)


def render_saturation_summary(series: Sequence[Series]) -> str:
    """One line per series: saturation throughput and zero-load latency."""
    lines = ["saturation summary:"]
    for s in series:
        if not s.points:
            continue
        lines.append(
            f"  {s.label:<24} zero-load lat {_fmt(s.points[0].latency)}"
            f"  saturation tput {_fmt(s.saturation_throughput(), 4)}"
        )
    return "\n".join(lines)


def render_experiment(exp: Experiment) -> str:
    """Full report for one figure."""
    parts = [
        f"=== {exp.figure}: {exp.title} [{exp.scale_name} scale] ===",
        render_series_table(exp.series),
        render_saturation_summary(exp.series),
    ]
    return "\n".join(parts)
