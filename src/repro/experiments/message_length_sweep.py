"""Extension: message-length sensitivity of the flow-control choice.

Section 1.0 motivates configurable flow control with the observation
that PCS path setup "can exact significant performance penalties ...
especially for short messages": the setup cost (2l - 1 over wormhole)
is length-independent, so its *relative* cost shrinks as messages grow.
This sweep measures TP and MB-m latency across message lengths at a
fixed moderate load and reports the MB-m/TP latency ratio, which must
fall monotonically (within noise) with length.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.experiments.common import (
    Experiment,
    Point,
    Scale,
    Series,
    experiment_scale,
)
from repro.sim.simulator import NetworkSimulator

LENGTHS = (4, 8, 16, 32, 64)


def run(scale: Optional[Scale] = None,
        lengths: Sequence[int] = LENGTHS,
        load: float = 0.10) -> Experiment:
    scale = scale if scale is not None else experiment_scale()
    exp = Experiment(
        figure="Length sweep",
        title=f"Latency vs message length at load {load} (fault-free)",
        scale_name=scale.name,
    )
    for label, protocol, params in (
        ("TP", "tp", {}),
        ("MB-m", "mb", {}),
    ):
        series = Series(label=label)
        for i, length in enumerate(lengths):
            def run_one(seed: int):
                from repro.experiments.common import base_config

                cfg = base_config(
                    scale, protocol, params,
                    offered_load=load, seed=seed,
                    message_length=length,
                )
                return NetworkSimulator(cfg).run()

            from repro.sim.stats import repeat_until_confident

            rep = repeat_until_confident(
                run_one,
                min_runs=scale.replications,
                max_runs=scale.max_replications,
                base_seed=31 + 11 * i,
            )
            series.points.append(
                Point(
                    offered_load=load,
                    latency=rep.latency_mean,
                    latency_ci=rep.latency_ci95,
                    throughput=rep.throughput_mean,
                    delivered=rep.delivered,
                    dropped=rep.dropped,
                    killed=rep.killed,
                    extra={"length": length},
                )
            )
        exp.series.append(series)
    return exp


def render(exp: Experiment) -> str:
    lines = [f"=== {exp.figure}: {exp.title} [{exp.scale_name} scale] ==="]
    tp, mb = exp.series_by_label("TP"), exp.series_by_label("MB-m")
    lines.append(
        f"{'length':>8}{'TP lat':>10}{'MB-m lat':>10}{'ratio':>8}"
    )
    for tp_pt, mb_pt in zip(tp.points, mb.points):
        ratio = mb_pt.latency / tp_pt.latency
        lines.append(
            f"{int(tp_pt.extra['length']):>8}{tp_pt.latency:>10.1f}"
            f"{mb_pt.latency:>10.1f}{ratio:>8.2f}"
        )
    lines.append(
        "PCS setup cost is length-independent, so the MB-m/TP ratio "
        "falls as messages grow (Section 1.0)."
    )
    return "\n".join(lines)


def main() -> None:  # pragma: no cover - CLI entry
    print(render(run()))


if __name__ == "__main__":  # pragma: no cover
    main()
