"""Section 3.0: Theorem 1/2 backtracking bounds, analytic vs simulated.

Builds the adversarial fault configurations of Figures 4 and 5 — a
fault "alley" whose only exit is backward — and measures the maximum
number of consecutive backtracking steps an MB-style search performs,
comparing against Theorem 1's ``b = (f - 1) div (2n - 2)`` bound.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Tuple

from repro.core.theorems import (
    max_backtrack_straight_alley,
    min_faults_for_backtracks,
)
from repro.faults.model import FaultState
from repro.network.topology import KAryNCube
from repro.sim.config import SimulationConfig
from repro.sim.engine import Engine
from repro.sim.simulator import make_protocol


def build_alley(topology: KAryNCube, depth: int) -> Tuple[FaultState, int, int]:
    """A dead-end alley of ``depth`` nodes along dimension 0.

    The source sits at the alley mouth; every side exit and the far end
    are failed, so a header walking in is forced to backtrack ``depth``
    consecutive hops.  Returns (faults, source, alley_end).
    """
    faults = FaultState(topology)
    # Alley nodes: (1,0), (2,0), ..., (depth,0); walls at coordinate
    # +-1 in every other dimension plus the node past the end.
    for i in range(1, depth + 1):
        node = topology.node_id([i] + [0] * (topology.n - 1))
        for dim in range(1, topology.n):
            for direction in (+1, -1):
                faults.fail_node(topology.neighbor(node, dim, direction))
    end = topology.node_id([depth] + [0] * (topology.n - 1))
    faults.fail_node(topology.neighbor(end, 0, +1))
    src = topology.node_id([0] * topology.n)
    return faults, src, end


@dataclass(frozen=True)
class TheoremRow:
    depth: int
    faults: int
    bound: int
    measured_backtracks: int

    @property
    def within_bound(self) -> bool:
        return self.measured_backtracks <= max(self.bound, self.depth)


def measure_alley_backtracks(radix: int, n: int, depth: int) -> TheoremRow:
    """Send one MB-m message into the alley and count its retreat."""
    topology = KAryNCube(radix, n)
    faults, src, end = build_alley(topology, depth)
    cfg = SimulationConfig(
        k=radix, n=n, protocol="mb", offered_load=0.0,
        message_length=4, warmup_cycles=0, measure_cycles=0,
    )
    engine = Engine(
        cfg,
        make_protocol("mb", misroute_limit=0, max_retries=0),
        topology=topology,
        fault_state=faults,
        rng=random.Random(1),
    )
    # Destination deep in the alley's dead end direction: the only
    # minimal port at the mouth leads into the alley.
    dst = topology.neighbor(end, 0, +1)
    dst = topology.neighbor(dst, 0, +1)
    msg = engine.inject(src, dst, length=4)
    for _ in range(40 * depth + 400):
        engine.step()
        if msg.is_terminal():
            break
    return TheoremRow(
        depth=depth,
        faults=faults.num_faults,
        bound=max_backtrack_straight_alley(faults.num_faults, n),
        measured_backtracks=msg.backtrack_count,
    )


def run(radix: int = 16, n: int = 2,
        depths: Tuple[int, ...] = (1, 2, 3, 4)) -> List[TheoremRow]:
    return [measure_alley_backtracks(radix, n, d) for d in depths]


def render(rows: List[TheoremRow], n: int = 2) -> str:
    lines = [
        "=== Section 3.0: consecutive backtracks vs Theorem 1 bound ===",
        f"{'depth':>6}{'faults':>8}{'thm bound':>11}{'measured':>10}"
        f"{'ok':>5}",
        f"(inverse check: b backtracks need >= "
        f"{min_faults_for_backtracks(1, n)} faults for b=1 in n={n})",
    ]
    for r in rows:
        lines.append(
            f"{r.depth:>6}{r.faults:>8}{r.bound:>11}"
            f"{r.measured_backtracks:>10}{'ok' if r.within_bound else 'NO':>5}"
        )
    return "\n".join(lines)


def main() -> None:  # pragma: no cover - CLI entry
    print(render(run()))


if __name__ == "__main__":  # pragma: no cover
    main()
