"""Extension: hardware acknowledgment signals (Section 7.0 future work).

The paper closes by proposing to implement the positive/negative
acknowledgment flits "in hardware" — a few dedicated control signals on
the physical channel — so that conservative (K > 0) scouting stops
paying link bandwidth for its acknowledgment traffic: "By implementing
acknowledgment flits in hardware, we hope to extend the superior low
load performance of TP to significantly higher loads."

This experiment tests that hypothesis: conservative TP (K = 3) with
multiplexed (flit) acknowledgments against the same protocol with
dedicated ack wires, under static faults across the load sweep.
Expected: identical at low load; the hardware-ack variant holds its
latency advantage deeper into the load range, closing (part of) the gap
to the aggressive K = 0 configuration of Figure 15.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.experiments.common import (
    DEFAULT_LOADS,
    Experiment,
    Point,
    Scale,
    Series,
    experiment_scale,
    run_point,
)


def run(scale: Optional[Scale] = None,
        loads: Sequence[float] = DEFAULT_LOADS,
        paper_faults: int = 10,
        k_unsafe: int = 3) -> Experiment:
    scale = scale if scale is not None else experiment_scale()
    faults = scale.faults(paper_faults)
    exp = Experiment(
        figure="HW-ack ablation",
        title=(
            f"Conservative TP (K={k_unsafe}), flit acks vs dedicated "
            f"ack signals, {paper_faults} paper-scale faults"
        ),
        scale_name=scale.name,
    )
    for label, hardware in (("Flit acks", False), ("HW acks", True)):
        series = Series(label=label)
        for i, load in enumerate(loads):
            rep = run_point(
                scale, "tp", {"k_unsafe": k_unsafe}, load,
                static_faults=faults,
                base_seed=500 + 97 * i,
                hardware_acks=hardware,
            )
            series.points.append(
                Point(
                    offered_load=load,
                    latency=rep.latency_mean,
                    latency_ci=rep.latency_ci95,
                    throughput=rep.throughput_mean,
                    delivered=rep.delivered,
                    dropped=rep.dropped,
                    killed=rep.killed,
                )
            )
        exp.series.append(series)
    return exp


def main() -> None:  # pragma: no cover - CLI entry
    from repro.experiments.report import render_experiment

    print(render_experiment(run()))


if __name__ == "__main__":  # pragma: no cover
    main()
