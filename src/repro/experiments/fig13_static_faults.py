"""Figure 13: latency vs. throughput with static node faults.

TP (aggressive configuration, K = 0, detour-based) against MB-m with
the paper's 1 / 10 / 20 randomly placed failed nodes (scaled by the
node-count ratio at reduced scale).

Expected shape (paper): TP's latency stays below MB-m's at every fault
count and load, but TP's saturation throughput collapses as faults
grow (at 20 faults the paper measures ~17% of the fault-free
saturation), whereas MB-m degrades gracefully in small steps.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.experiments.common import (
    DEFAULT_LOADS,
    Experiment,
    Scale,
    experiment_scale,
    sweep_loads,
)

#: The paper's fault counts for this figure.
PAPER_FAULT_COUNTS = (1, 10, 20)


def run(scale: Optional[Scale] = None,
        loads: Sequence[float] = DEFAULT_LOADS,
        fault_counts: Sequence[int] = PAPER_FAULT_COUNTS) -> Experiment:
    scale = scale if scale is not None else experiment_scale()
    exp = Experiment(
        figure="Figure 13",
        title="Latency vs. Throughput, TP and MB-m with node faults",
        scale_name=scale.name,
    )
    for label, protocol, params in (
        ("TP", "tp", {"k_unsafe": 0}),
        ("MB-m", "mb", {}),
    ):
        for paper_faults in fault_counts:
            faults = scale.faults(paper_faults)
            exp.series.append(
                sweep_loads(
                    scale,
                    f"{label} ({paper_faults}F)",
                    protocol,
                    params,
                    loads=loads,
                    static_faults=faults,
                    base_seed=1000 * paper_faults + 1,
                )
            )
    return exp


def main() -> None:  # pragma: no cover - CLI entry
    from repro.experiments.report import render_experiment

    print(render_experiment(run()))


if __name__ == "__main__":  # pragma: no cover
    main()
