"""Figure 12: latency vs. throughput in the fault-free network.

Compares Two-Phase routing (TP, scouting distance 0 — no acknowledgment
traffic), Duato's Protocol (DP, the wormhole baseline), and MB-m (the
PCS baseline) under uniform traffic with 32-flit messages.

Expected shape (paper): TP's curve is virtually identical to DP's —
the configurable flow control costs nothing in the fault-free case —
while MB-m pays the decoupled path setup and extra control flits with
~3x the zero-load latency and visibly earlier saturation.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.experiments.common import (
    DEFAULT_LOADS,
    Experiment,
    Scale,
    experiment_scale,
    sweep_loads,
)

PROTOCOLS = (
    ("TP", "tp", {"k_unsafe": 0}),
    ("DP", "dp", {}),
    ("MB-m", "mb", {}),
)


def run(scale: Optional[Scale] = None,
        loads: Sequence[float] = DEFAULT_LOADS) -> Experiment:
    scale = scale if scale is not None else experiment_scale()
    exp = Experiment(
        figure="Figure 12",
        title="Latency vs. Throughput, TP / DP / MB-m, fault-free",
        scale_name=scale.name,
    )
    for label, protocol, params in PROTOCOLS:
        exp.series.append(
            sweep_loads(scale, label, protocol, params, loads=loads)
        )
    return exp


def main() -> None:  # pragma: no cover - CLI entry
    from repro.experiments.report import render_experiment

    print(render_experiment(run()))


if __name__ == "__main__":  # pragma: no cover
    main()
