"""Figure 17: dynamic fault tolerance with and without tail acks.

Two-Phase routing under dynamically injected link failures (Figure 16's
kill-flit recovery scenario), comparing the recovery-only design
("w/o TAck": interrupted messages are torn down by kill flits and the
rare loss is accepted) against reliable delivery ("with TAck": every
path is held until the tail reaches the destination, a tail
acknowledgment tears it down, and interrupted messages are
retransmitted from the source).  Following the paper, the dynamic runs
inject f faults probabilistically during the run and are compared
against f/2 static faults — the average number present over the run.

Expected shape (paper): at low loads the reliable-delivery overhead is
insignificant; as injection rates grow the held paths and tail-ack
control traffic throttle injection, so the with-TAck curves saturate
at lower loads with higher latencies.  The feasible operating range of
dynamic fault recovery nevertheless extends almost to saturation.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.experiments.common import (
    DEFAULT_LOADS,
    Experiment,
    Scale,
    experiment_scale,
    sweep_loads,
)
from repro.sim.config import RecoveryConfig

PAPER_FAULT_COUNTS = (1, 10, 20)

VARIANTS = (
    ("w/o TAck", RecoveryConfig(tail_ack=False, retransmit=False)),
    (
        "with TAck",
        RecoveryConfig(tail_ack=True, retransmit=True, max_retransmits=3),
    ),
)


def run(scale: Optional[Scale] = None,
        loads: Sequence[float] = DEFAULT_LOADS,
        fault_counts: Sequence[int] = PAPER_FAULT_COUNTS,
        static_reference: bool = False) -> Experiment:
    """The Figure 17 sweep.

    With ``static_reference`` the dynamic injections are replaced by
    the paper's f/2 static-fault comparison points.
    """
    scale = scale if scale is not None else experiment_scale()
    exp = Experiment(
        figure="Figure 17",
        title="TP under dynamic faults, with vs. without tail acks",
        scale_name=scale.name,
    )
    for label, recovery in VARIANTS:
        for paper_faults in fault_counts:
            faults = scale.faults(paper_faults)
            kwargs = dict(
                loads=loads,
                recovery=recovery,
                base_seed=1000 * paper_faults + 9,
            )
            if static_reference:
                kwargs["static_faults"] = max(1, faults // 2)
            else:
                kwargs["dynamic_faults"] = faults
                kwargs["dynamic_kind"] = "link"
            exp.series.append(
                sweep_loads(
                    scale, f"{label} ({paper_faults}F)", "tp",
                    {"k_unsafe": 0}, **kwargs,
                )
            )
    return exp


def main() -> None:  # pragma: no cover - CLI entry
    from repro.experiments.report import render_experiment

    print(render_experiment(run()))


if __name__ == "__main__":  # pragma: no cover
    main()
