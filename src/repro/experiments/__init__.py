"""Experiment drivers reproducing the paper's evaluation figures.

One module per figure (see DESIGN.md's experiment index):

* :mod:`repro.experiments.formula_table` — Section 2.2 / Figure 1
* :mod:`repro.experiments.theorem_table` — Section 3.0 theorems
* :mod:`repro.experiments.fig12_fault_free` — Figure 12
* :mod:`repro.experiments.fig13_static_faults` — Figure 13
* :mod:`repro.experiments.fig14_fault_sweep` — Figure 14
* :mod:`repro.experiments.fig15_aggressive_vs_conservative` — Figure 15
* :mod:`repro.experiments.fig17_dynamic_faults` — Figure 17
* :mod:`repro.experiments.ablation_k` — design-space ablations
* :mod:`repro.experiments.saturation` — auto-knee saturation sweeps
  over the workload catalog (DESIGN.md §9)
"""

from repro.experiments.common import (
    DEFAULT_LOADS,
    MESSAGE_LENGTH,
    PAPER,
    QUICK,
    REDUCED,
    Experiment,
    Point,
    Scale,
    Series,
    base_config,
    experiment_scale,
    fig14_load,
    run_point,
    sweep_loads,
)
from repro.experiments.saturation import (
    KneeProbe,
    KneeResult,
    find_knee,
)

__all__ = [
    "KneeProbe",
    "KneeResult",
    "find_knee",
    "DEFAULT_LOADS",
    "Experiment",
    "MESSAGE_LENGTH",
    "PAPER",
    "Point",
    "QUICK",
    "REDUCED",
    "Scale",
    "Series",
    "base_config",
    "experiment_scale",
    "fig14_load",
    "run_point",
    "sweep_loads",
]
