"""Figure 15: aggressive (K=0) vs. conservative (K=3) scouting in TP.

Both variants of Two-Phase routing under static node faults: the
aggressive configuration keeps the scouting distance at 0 across unsafe
channels (no acknowledgment flits at all, faults handled purely by
detour construction), while the conservative configuration programs
K = 3 — Theorem 2's sufficient distance — into every channel crossed
after the first unsafe one, paying acknowledgment traffic for cheaper
fault handling.

Expected shape (paper): with one fault and low traffic the two versions
coincide; with many faults and high traffic the aggressive variant is
considerably better, because the K > 0 acknowledgment flit traffic
dominates the cost of the extra detours it avoids.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.experiments.common import (
    DEFAULT_LOADS,
    Experiment,
    Scale,
    experiment_scale,
    sweep_loads,
)

PAPER_FAULT_COUNTS = (1, 10, 20)

VARIANTS = (
    ("Aggressive", {"k_unsafe": 0}),
    ("Conservative", {"k_unsafe": 3}),
)


def run(scale: Optional[Scale] = None,
        loads: Sequence[float] = DEFAULT_LOADS,
        fault_counts: Sequence[int] = PAPER_FAULT_COUNTS) -> Experiment:
    scale = scale if scale is not None else experiment_scale()
    exp = Experiment(
        figure="Figure 15",
        title="Aggressive (K=0) vs. Conservative (K=3) scouting, TP",
        scale_name=scale.name,
    )
    for label, params in VARIANTS:
        for paper_faults in fault_counts:
            faults = scale.faults(paper_faults)
            exp.series.append(
                sweep_loads(
                    scale,
                    f"{label} ({paper_faults}F)",
                    "tp",
                    params,
                    loads=loads,
                    static_faults=faults,
                    base_seed=1000 * paper_faults + 3,
                )
            )
    return exp


def main() -> None:  # pragma: no cover - CLI entry
    from repro.experiments.report import render_experiment

    print(render_experiment(run()))


if __name__ == "__main__":  # pragma: no cover
    main()
