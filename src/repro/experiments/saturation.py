"""Auto-knee saturation sweeps per traffic pattern (DESIGN.md §9).

The paper's latency-throughput figures read the saturation point off a
fixed load grid; :func:`find_knee` locates it adaptively instead.  A
load is *saturated* when its mean latency exceeds ``latency_factor``
(default 3.0 — the same criterion as
:meth:`repro.experiments.common.Series.saturation_throughput`) times
the zero-load latency, or when the network never drains at all.  The
driver measures the zero-load baseline, brackets the knee by doubling
the load until a probe saturates, then bisects the bracket until it is
narrower than ``tolerance`` — so the reported knee is within one
bisection step of the true crossing.

CLI: ``repro-sim sweep --pattern hotspot --find-knee``.  The module's
``main()`` sweeps every catalog pattern and writes a
``BENCH_saturation.json`` snapshot diffable with
``benchmarks/compare_bench.py --key knee_throughput``.
"""

from __future__ import annotations

import json
import math
import sys
import warnings
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.experiments.common import (
    Scale,
    experiment_scale,
    run_point,
)

#: Latency multiple over the zero-load baseline that defines saturation
#: (matches ``Series.saturation_throughput``).
DEFAULT_LATENCY_FACTOR = 3.0
#: Zero-load probe (flits/node/cycle) used to measure the baseline.
DEFAULT_LOW_LOAD = 0.02
#: Bracketing never pushes the offered load past this.
DEFAULT_MAX_LOAD = 0.72
#: Bisection stops when the bracket is narrower than this.
DEFAULT_TOLERANCE = 0.02

#: Patterns swept by :func:`main` (catalog order; see EXPERIMENTS.md).
CATALOG = ("uniform", "hotspot", "transpose", "complement", "bursty")


@dataclass
class KneeProbe:
    """One measured load during bracketing/bisection."""

    offered_load: float
    latency: float
    throughput: float
    saturated: bool


@dataclass
class KneeResult:
    """The located saturation knee for one (pattern, protocol) pair."""

    pattern: str
    protocol: str
    scale_name: str
    #: Highest probed load still below the saturation criterion.
    knee_load: float
    #: Accepted throughput (flits/node/cycle) at ``knee_load``.
    knee_throughput: float
    #: Mean latency at the zero-load probe.
    base_latency: float
    latency_factor: float
    tolerance: float
    #: Every probe, in measurement order (baseline first).
    probes: List[KneeProbe] = field(default_factory=list)

    @property
    def bracket(self) -> tuple:
        """(last unsaturated load, first saturated load) — the knee
        lies inside; the gap is at most ``tolerance`` unless bracketing
        hit the load ceiling without ever saturating."""
        lo = max(p.offered_load for p in self.probes if not p.saturated)
        sat = [p.offered_load for p in self.probes if p.saturated]
        return (lo, min(sat) if sat else float("inf"))


def _probe(
    scale: Scale,
    protocol: str,
    protocol_params: Optional[dict],
    load: float,
    traffic: str,
    traffic_params: Optional[dict],
    threshold: float,
    base_seed: int,
    jobs: Optional[int],
) -> KneeProbe:
    """Measure one load; never-drained points count as saturated."""
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", RuntimeWarning)
        try:
            rep = run_point(
                scale, protocol, protocol_params, load,
                traffic=traffic, traffic_params=traffic_params,
                base_seed=base_seed, jobs=jobs,
            )
        except RuntimeError:
            # Every replication failed to drain: far past the knee.
            return KneeProbe(load, float("inf"), float("nan"), True)
    latency = rep.latency_mean
    saturated = math.isnan(latency) or latency > threshold
    return KneeProbe(load, latency, rep.throughput_mean, saturated)


def find_knee(
    scale: Scale,
    protocol: str,
    protocol_params: Optional[dict] = None,
    traffic: str = "uniform",
    traffic_params: Optional[dict] = None,
    latency_factor: float = DEFAULT_LATENCY_FACTOR,
    low_load: float = DEFAULT_LOW_LOAD,
    max_load: float = DEFAULT_MAX_LOAD,
    tolerance: float = DEFAULT_TOLERANCE,
    base_seed: int = 1,
    jobs: Optional[int] = None,
) -> KneeResult:
    """Locate the saturation knee for one traffic pattern.

    Three stages, each reusing :func:`run_point` (so every probe gets
    the paper's replication-until-confident treatment):

    1. **Baseline** — measure latency at ``low_load``; the saturation
       threshold is ``latency_factor`` times that.
    2. **Bracket** — double the load from ``low_load`` until a probe
       saturates (or ``max_load`` is reached, in which case the
       network never saturated in range and the highest load is the
       knee).
    3. **Bisect** — shrink the (unsaturated, saturated) bracket until
       it is narrower than ``tolerance``.

    Every probe at a distinct load uses a distinct ``base_seed`` offset
    so replications never share seeds across loads.

    Raises :class:`ValueError` on a non-positive ``tolerance`` (the
    bisection would never terminate) or an empty load range, and
    :class:`RuntimeError` when no knee exists in range: the zero-load
    baseline itself never drains (or delivers nothing), or every probe
    above ``low_load`` saturates so the knee was never bracketed from
    below — in both cases the honest answer is "the knee lies at or
    below the probe floor", not a fabricated ``knee_load == low_load``.
    """
    if not (math.isfinite(tolerance) and tolerance > 0):
        raise ValueError(
            f"tolerance must be finite and > 0, got {tolerance} "
            "(bisection would never terminate)"
        )
    if not 0 < low_load < max_load:
        raise ValueError(
            f"need 0 < low_load < max_load, got low_load={low_load}, "
            f"max_load={max_load}"
        )
    probes: List[KneeProbe] = []

    def measure(load: float, threshold: float) -> KneeProbe:
        p = _probe(
            scale, protocol, protocol_params, load, traffic,
            traffic_params, threshold,
            base_seed + 1000 * len(probes), jobs,
        )
        probes.append(p)
        return p

    base = measure(low_load, float("inf"))
    if math.isinf(base.latency):
        # _probe maps an all-replications-undrained run_point to an
        # infinite-latency probe; at the baseline that means the
        # network is wedged below the probe floor.
        raise RuntimeError(
            f"pattern {traffic!r}: no replication drained at the "
            f"zero-load baseline probe ({low_load}); the network "
            "saturates below the probe floor — lower low_load"
        )
    if math.isnan(base.latency):
        raise RuntimeError(
            f"pattern {traffic!r}: the zero-load baseline probe "
            f"({low_load}) delivered no messages, so there is no "
            "baseline latency to define the saturation threshold — "
            "lower low_load or lengthen the measurement window"
        )
    threshold = latency_factor * base.latency

    # Bracket: double until saturated or out of range.
    lo = low_load
    lo_probe = base
    hi = min(2 * low_load, max_load)
    while True:
        p = measure(hi, threshold)
        if p.saturated:
            break
        lo, lo_probe = hi, p
        if hi >= max_load:
            hi = float("inf")  # never saturated in range
            break
        hi = min(2 * hi, max_load)

    # Bisect the bracket down to the tolerance.
    if math.isfinite(hi):
        while hi - lo > tolerance:
            mid = (lo + hi) / 2
            p = measure(mid, threshold)
            if p.saturated:
                hi = mid
            else:
                lo, lo_probe = mid, p

    # ``lo`` only moves off ``low_load`` when a probe *above* the
    # baseline came back unsaturated.  If it never did, the knee was
    # never bracketed from below: the baseline cannot certify its own
    # load (it is measured against an infinite threshold), so
    # returning ``knee_load == low_load`` would fabricate a knee for a
    # network that may saturate below the probe floor.
    if math.isfinite(hi) and lo == low_load:
        raise RuntimeError(
            f"pattern {traffic!r}: the first probe above the baseline "
            f"already saturated and bisection found no unsaturated "
            f"load in ({low_load}, {hi:.6g}); the knee lies at or "
            "below the zero-load probe — lower low_load"
        )

    return KneeResult(
        pattern=traffic,
        protocol=protocol,
        scale_name=scale.name,
        knee_load=lo,
        knee_throughput=lo_probe.throughput,
        base_latency=base.latency,
        latency_factor=latency_factor,
        tolerance=tolerance,
        probes=probes,
    )


def render(results: List[KneeResult]) -> str:
    """Aligned ASCII table of located knees."""
    header = (
        f"{'pattern':<12} {'protocol':>8} {'knee load':>10} "
        f"{'knee tput':>10} {'base lat':>9} {'probes':>6}"
    )
    lines = [header, "-" * len(header)]
    for r in results:
        lines.append(
            f"{r.pattern:<12} {r.protocol:>8} {r.knee_load:>10.4f} "
            f"{r.knee_throughput:>10.4f} {r.base_latency:>9.1f} "
            f"{len(r.probes):>6}"
        )
    return "\n".join(lines)


def snapshot(results: List[KneeResult]) -> Dict:
    """A ``BENCH_saturation.json`` payload.

    Shaped like ``BENCH_engine.json`` — a ``workloads`` list keyed by
    ``workload`` name — so ``benchmarks/compare_bench.py`` diffs two
    snapshots directly (``--key knee_throughput`` or
    ``--key knee_load``).
    """
    return {
        "scale": results[0].scale_name if results else None,
        "workloads": [
            {
                "workload": f"{r.pattern}/{r.protocol}",
                "knee_load": r.knee_load,
                "knee_throughput": r.knee_throughput,
                "base_latency": r.base_latency,
                "probes": len(r.probes),
            }
            for r in results
        ],
    }


def main(argv: Optional[List[str]] = None) -> int:
    """Sweep the workload catalog and write the knee snapshot."""
    import argparse

    parser = argparse.ArgumentParser(
        description="Auto-knee saturation sweep over the workload catalog."
    )
    parser.add_argument("--protocol", default="tp")
    parser.add_argument("--patterns", default=",".join(CATALOG))
    parser.add_argument("--tolerance", type=float,
                        default=DEFAULT_TOLERANCE)
    parser.add_argument("--jobs", type=int, default=None)
    parser.add_argument("--out", default=None,
                        help="write BENCH_saturation.json here")
    args = parser.parse_args(argv)

    scale = experiment_scale()
    params = {"k_unsafe": 0} if args.protocol == "tp" else {}
    results = []
    for pattern in args.patterns.split(","):
        results.append(
            find_knee(
                scale, args.protocol, params, traffic=pattern,
                tolerance=args.tolerance, jobs=args.jobs,
            )
        )
    print(render(results))
    if args.out:
        with open(args.out, "w") as fh:
            json.dump(snapshot(results), fh, indent=2)
            fh.write("\n")
        print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
