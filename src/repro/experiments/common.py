"""Shared machinery for the paper's evaluation experiments (Section 6.0).

Every figure driver builds on the same pieces:

* :func:`experiment_scale` — laptop-scale defaults (8-ary 2-cube,
  shorter runs, fault counts scaled by node ratio) with the paper's
  full 16-ary 2-cube restored under ``REPRO_PAPER_SCALE=1``;
* :func:`run_point` — one (protocol, load, faults) point, replicated
  until the 95% latency CI is below 5% of the mean (the paper's
  stopping rule), returning a :class:`Point`;
* :class:`Series` / :class:`Experiment` — the figure's data, printable
  as an aligned ASCII table via :mod:`repro.experiments.report`.

Load conventions follow the paper: offered load in flits/node/cycle;
Figure 14's parenthesized loads are messages/node/5000 cycles
(``m * 32 / 5000`` flits/node/cycle for 32-flit messages).
"""

from __future__ import annotations

import math
import os
import warnings
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.sim.config import FaultConfig, RecoveryConfig, SimulationConfig
from repro.sim.parallel import replicate_parallel, resolve_jobs
from repro.sim.simulator import NetworkSimulator
from repro.sim.stats import (
    ReplicatedResult,
    repeat_until_confident,
)


@dataclass(frozen=True)
class Scale:
    """Experiment sizing: reduced by default, paper-scale on request."""

    k: int
    n: int
    warmup: int
    measure: int
    drain: int
    replications: int
    max_replications: int
    #: Factor applied to the paper's fault counts (node-count ratio).
    fault_scale: float
    name: str

    def faults(self, paper_count: int) -> int:
        """Scale one of the paper's fault counts to this network size."""
        if paper_count == 0:
            return 0
        return max(1, round(paper_count * self.fault_scale))

    @property
    def num_nodes(self) -> int:
        return self.k**self.n


REDUCED = Scale(
    k=8, n=2, warmup=600, measure=2500, drain=4000,
    replications=2, max_replications=4, fault_scale=0.25, name="reduced",
)
PAPER = Scale(
    k=16, n=2, warmup=2000, measure=10_000, drain=12_000,
    replications=2, max_replications=6, fault_scale=1.0, name="paper",
)
QUICK = Scale(
    k=5, n=2, warmup=300, measure=1200, drain=2000,
    replications=1, max_replications=2, fault_scale=0.1, name="quick",
)


def experiment_scale() -> Scale:
    """Pick the experiment scale from the environment.

    ``REPRO_PAPER_SCALE=1`` → the paper's 16-ary 2-cube setup;
    ``REPRO_QUICK=1`` → tiny smoke-test scale; otherwise the reduced
    8-ary 2-cube default.
    """
    if os.environ.get("REPRO_PAPER_SCALE") == "1":
        return PAPER
    if os.environ.get("REPRO_QUICK") == "1":
        return QUICK
    return REDUCED


#: The paper's message length (flits) with a one-flit routing header.
MESSAGE_LENGTH = 32

#: Offered-load sweep (flits/node/cycle) for latency-throughput curves;
#: spans zero-load through past saturation as in Figures 12/13.
DEFAULT_LOADS = (0.02, 0.05, 0.10, 0.15, 0.20, 0.28, 0.36)


def fig14_load(messages_per_5000: int) -> float:
    """Figure 14's load unit: messages/node/5000 cycles → flits/node/cycle."""
    return messages_per_5000 * MESSAGE_LENGTH / 5000.0


def base_config(scale: Scale, protocol: str,
                protocol_params: Optional[dict] = None,
                **overrides) -> SimulationConfig:
    """The common Section 6.0 configuration at the given scale.

    ``overrides`` are arbitrary :class:`SimulationConfig` fields —
    ``traffic``/``traffic_params`` select a workload pattern from the
    catalog (EXPERIMENTS.md); the default is the paper's uniform
    Bernoulli workload.
    """
    cfg = SimulationConfig(
        k=scale.k,
        n=scale.n,
        protocol=protocol,
        protocol_params=dict(protocol_params or {}),
        message_length=MESSAGE_LENGTH,
        traffic="uniform",
        warmup_cycles=scale.warmup,
        measure_cycles=scale.measure,
        drain_cycles=scale.drain,
        injection_queue_limit=8,
    )
    return cfg.with_(**overrides) if overrides else cfg


@dataclass
class Point:
    """One measured point of a figure."""

    offered_load: float
    latency: float
    latency_ci: float
    throughput: float
    delivered: int
    dropped: int
    killed: int
    extra: Dict[str, float] = field(default_factory=dict)


@dataclass
class Series:
    """One curve of a figure (e.g. "TP (10F)")."""

    label: str
    points: List[Point] = field(default_factory=list)

    def saturation_throughput(self, latency_factor: float = 3.0) -> float:
        """Throughput at the knee of the latency-throughput curve.

        The paper defines saturation as the load above which latency
        rises dramatically with little throughput gain; we report the
        highest measured throughput whose latency stays within
        ``latency_factor`` of the zero-load latency.
        """
        if not self.points:
            return float("nan")
        base = self.points[0].latency
        best = 0.0
        for pt in self.points:
            if not math.isnan(pt.latency) and pt.latency <= latency_factor * base:
                best = max(best, pt.throughput)
        return best


@dataclass
class Experiment:
    """A figure's worth of series plus its identity."""

    figure: str
    title: str
    scale_name: str
    series: List[Series] = field(default_factory=list)

    def series_by_label(self, label: str) -> Series:
        for s in self.series:
            if s.label == label:
                return s
        raise KeyError(label)


def run_point(
    scale: Scale,
    protocol: str,
    protocol_params: Optional[dict],
    offered_load: float,
    static_faults: int = 0,
    dynamic_faults: int = 0,
    dynamic_kind: str = "link",
    recovery: Optional[RecoveryConfig] = None,
    base_seed: int = 1,
    target_ci: float = 0.05,
    hardware_acks: bool = False,
    traffic: str = "uniform",
    traffic_params: Optional[dict] = None,
    jobs: Optional[int] = None,
) -> ReplicatedResult:
    """One experiment point, replicated per the paper's CI rule.

    ``jobs`` (default: the ``REPRO_JOBS`` environment variable, else
    serial) fans the replications out over a process pool; the
    truncation rule in :mod:`repro.sim.parallel` guarantees the same
    :class:`ReplicatedResult` as the serial path.

    Replications whose network failed to drain contribute truncated
    latency samples; they are counted and warned about, and the point
    fails outright (``RuntimeError``) when *every* replication is
    undrained — such a point would be pure noise.
    """
    def make_cfg(seed: int) -> SimulationConfig:
        cfg = base_config(
            scale, protocol, protocol_params,
            offered_load=offered_load,
            seed=seed,
            hardware_acks=hardware_acks,
            traffic=traffic,
            traffic_params=dict(traffic_params or {}),
        )
        fault_cfg = FaultConfig(
            static_node_faults=static_faults,
            dynamic_faults=dynamic_faults,
            dynamic_kind=dynamic_kind,
            dynamic_start=scale.warmup,
        )
        cfg = cfg.with_(faults=fault_cfg)
        if recovery is not None:
            cfg = cfg.with_(recovery=recovery)
        return cfg

    if resolve_jobs(jobs) > 1:
        rep = replicate_parallel(
            make_cfg,
            min_runs=scale.replications,
            max_runs=scale.max_replications,
            target_relative_ci=target_ci,
            base_seed=base_seed,
            jobs=jobs,
        )
    else:
        rep = repeat_until_confident(
            lambda seed: NetworkSimulator(make_cfg(seed)).run(),
            min_runs=scale.replications,
            max_runs=scale.max_replications,
            target_relative_ci=target_ci,
            base_seed=base_seed,
        )

    undrained = rep.undrained_runs
    if undrained == len(rep.runs):
        raise RuntimeError(
            f"experiment point (protocol={protocol!r}, "
            f"load={offered_load}) never drained in any of "
            f"{len(rep.runs)} replications; its latency samples are "
            "truncated — increase drain_cycles or lower the load"
        )
    if undrained:
        warnings.warn(
            f"experiment point (protocol={protocol!r}, "
            f"load={offered_load}): {undrained}/{len(rep.runs)} "
            "replications did not drain; latency samples from those "
            "runs are truncated",
            RuntimeWarning,
            stacklevel=2,
        )
    return rep


def sweep_loads(
    scale: Scale,
    label: str,
    protocol: str,
    protocol_params: Optional[dict] = None,
    loads: Sequence[float] = DEFAULT_LOADS,
    base_seed: int = 1,
    jobs: Optional[int] = None,
    **point_kwargs,
) -> Series:
    """A latency-throughput curve: one point per offered load."""
    series = Series(label=label)
    for i, load in enumerate(loads):
        rep = run_point(
            scale, protocol, protocol_params, load,
            base_seed=base_seed + 100 * i, jobs=jobs, **point_kwargs,
        )
        series.points.append(
            Point(
                offered_load=load,
                latency=rep.latency_mean,
                latency_ci=rep.latency_ci95,
                throughput=rep.throughput_mean,
                delivered=rep.delivered,
                dropped=rep.dropped,
                killed=rep.killed,
            )
        )
    return series
