"""Section 2.2 / Figure 1: minimum-latency table for WR, SR(K), PCS.

Regenerates the time-space comparison of Figure 1 as a table of
minimum latencies — analytic formula next to the value measured by a
single-message, idle-network simulation — over a grid of path lengths,
message lengths, and scouting distances.  Every (analytic, measured)
pair must agree exactly; this is the simulator's validation table.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Sequence

from repro.core.latency_model import t_pcs, t_scouting, t_wormhole
from repro.sim.config import SimulationConfig
from repro.sim.engine import Engine
from repro.sim.simulator import make_protocol


@dataclass(frozen=True)
class FormulaRow:
    mechanism: str
    links: int
    length: int
    k: int
    analytic: int
    measured: int

    @property
    def match(self) -> bool:
        return self.analytic == self.measured


def measure_single_message(flow: str, links: int, length: int,
                           k: int = 3, radix: int = 16) -> int:
    """Idle-network latency of one message over ``links`` hops."""
    cfg = SimulationConfig(
        k=radix, n=2, protocol="det", offered_load=0.0,
        message_length=length, warmup_cycles=0, measure_cycles=0,
    )
    params = {"flow": flow}
    if flow == "sr":
        params["k"] = k
    engine = Engine(cfg, make_protocol("det", **params),
                    rng=random.Random(1))
    msg = engine.inject(0, links, length=length)
    budget = 6 * links + 4 * length + 8 * max(k, 1) + 60
    for _ in range(budget):
        engine.step()
        if msg.is_terminal():
            break
    if msg.status.name != "DELIVERED":
        raise RuntimeError(f"single message not delivered: {msg!r}")
    return msg.delivered_cycle - msg.created_cycle


def analytic(flow: str, links: int, length: int, k: int = 3) -> int:
    if flow == "wr":
        return t_wormhole(links, length)
    if flow == "pcs":
        return t_pcs(links, length)
    if flow == "sr":
        # On a short path SR degenerates to PCS (Section 2.2).
        if k <= links:
            return t_scouting(links, length, k)
        return t_pcs(links, length)
    raise ValueError(flow)


def run(link_grid: Sequence[int] = (1, 2, 4, 7),
        length_grid: Sequence[int] = (1, 8, 32),
        k_grid: Sequence[int] = (1, 3)) -> List[FormulaRow]:
    rows: List[FormulaRow] = []
    for links in link_grid:
        for length in length_grid:
            for flow, k in (
                [("wr", 0), ("pcs", 0)] + [("sr", k) for k in k_grid]
            ):
                rows.append(
                    FormulaRow(
                        mechanism=flow.upper(),
                        links=links,
                        length=length,
                        k=k,
                        analytic=analytic(flow, links, length, k),
                        measured=measure_single_message(
                            flow, links, length, k
                        ),
                    )
                )
    return rows


def render(rows: List[FormulaRow]) -> str:
    lines = [
        "=== Section 2.2 / Figure 1: minimum latency, analytic vs measured ===",
        f"{'mech':>6}{'l':>4}{'L':>4}{'K':>4}{'analytic':>10}"
        f"{'measured':>10}{'match':>7}",
    ]
    for r in rows:
        lines.append(
            f"{r.mechanism:>6}{r.links:>4}{r.length:>4}{r.k:>4}"
            f"{r.analytic:>10}{r.measured:>10}{'ok' if r.match else 'FAIL':>7}"
        )
    mismatches = sum(1 for r in rows if not r.match)
    lines.append(f"{len(rows)} rows, {mismatches} mismatches")
    return "\n".join(lines)


def main() -> None:  # pragma: no cover - CLI entry
    print(render(run()))


if __name__ == "__main__":  # pragma: no cover
    main()
