"""Figure 14: latency and throughput as a function of node faults.

TP (aggressive) and MB-m swept over the number of failed nodes at four
fixed offered loads; the paper parameterizes load as messages per node
per 5000 cycles (1, 10, 30, 50 — i.e. 0.0064 to 0.32 flits/node/cycle
with 32-flit messages).

Expected shape (paper): MB-m's latency stays nearly flat as faults
grow at low loads, with small steady throughput drops; TP is clearly
better at low fault counts but its throughput falls steeply as the
fault count climbs toward 20 (detour construction and searching
dominate), which is the paper's central trade-off.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.experiments.common import (
    Experiment,
    Point,
    Scale,
    Series,
    experiment_scale,
    fig14_load,
    run_point,
)

#: The paper's offered loads in messages/node/5000 cycles.
PAPER_LOADS_MSG_PER_5000 = (1, 10, 30, 50)

#: The paper sweeps 0..20 failed nodes.
PAPER_FAULT_SWEEP = (0, 2, 5, 10, 15, 20)


def run(scale: Optional[Scale] = None,
        loads_msg: Sequence[int] = PAPER_LOADS_MSG_PER_5000,
        fault_sweep: Sequence[int] = PAPER_FAULT_SWEEP) -> Experiment:
    scale = scale if scale is not None else experiment_scale()
    exp = Experiment(
        figure="Figure 14",
        title="Latency and Throughput vs. Node Faults, TP and MB-m",
        scale_name=scale.name,
    )
    for label, protocol, params in (
        ("TP", "tp", {"k_unsafe": 0}),
        ("MB-m", "mb", {}),
    ):
        for msgs in loads_msg:
            series = Series(label=f"{label} ({msgs})")
            load = fig14_load(msgs)
            for paper_faults in fault_sweep:
                faults = scale.faults(paper_faults)
                rep = run_point(
                    scale, protocol, params, load,
                    static_faults=faults,
                    base_seed=7000 + 31 * paper_faults,
                )
                series.points.append(
                    Point(
                        offered_load=load,
                        latency=rep.latency_mean,
                        latency_ci=rep.latency_ci95,
                        throughput=rep.throughput_mean,
                        delivered=rep.delivered,
                        dropped=rep.dropped,
                        killed=rep.killed,
                        extra={"node_faults": paper_faults},
                    )
                )
            exp.series.append(series)
    return exp


def render(exp: Experiment) -> str:
    """Figure 14's layout: rows are fault counts, columns are loads."""
    lines = [f"=== {exp.figure}: {exp.title} [{exp.scale_name} scale] ==="]
    if not exp.series:
        return lines[0]
    fault_axis = [
        int(pt.extra["node_faults"]) for pt in exp.series[0].points
    ]
    for metric, digits in (("latency", 1), ("throughput", 4)):
        lines.append(f"-- {metric} vs node faults --")
        header = ["faults"] + [s.label for s in exp.series]
        widths = [max(11, len(h) + 2) for h in header]
        lines.append("".join(h.rjust(w) for h, w in zip(header, widths)))
        for i, f in enumerate(fault_axis):
            row = [str(f)]
            for s in exp.series:
                value = getattr(s.points[i], metric)
                row.append(f"{value:.{digits}f}")
            lines.append("".join(v.rjust(w) for v, w in zip(row, widths)))
    return "\n".join(lines)


def main() -> None:  # pragma: no cover - CLI entry
    print(render(run()))


if __name__ == "__main__":  # pragma: no cover
    main()
