"""Ablation: scouting distance K and misroute budget m (Section 6.2).

The paper's closing discussion ("a relatively more conservative version
could have been configured...") motivates two sweeps beyond Figure 15:

* **K sweep** — TP with k_unsafe in {0, 1, 3, 5} at a fixed fault count
  and load: larger K trades acknowledgment traffic for cheaper
  backtracking (fewer detours).
* **m sweep** — the detour misroute budget in {1, 2, 4, 6}: Theorem 2
  says 6 guarantees delivery under the 2n-1 fault budget; smaller
  budgets force earlier backtracking and more retries.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.experiments.common import (
    Experiment,
    Point,
    Scale,
    Series,
    experiment_scale,
    run_point,
)

K_VALUES = (0, 1, 3, 5)
M_VALUES = (1, 2, 4, 6)


def run(scale: Optional[Scale] = None,
        paper_faults: int = 10,
        load: float = 0.15,
        k_values: Sequence[int] = K_VALUES,
        m_values: Sequence[int] = M_VALUES) -> Experiment:
    scale = scale if scale is not None else experiment_scale()
    faults = scale.faults(paper_faults)
    exp = Experiment(
        figure="Ablation",
        title=(
            f"TP design-space sweep (K, m) at {paper_faults} paper-scale "
            f"faults, load {load}"
        ),
        scale_name=scale.name,
    )

    k_series = Series(label="K sweep")
    for k in k_values:
        rep = run_point(
            scale, "tp", {"k_unsafe": k}, load,
            static_faults=faults, base_seed=17 + k,
        )
        k_series.points.append(
            Point(
                offered_load=load,
                latency=rep.latency_mean,
                latency_ci=rep.latency_ci95,
                throughput=rep.throughput_mean,
                delivered=rep.delivered,
                dropped=rep.dropped,
                killed=rep.killed,
                extra={"K": k},
            )
        )
    exp.series.append(k_series)

    m_series = Series(label="m sweep")
    for m in m_values:
        rep = run_point(
            scale, "tp", {"k_unsafe": 0, "misroute_limit": m}, load,
            static_faults=faults, base_seed=57 + m,
        )
        m_series.points.append(
            Point(
                offered_load=load,
                latency=rep.latency_mean,
                latency_ci=rep.latency_ci95,
                throughput=rep.throughput_mean,
                delivered=rep.delivered,
                dropped=rep.dropped,
                killed=rep.killed,
                extra={"m": m},
            )
        )
    exp.series.append(m_series)
    return exp


def render(exp: Experiment) -> str:
    lines = [f"=== {exp.figure}: {exp.title} [{exp.scale_name} scale] ==="]
    for series in exp.series:
        lines.append(f"-- {series.label} --")
        key = "K" if series.label.startswith("K") else "m"
        lines.append(
            f"{key:>4}{'latency':>12}{'tput':>10}{'dropped':>9}"
        )
        for pt in series.points:
            lines.append(
                f"{int(pt.extra[key]):>4}{pt.latency:>12.1f}"
                f"{pt.throughput:>10.4f}{pt.dropped:>9}"
            )
    return "\n".join(lines)


def main() -> None:  # pragma: no cover - CLI entry
    print(render(run()))


if __name__ == "__main__":  # pragma: no cover
    main()
