"""Network substrate: topology, virtual channels, physical links."""

from repro.network.channel import (
    ChannelBank,
    ChannelStateError,
    VCClass,
    VCState,
    VirtualChannel,
)
from repro.network.link import ControlQueue, RoundRobinArbiter
from repro.network.topology import Channel, KAryNCube, MINUS, PLUS

__all__ = [
    "Channel",
    "ChannelBank",
    "ChannelStateError",
    "ControlQueue",
    "KAryNCube",
    "MINUS",
    "PLUS",
    "RoundRobinArbiter",
    "VCClass",
    "VCState",
    "VirtualChannel",
]
