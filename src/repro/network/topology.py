"""Torus-connected k-ary n-cube topology (paper Section 2.1).

A k-ary n-cube is a direct network with ``n`` dimensions and ``k`` nodes
per dimension; every node connects to its two neighbors (modulo ``k``)
in each dimension over full-duplex physical links.  Nodes are identified
both by a flat integer id in ``[0, k**n)`` and by an ``n``-tuple of
per-dimension coordinates; this module provides the conversions,
neighborhood structure, and minimal-path geometry (signed offsets,
shortest distances) that every routing protocol in the package builds
on.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Iterator, List, Sequence, Tuple

#: Direction along a dimension: +1 moves to ``(coord + 1) mod k``,
#: -1 moves to ``(coord - 1) mod k``.
PLUS = +1
MINUS = -1

DIRECTIONS = (PLUS, MINUS)


@dataclass(frozen=True)
class Channel:
    """A unidirectional physical channel ``src -> dst``.

    ``dim``/``direction`` describe the move in topology coordinates:
    following the channel changes coordinate ``dim`` of ``src`` by
    ``direction`` (modulo k).
    """

    src: int
    dst: int
    dim: int
    direction: int

    def reverse_key(self) -> Tuple[int, int, int]:
        """Key ``(src, dim, direction)`` of the opposite channel."""
        return (self.dst, self.dim, -self.direction)


class KAryNCube:
    """Geometry of a torus-connected k-ary n-cube.

    Parameters
    ----------
    k:
        Radix — number of nodes along each dimension (k >= 2).
    n:
        Number of dimensions (n >= 1).

    Notes
    -----
    With ``k == 2`` the +1 and -1 neighbors coincide; the paper's
    networks use ``k >= 3`` (16-ary 2-cube in the evaluation), and this
    class requires ``k >= 3`` so that every node has exactly ``2n``
    distinct neighbors, matching the fault analysis of Section 3.0.
    """

    def __init__(self, k: int, n: int):
        if k < 3:
            raise ValueError(f"radix k must be >= 3, got {k}")
        if n < 1:
            raise ValueError(f"dimension count n must be >= 1, got {n}")
        self.k = k
        self.n = n
        self.num_nodes = k**n
        # Strides for flat-id <-> coordinate conversion: dimension 0 is
        # the fastest-varying coordinate.
        self._strides = [k**d for d in range(n)]
        self._channels = self._build_channels()
        self._channel_index = {
            (c.src, c.dim, c.direction): i for i, c in enumerate(self._channels)
        }
        # Geometry memo tables: offsets / profitable ports are pure
        # functions of (src, dst) on an immutable topology and sit on
        # the router decision hot path.  At most num_nodes^2 entries.
        self._offsets_cache: dict = {}
        self._profitable_cache: dict = {}

    # ------------------------------------------------------------------
    # Coordinates
    # ------------------------------------------------------------------
    def coords(self, node: int) -> Tuple[int, ...]:
        """Per-dimension coordinates of a flat node id."""
        self._check_node(node)
        return tuple((node // self._strides[d]) % self.k for d in range(self.n))

    def node_id(self, coords: Sequence[int]) -> int:
        """Flat node id of a coordinate tuple (coordinates taken mod k)."""
        if len(coords) != self.n:
            raise ValueError(
                f"expected {self.n} coordinates, got {len(coords)}"
            )
        return sum((c % self.k) * self._strides[d] for d, c in enumerate(coords))

    def _check_node(self, node: int) -> None:
        if not 0 <= node < self.num_nodes:
            raise ValueError(
                f"node {node} out of range for {self.k}-ary {self.n}-cube"
            )

    # ------------------------------------------------------------------
    # Neighborhood
    # ------------------------------------------------------------------
    def neighbor(self, node: int, dim: int, direction: int) -> int:
        """Neighbor of ``node`` one hop along ``dim`` in ``direction``."""
        self._check_node(node)
        if not 0 <= dim < self.n:
            raise ValueError(f"dimension {dim} out of range")
        if direction not in DIRECTIONS:
            raise ValueError(f"direction must be +1 or -1, got {direction}")
        coord = (node // self._strides[dim]) % self.k
        new_coord = (coord + direction) % self.k
        return node + (new_coord - coord) * self._strides[dim]

    def neighbors(self, node: int) -> List[int]:
        """All ``2n`` neighbors of ``node`` (dimension-major, +/- order)."""
        return [
            self.neighbor(node, d, s)
            for d in range(self.n)
            for s in DIRECTIONS
        ]

    def ports(self, node: int) -> Iterator[Tuple[int, int]]:
        """Iterate the ``(dim, direction)`` pairs of a node's ports."""
        return itertools.product(range(self.n), DIRECTIONS)

    # ------------------------------------------------------------------
    # Channels
    # ------------------------------------------------------------------
    def _build_channels(self) -> List[Channel]:
        channels = []
        for node in range(self.num_nodes):
            for dim in range(self.n):
                for direction in DIRECTIONS:
                    channels.append(
                        Channel(
                            src=node,
                            dst=self.neighbor(node, dim, direction),
                            dim=dim,
                            direction=direction,
                        )
                    )
        return channels

    @property
    def channels(self) -> List[Channel]:
        """All unidirectional physical channels, in a stable order."""
        return self._channels

    @property
    def num_channels(self) -> int:
        return len(self._channels)

    def channel_id(self, src: int, dim: int, direction: int) -> int:
        """Dense integer id of the channel leaving ``src`` via a port."""
        return self._channel_index[(src, dim, direction)]

    def channel(self, channel_id: int) -> Channel:
        return self._channels[channel_id]

    def reverse_channel_id(self, channel_id: int) -> int:
        """Id of the channel in the opposite direction on the same link."""
        c = self._channels[channel_id]
        return self._channel_index[c.reverse_key()]

    def channel_between(self, src: int, dst: int) -> int:
        """Channel id ``src -> dst`` for adjacent nodes.

        Raises ``ValueError`` if the nodes are not adjacent.
        """
        src_coords = self.coords(src)
        dst_coords = self.coords(dst)
        diff_dims = [d for d in range(self.n) if src_coords[d] != dst_coords[d]]
        if len(diff_dims) != 1:
            raise ValueError(f"nodes {src} and {dst} are not adjacent")
        dim = diff_dims[0]
        delta = (dst_coords[dim] - src_coords[dim]) % self.k
        if delta == 1:
            direction = PLUS
        elif delta == self.k - 1:
            direction = MINUS
        else:
            raise ValueError(f"nodes {src} and {dst} are not adjacent")
        return self.channel_id(src, dim, direction)

    # ------------------------------------------------------------------
    # Minimal-path geometry
    # ------------------------------------------------------------------
    def offset(self, src: int, dst: int, dim: int) -> int:
        """Signed shortest offset from ``src`` to ``dst`` along ``dim``.

        The result lies in ``[-k//2, k//2]``.  For even ``k`` the two
        halfway directions tie; the positive direction is returned, so
        deterministic routing is reproducible.
        """
        s = (src // self._strides[dim]) % self.k
        d = (dst // self._strides[dim]) % self.k
        delta = (d - s) % self.k
        if delta > self.k // 2:
            return delta - self.k
        if delta == self.k - delta:  # exact half-way tie on even k
            return delta
        return delta

    def offsets(self, src: int, dst: int) -> Tuple[int, ...]:
        """Signed shortest offsets in every dimension (header Fig 9)."""
        key = (src, dst)
        cached = self._offsets_cache.get(key)
        if cached is None:
            cached = tuple(self.offset(src, dst, d) for d in range(self.n))
            self._offsets_cache[key] = cached
        return cached

    def distance(self, src: int, dst: int) -> int:
        """Minimal hop count between two nodes."""
        return sum(abs(o) for o in self.offsets(src, dst))

    def profitable_ports(self, node: int, dst: int) -> List[Tuple[int, int]]:
        """Ports of ``node`` that move the header closer to ``dst``.

        A *profitable link* (paper Section 2.1) is one over which the
        header moves closer to its destination.  For even ``k`` a
        half-way offset can be closed in either direction, and both
        ports are profitable.

        The returned list is memoized and shared — callers must not
        mutate it.
        """
        key = (node, dst)
        cached = self._profitable_cache.get(key)
        if cached is not None:
            return cached
        ports = []
        for dim in range(self.n):
            off = self.offset(node, dst, dim)
            if off == 0:
                continue
            if off > 0:
                ports.append((dim, PLUS))
                if 2 * off == self.k:  # tie: both ways are minimal
                    ports.append((dim, MINUS))
            else:
                ports.append((dim, MINUS))
                if 2 * (-off) == self.k:
                    ports.append((dim, PLUS))
        self._profitable_cache[key] = ports
        return ports

    def is_profitable(self, node: int, dst: int, dim: int, direction: int) -> bool:
        """Whether moving from ``node`` via the port gets closer to ``dst``."""
        off = self.offset(node, dst, dim)
        if off == 0:
            return False
        if 2 * abs(off) == self.k:
            return True
        return (off > 0) == (direction == PLUS)

    # ------------------------------------------------------------------
    # Misc
    # ------------------------------------------------------------------
    def random_node(self, rng) -> int:
        """Uniform random node id using a ``random.Random``-like rng."""
        return rng.randrange(self.num_nodes)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"KAryNCube(k={self.k}, n={self.n})"
