"""Physical-channel bandwidth allocation (paper Sections 2.1, 2.3).

Each unidirectional physical channel moves at most one flit per cycle.
Virtual channels share that bandwidth flit-by-flit in a demand-driven
manner (Dally virtual-channel flow control [6]); the single multiplexed
virtual *control* channel of the link (Figure 2b) takes priority over
data channels because control flits are a small fraction of traffic and
gate protocol progress.

This module provides the two mechanisms the engine composes per link:

* :class:`ControlQueue` — the multiplexed control channel: a FIFO of
  control flits (headers, acks, kills, tail-acks, resume tokens)
  awaiting their turn on the physical wires, drained one per cycle.
* :class:`RoundRobinArbiter` — fair demand-driven selection among the
  data VCs that have a flit ready and downstream buffer space.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Generic, List, Optional, Sequence, TypeVar

T = TypeVar("T")


class ControlQueue(Generic[T]):
    """FIFO of control flits waiting to cross one physical channel.

    The paper multiplexes all corresponding and complementary channels
    of a link through a single virtual control channel; arrival order is
    preserved and one control flit crosses per cycle.
    """

    __slots__ = ("_queue", "sent")

    def __init__(self) -> None:
        self._queue: Deque[T] = deque()
        #: Total control flits that crossed this channel (statistic).
        self.sent = 0

    def push(self, token: T) -> None:
        self._queue.append(token)

    def pop(self) -> T:
        self.sent += 1
        return self._queue.popleft()

    def __len__(self) -> int:
        return len(self._queue)

    def __bool__(self) -> bool:
        return bool(self._queue)

    def __iter__(self):
        """Iterate queued tokens without consuming them (auditing)."""
        return iter(self._queue)

    def peek(self) -> Optional[T]:
        return self._queue[0] if self._queue else None

    def drain(self) -> List[T]:
        """Remove and return all queued tokens (teardown support)."""
        items = list(self._queue)
        self._queue.clear()
        return items


class RoundRobinArbiter:
    """Rotating-priority arbiter over a fixed number of requesters.

    Mirrors the demand-driven, flit-by-flit physical bandwidth
    allocation of [6]: the requester after the most recent winner has
    the highest priority, so every VC with pending flits gets a fair
    share of the link.
    """

    __slots__ = ("size", "_next")

    def __init__(self, size: int):
        if size < 1:
            raise ValueError("arbiter needs at least one requester")
        self.size = size
        self._next = 0

    def grant(self, requests: Sequence[bool]) -> Optional[int]:
        """Pick the next requester in round-robin order, or ``None``.

        ``requests[i]`` is True when requester ``i`` wants the resource
        this cycle.
        """
        if len(requests) != self.size:
            raise ValueError(
                f"expected {self.size} request lines, got {len(requests)}"
            )
        for offset in range(self.size):
            idx = (self._next + offset) % self.size
            if requests[idx]:
                self._next = (idx + 1) % self.size
                return idx
        return None

    def grant_from(self, candidates: Sequence[int]) -> Optional[int]:
        """Round-robin grant when requests arrive as a candidate list.

        ``candidates`` holds requester indices (possibly unsorted).
        Returns the winning index or ``None`` when empty.
        """
        if not candidates:
            return None
        best = None
        best_rank = self.size
        for idx in candidates:
            rank = (idx - self._next) % self.size
            if rank < best_rank:
                best_rank = rank
                best = idx
        assert best is not None
        self._next = (best + 1) % self.size
        return best
