"""Virtual channel trio model (paper Section 2.3, Figure 2).

Every unidirectional *physical* channel carries a configurable number of
data virtual channels.  Each data channel is conceptually one third of a
*virtual channel trio* ``(v_d, v_c, v_*)``:

* ``v_d`` — the data channel, crossed by data flits;
* ``v_c`` — the corresponding channel, crossed by routing headers;
* ``v_*`` — the complementary channel, running in the *opposite*
  direction, reserved for acknowledgment flits, kill flits, and
  backtracking headers.

As in the paper (Figure 2b), all corresponding/complementary channels of
one physical link are multiplexed through a single virtual control
channel, because control traffic is a small fraction of flit traffic.
The simulator therefore materializes only the data channels here; the
control channel is a FIFO per physical channel managed by the link layer
(:mod:`repro.network.link`), and complementary-channel traffic of a data
channel rides the control channel of the reverse physical channel.

Data virtual channels are partitioned into routing classes for Duato's
Protocol: two *deterministic* (escape) classes that break torus
wraparound cycles via datelines, and one or more fully *adaptive*
classes (Section 4.0).
"""

from __future__ import annotations

import enum
from typing import List, Optional


class VCClass(enum.Enum):
    """Routing class of a data virtual channel (Duato partition)."""

    #: Escape channel used before crossing the dimension's dateline.
    DETERMINISTIC_0 = 0
    #: Escape channel used after crossing the dimension's dateline.
    DETERMINISTIC_1 = 1
    #: Fully adaptive channel (minimal routing in DP; any direction in
    #: TP detour mode).
    ADAPTIVE = 2

    @property
    def is_deterministic(self) -> bool:
        return self is not VCClass.ADAPTIVE


class VCState(enum.Enum):
    FREE = 0
    #: Reserved by a routing header; owned until released by the tail
    #: flit (or a tail-acknowledgment / kill / backtracking header).
    RESERVED = 1


class VirtualChannel:
    """State of one data virtual channel on one physical channel.

    The flit *contents* of the channel's buffer are tracked by the
    owning message (wormhole semantics guarantee a data channel carries
    at most one message at a time — "Only one message can be in
    progress over a data channel"), so this object only tracks
    reservation state and identity.
    """

    __slots__ = (
        "channel_id", "index", "vclass", "state", "owner", "grants",
        "notify_release",
    )

    def __init__(self, channel_id: int, index: int, vclass: VCClass):
        self.channel_id = channel_id
        self.index = index
        self.vclass = vclass
        self.state = VCState.FREE
        #: Owning message id while reserved (``None`` when free).
        self.owner: Optional[int] = None
        #: Total times this VC won physical-channel arbitration
        #: (utilization statistic).  Both data-phase implementations —
        #: the object walk and the SoA kernel (DESIGN.md §12) — credit
        #: this eagerly at the moment the flit crosses, in the same
        #: deterministic commit order, so a mid-run switch between them
        #: never skews utilization numbers.
        self.grants = 0
        #: State-change notification for the event-driven engine:
        #: called with the channel id on every release, no matter which
        #: subsystem triggered it (tail teardown, backtracking header,
        #: kill flit, dynamic-fault cleanup) — a release is the only
        #: transition that can unblock a parked routing header, so the
        #: engine funnels all of them through this single point instead
        #: of auditing call sites.  ``None`` when no engine listens.
        self.notify_release = None

    @property
    def is_free(self) -> bool:
        return self.state is VCState.FREE

    def reserve(self, message_id: int) -> None:
        if self.state is not VCState.FREE:
            raise ChannelStateError(
                f"VC {self.channel_id}.{self.index} already reserved "
                f"by message {self.owner}"
            )
        self.state = VCState.RESERVED
        self.owner = message_id

    def release(self) -> None:
        if self.state is not VCState.RESERVED:
            raise ChannelStateError(
                f"VC {self.channel_id}.{self.index} is not reserved"
            )
        self.state = VCState.FREE
        self.owner = None
        notify = self.notify_release
        if notify is not None:
            notify(self.channel_id)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"VirtualChannel(ch={self.channel_id}, idx={self.index}, "
            f"class={self.vclass.name}, state={self.state.name}, "
            f"owner={self.owner})"
        )


class ChannelStateError(RuntimeError):
    """Raised on an illegal virtual-channel state transition."""


def build_vc_classes(num_adaptive: int) -> List[VCClass]:
    """Class layout of the data VCs on every physical channel.

    Duato's Protocol on a torus needs two deterministic (dateline)
    classes plus at least one adaptive class; ``num_adaptive`` scales
    the unrestricted partition.
    """
    if num_adaptive < 1:
        raise ValueError("at least one adaptive virtual channel is required")
    return [VCClass.DETERMINISTIC_0, VCClass.DETERMINISTIC_1] + [
        VCClass.ADAPTIVE
    ] * num_adaptive


class ChannelBank:
    """All data virtual channels of a network, indexed by physical channel.

    Provides the free-channel queries that routing functions use
    ("select safe profitable adaptive channel", etc.).
    """

    def __init__(self, num_channels: int, num_adaptive: int):
        self.classes = build_vc_classes(num_adaptive)
        self.vcs_per_channel = len(self.classes)
        self._vcs: List[List[VirtualChannel]] = [
            [
                VirtualChannel(ch, idx, vclass)
                for idx, vclass in enumerate(self.classes)
            ]
            for ch in range(num_channels)
        ]

    def set_release_notify(self, callback) -> None:
        """Subscribe ``callback(channel_id)`` to every VC release."""
        for row in self._vcs:
            for vc in row:
                vc.notify_release = callback

    def vcs(self, channel_id: int) -> List[VirtualChannel]:
        return self._vcs[channel_id]

    def vc(self, channel_id: int, index: int) -> VirtualChannel:
        return self._vcs[channel_id][index]

    def free_adaptive(self, channel_id: int) -> Optional[VirtualChannel]:
        """First free adaptive VC on a physical channel, if any."""
        for vc in self._vcs[channel_id]:
            if vc.vclass is VCClass.ADAPTIVE and vc.is_free:
                return vc
        return None

    def deterministic(self, channel_id: int, vclass: VCClass) -> VirtualChannel:
        """The deterministic VC of the requested dateline class."""
        if not vclass.is_deterministic:
            raise ValueError(f"{vclass} is not a deterministic class")
        return self._vcs[channel_id][vclass.value]

    def any_free(self, channel_id: int) -> bool:
        return any(vc.is_free for vc in self._vcs[channel_id])

    def all_free(self) -> bool:
        """Whether every VC in the bank is free (drained-network check)."""
        return all(vc.is_free for row in self._vcs for vc in row)

    def reserved_count(self) -> int:
        return sum(
            1 for row in self._vcs for vc in row if not vc.is_free
        )
