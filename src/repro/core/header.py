"""Routing header flit format and state (paper Section 5.0, Figure 9).

The Two-Phase header carries six fields:

1. *header bit* — identifies the flit as a routing header;
2. *backtrack bit* — header currently traveling toward the source;
3. *misroute count* — three bits, because up to six misroutes are
   needed to guarantee delivery with up to 2n-1 node faults (Thm 2);
4. *detour bit* — header is constructing a detour: no positive
   acknowledgments are sent and the probe/data separation may grow
   arbitrarily;
5. *SR bit* — set once the probe crosses an unsafe channel; from then
   on the scouting distance K is programmed into every virtual channel
   the probe crosses;
6. per-dimension signed *offsets* to the destination.

:class:`Header` is the live, mutable routing state the simulator works
with; :func:`encode` / :func:`decode` round-trip it through the packed
bit format of Figure 9, which pins down the hardware cost and is used
by the router-architecture tests.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List

#: Width of the misroute-count field in bits (Figure 9).
MISROUTE_FIELD_BITS = 3
#: Largest representable misroute budget.
MAX_MISROUTES = (1 << MISROUTE_FIELD_BITS) - 1


@dataclass
class Header:
    """Mutable routing-header state for one message.

    ``offsets`` are the remaining signed hops per dimension and are
    updated as the header moves (they reach all-zero at the
    destination).
    """

    offsets: List[int]
    backtrack: bool = False
    misroutes: int = 0
    detour: bool = False
    sr: bool = False

    def at_destination(self) -> bool:
        return all(o == 0 for o in self.offsets)

    def distance(self) -> int:
        return sum(abs(o) for o in self.offsets)

    def apply_hop(self, dim: int, direction: int, k: int) -> None:
        """Update offsets after moving one hop along ``dim``.

        Offsets stay in the canonical ``[-k//2, k//2]`` window so a
        misrouted header re-derives the shortest way back.
        """
        off = self.offsets[dim] - direction
        half = k // 2
        if off > half:
            off -= k
        elif off < -half:
            off += k
        elif off == -half and k % 2 == 0:
            # Canonical form prefers the positive representation of an
            # exact half-way offset (matches KAryNCube.offset).  The
            # negative alias arises when a hop moves *away* from the
            # destination into the half-way tie (e.g. offset -2 in a
            # 6-ring, misrouted in the + direction).
            off = half
        self.offsets[dim] = off


def offset_field_bits(k: int) -> int:
    """Bits needed for one signed offset field in a radix-``k`` network."""
    # Offsets span [-(k//2), k//2]: k distinct values need ceil(log2(k))
    # bits, plus a sign representation slot for even k's +half alias.
    return max(1, math.ceil(math.log2(k + 1)))


def header_bits(k: int, n: int) -> int:
    """Total width in bits of the packed header flit (Figure 9)."""
    return 1 + 1 + MISROUTE_FIELD_BITS + 1 + 1 + n * offset_field_bits(k)


def encode(header: Header, k: int) -> int:
    """Pack a header into the Figure 9 bit layout (header bit first).

    Layout, MSB to LSB: header(1) | backtrack(1) | misroutes(3) |
    detour(1) | SR(1) | offset[0] | ... | offset[n-1].
    """
    if header.misroutes > MAX_MISROUTES:
        raise ValueError(
            f"misroute count {header.misroutes} exceeds the "
            f"{MISROUTE_FIELD_BITS}-bit field"
        )
    obits = offset_field_bits(k)
    half = k // 2
    word = 1  # header bit
    word = (word << 1) | int(header.backtrack)
    word = (word << MISROUTE_FIELD_BITS) | header.misroutes
    word = (word << 1) | int(header.detour)
    word = (word << 1) | int(header.sr)
    for off in header.offsets:
        if not -half <= off <= half:
            raise ValueError(f"offset {off} out of range for k={k}")
        word = (word << obits) | (off % (1 << obits))
    return word


def decode(word: int, k: int, n: int) -> Header:
    """Unpack a Figure 9 header word back into a :class:`Header`."""
    obits = offset_field_bits(k)
    offsets = []
    for _ in range(n):
        raw = word & ((1 << obits) - 1)
        # Sign-extend from the offset field width.
        if raw >= 1 << (obits - 1):
            raw -= 1 << obits
        offsets.append(raw)
        word >>= obits
    sr = bool(word & 1)
    word >>= 1
    detour = bool(word & 1)
    word >>= 1
    misroutes = word & MAX_MISROUTES
    word >>= MISROUTE_FIELD_BITS
    backtrack = bool(word & 1)
    word >>= 1
    if word != 1:
        raise ValueError("missing header identification bit")
    offsets.reverse()
    return Header(
        offsets=offsets,
        backtrack=backtrack,
        misroutes=misroutes,
        detour=detour,
        sr=sr,
    )
