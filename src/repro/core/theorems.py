"""Analytic bounds from the paper's Section 3.0.

Theorem 1 bounds the number of *consecutive* backtracking steps a
header performs as a function of the number of faulty components in a
k-ary n-cube (no prior misrouting, misrouting preferred):

* straight alley:        ``b = (f - 1) div (2n - 2)``
* alley ending in a turn: ``b = f div (2n - 2)``

Theorem 2: with fewer than 2n faults, at most 6 misroutes, misrouting
preferred over backtracking, and misroute channel chosen in the input
channel's dimension, the maximum consecutive backtracking distance
before forward progress is 3 (2 when only node faults occur), which is
why ``K = 3`` suffices and the CMU counter is two bits wide.

These functions are the oracle for the adversarial fault-pattern tests
and for sizing the scouting distance in the conservative TP variant.
"""

from __future__ import annotations

from dataclasses import dataclass


def _check_cube(n: int) -> None:
    if n < 2:
        raise ValueError(
            "theorems assume a k-ary n-cube with n >= 2 (2n - 2 > 0)"
        )


def max_backtrack_straight_alley(faults: int, n: int) -> int:
    """Theorem 1, case 1: maximum consecutive backtracks, straight alley.

    The first backtrack needs 2n-1 faulty channels around the dead-end
    node; each further step is forced by 2n-2 additional faults:
    ``b = (f - 1) div (2n - 2)``.
    """
    _check_cube(n)
    if faults < 0:
        raise ValueError("fault count must be non-negative")
    if faults < 2 * n - 1:
        return 0
    return (faults - 1) // (2 * n - 2)


def max_backtrack_turn_alley(faults: int, n: int) -> int:
    """Theorem 1, case 2: alley with a turn at the end — ``f div (2n-2)``."""
    _check_cube(n)
    if faults < 0:
        raise ValueError("fault count must be non-negative")
    if faults < 2 * n - 1:
        return 0
    return faults // (2 * n - 2)


def min_faults_for_backtracks(backtracks: int, n: int) -> int:
    """Faults needed to force ``b`` consecutive backtracks (case 1).

    Inverse of Theorem 1: ``f = 2n - 1 + (b - 1)(2n - 2)``.
    """
    _check_cube(n)
    if backtracks < 1:
        return 0
    return (2 * n - 1) + (backtracks - 1) * (2 * n - 2)


#: Misroute budget sufficient to search every input link of the
#: destination lying within a plane (Theorem 2 premise iii).
SUFFICIENT_MISROUTES = 6

#: Theorem 2's backtracking bound with mixed node/channel faults.
MAX_CONSECUTIVE_BACKTRACKS = 3

#: Theorem 2's bound when only node failures occur (footnote).
MAX_CONSECUTIVE_BACKTRACKS_NODE_FAULTS_ONLY = 2


def sufficient_scouting_distance(node_faults_only: bool = False) -> int:
    """Scouting distance K that always lets the header reach its probe.

    Theorem 2: the header never needs to backtrack more than 3
    consecutive links (2 for node-only fault patterns) provided the
    fault count is below 2n, so programming ``K = 3`` guarantees the
    probe can always retreat to the first data flit.
    """
    if node_faults_only:
        return MAX_CONSECUTIVE_BACKTRACKS_NODE_FAULTS_ONLY
    return MAX_CONSECUTIVE_BACKTRACKS


def fault_budget(n: int) -> int:
    """Largest fault count with guaranteed delivery: ``2n - 1``.

    2n faults can physically disconnect a k-ary n-cube (isolate a
    node); below that, one healthy node and one healthy channel
    adjacent to any destination are guaranteed to exist.
    """
    _check_cube(n)
    return 2 * n - 1


def cmu_counter_bits(k: int) -> int:
    """Width of the CMU per-VC acknowledgment counter for distance ``k``.

    Section 5.0: "For K = 3, a two bit counter is required for each
    virtual channel."
    """
    if k < 0:
        raise ValueError("scouting distance must be non-negative")
    if k == 0:
        return 0
    return max(1, k.bit_length())


@dataclass(frozen=True)
class TheoremSummary:
    """Machine-checkable statement of the Section 3.0 guarantees."""

    n: int

    @property
    def max_faults(self) -> int:
        return fault_budget(self.n)

    @property
    def misroute_budget(self) -> int:
        return SUFFICIENT_MISROUTES

    @property
    def scouting_distance(self) -> int:
        return sufficient_scouting_distance()

    def guarantees_delivery(self, faults: int) -> bool:
        """Whether the theorems guarantee delivery under ``faults``."""
        return faults <= self.max_faults
