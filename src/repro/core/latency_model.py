"""Closed-form minimum message latencies (paper Section 2.2).

For a message of ``L`` data flits crossing ``l`` links in an otherwise
idle network, with a one-flit header and unit flit-transfer time:

* wormhole:              ``t_WR  = l + L``
* scouting (distance K): ``t_SR  = l + (2K - 1) + L``  for ``K >= 1``
  (with ``K = 0`` scouting degenerates to wormhole)
* pipelined circuit switching: ``t_PCS = 3l + L - 1``

These formulas are the primary validation oracle for the flit-level
simulator: :mod:`tests.integration.test_latency_formulas` checks that
single-message simulations reproduce each expression exactly over a
grid of ``(l, L, K)``.
"""

from __future__ import annotations


def _check(links: int, length: int) -> None:
    if links < 1:
        raise ValueError(f"path must have at least one link, got {links}")
    if length < 1:
        raise ValueError(f"message must have at least one flit, got {length}")


def t_wormhole(links: int, length: int) -> int:
    """Minimum latency of wormhole routing: header + pipelined data."""
    _check(links, length)
    return links + length


def t_scouting(links: int, length: int, k: int) -> int:
    """Minimum latency of scouting routing with scouting distance ``k``.

    The first data flit waits at the source for ``k`` positive
    acknowledgments; the k-th returns after the header's k-th hop plus
    k reverse hops, delaying the data pipeline by ``2k - 1`` relative
    to wormhole.
    """
    _check(links, length)
    if k < 0:
        raise ValueError(f"scouting distance must be non-negative, got {k}")
    if k == 0:
        return t_wormhole(links, length)
    return links + (2 * k - 1) + length

def t_pcs(links: int, length: int) -> int:
    """Minimum latency of pipelined circuit switching.

    Path setup (l), path acknowledgment back to the source (l), then
    the data pipeline (l + L - 1 with the first data flit counted at
    its departure slot): ``3l + L - 1``.
    """
    _check(links, length)
    return 3 * links + length - 1


def scouting_effective_k(links: int, k: int) -> int:
    """Scouting distance actually experienced on a short path.

    On a path of ``l`` links the header generates at most ``l`` positive
    acknowledgments before reaching the destination, at which point the
    data is released regardless of K (the path is complete, equivalent
    to PCS).  The effective gating distance is ``min(k, l)``.
    """
    _check(links, 1)
    if k < 0:
        raise ValueError(f"scouting distance must be non-negative, got {k}")
    return min(k, links)


def crossover_length_pcs_vs_scouting(links: int, k: int) -> int:
    """Message length above which PCS overhead exceeds SR overhead.

    Both mechanisms add a length-independent setup penalty over
    wormhole — SR adds ``2K - 1``, PCS adds ``2l - 1`` — so their gap is
    independent of L; this helper documents the penalty difference used
    in the short-message discussion of Section 1.0.
    """
    return (2 * links - 1) - (2 * max(k, 1) - 1)
