"""Detour construction bookkeeping for Two-Phase routing (Section 4.0).

When a Two-Phase header can no longer make progress it sets the detour
bit and performs a depth-first, backtracking search using at most ``m``
misroutes.  While the bit is set no positive acknowledgments flow and
the probe/data separation may grow arbitrarily; every channel reserved
during the detour keeps its data gate closed so that *all channels (or
none) in a detour are accepted before the data flits resume progress*.

A detour is complete when the probe reaches the destination or when
every misrouting step performed during its construction has been
*corrected*.  Correction accounting: each misroute pushes its
``(dimension, direction)`` onto a stack; a later profitable hop in the
opposite direction of a pending entry pops it (the displacement has
been undone); backtracking over a misrouted link also pops it and
refunds the misroute budget (Theorem 1's "backtracking over a misroute
removes it from the path and decrements the misroute count").
"""

from __future__ import annotations

from repro.sim.message import Message, TPMode


def enter_detour(message: Message) -> None:
    """Switch the header into detour mode (Figure 6, final DP branch)."""
    message.tp_mode = TPMode.DETOUR
    message.header.detour = True
    message.detour_stack = []
    message.detour_count += 1


def record_forward_hop(message: Message, dim: int, direction: int,
                       is_misroute: bool) -> None:
    """Account a detour-mode forward hop on the correction stack."""
    if is_misroute:
        message.detour_stack.append((dim, direction))
        message.header.misroutes += 1
        message.misroute_total += 1
        return
    # A profitable hop opposite a pending misroute corrects it.
    opposite = (dim, -direction)
    for idx in range(len(message.detour_stack) - 1, -1, -1):
        if message.detour_stack[idx] == opposite:
            del message.detour_stack[idx]
            break


def record_backtrack(message: Message, dim: int, direction: int,
                     was_misroute: bool) -> None:
    """Account backtracking over a detour-mode link.

    ``(dim, direction)`` describe the link as originally taken
    (forward); backtracking removes it from the path.
    """
    if not was_misroute:
        return
    message.header.misroutes = max(0, message.header.misroutes - 1)
    for idx in range(len(message.detour_stack) - 1, -1, -1):
        if message.detour_stack[idx] == (dim, direction):
            del message.detour_stack[idx]
            break


def detour_complete(message: Message, at_destination: bool) -> bool:
    """Whether the detour under construction is finished."""
    if message.tp_mode is not TPMode.DETOUR:
        return False
    return at_destination or not message.detour_stack


def complete_detour(message: Message) -> None:
    """Reset the header to DP mode after a completed detour.

    The engine separately sends the resume token that re-opens the data
    gates of the channels accepted during the detour.
    """
    message.tp_mode = TPMode.DP
    message.header.detour = False
    message.header.misroutes = 0
    message.detour_stack = []
