"""The paper's contribution: configurable flow control, header format,
latency models, theorems.  The Two-Phase protocol lives in
:mod:`repro.core.two_phase` (imported lazily by the top-level package
to avoid an import cycle through :mod:`repro.sim.message`).
"""

from repro.core.flow_control import (
    FlowControlConfig,
    FlowControlKind,
    K_INFINITE,
    gate_open,
    max_header_data_gap,
)
from repro.core.header import Header, decode, encode, header_bits
from repro.core.latency_model import t_pcs, t_scouting, t_wormhole

__all__ = [
    "FlowControlConfig",
    "FlowControlKind",
    "Header",
    "K_INFINITE",
    "decode",
    "encode",
    "gate_open",
    "header_bits",
    "max_header_data_gap",
    "t_pcs",
    "t_scouting",
    "t_wormhole",
]
