"""The Two-Phase (TP) fault-tolerant routing protocol (Section 4.0).

The paper's primary contribution: a protocol that routes optimistically
— Duato's Protocol restrictions with wormhole-like flow control (K=0,
no acknowledgments) — through fault-free regions, and conservatively —
scouting flow control with misrouting, backtracking, and detour
construction — in the vicinity of faults.  The structure follows the
pseudocode of Figure 6:

DP phase (per pending header, highest priority first)
    1. a *safe* profitable adaptive channel;
    2. the *safe* deterministic (escape) channel — blocking while it is
       merely busy, with the adaptive channels re-examined every cycle;
    3. if the deterministic channel is faulty or unsafe: an *unsafe*
       profitable adaptive channel — crossing it switches the header to
       SR mode (SR bit set; every subsequently reserved channel is
       programmed with the scouting distance K);
    4. an *unsafe* deterministic channel (same SR switch);
    5. otherwise the header enters detour mode.

Detour phase
    Route profitably over any adaptive channel; misroute (at most ``m``
    times, preferring the input channel's dimension, with a U-turn as
    the last resort when backtracking is impossible); else backtrack —
    the scouting gap guarantees the probe can retreat to the first data
    flit.  Stuck probes retry in place and finally abort to the
    recovery mechanism.

Two standard configurations from the evaluation:

* **aggressive** (Figures 13/14 and the K=0 series of Figure 15):
  ``k_unsafe = 0`` — no acknowledgment traffic at all; faults are
  handled purely by detour construction;
* **conservative** (the K=3 series of Figure 15): ``k_unsafe = 3`` —
  Theorem 2's sufficient scouting distance is programmed into every
  channel crossed after the first unsafe channel.
"""

from __future__ import annotations

from repro.core import detour as detour_rules
from repro.core.flow_control import FlowControlConfig
from repro.routing.base import WAIT, Action, Decision, RoutingContext
from repro.routing.selection import adaptive_candidate
from repro.sim.message import Message, TPMode

#: Misroute budget of the detour search; 6 guarantees delivery with up
#: to 2n-1 node faults (Theorem 2) and fits the 3-bit header field.
DEFAULT_MISROUTE_LIMIT = 6


class TwoPhaseProtocol:
    """Fully adaptive, deadlock-free Two-Phase fault-tolerant routing."""

    name = "tp"
    inline_header = False

    def __init__(self, k_unsafe: int = 0,
                 misroute_limit: int = DEFAULT_MISROUTE_LIMIT,
                 retry_backoff: int = 16, max_retries: int = 3):
        self.misroute_limit = misroute_limit
        self.retry_backoff = retry_backoff
        self.max_retries = max_retries
        self.flow_control = FlowControlConfig.scouting(
            k_safe=0, k_unsafe=k_unsafe
        )

    @staticmethod
    def aggressive(**kwargs) -> "TwoPhaseProtocol":
        """TP that keeps K = 0 across unsafe channels (no ack traffic)."""
        return TwoPhaseProtocol(k_unsafe=0, **kwargs)

    @staticmethod
    def conservative(k: int = 3, **kwargs) -> "TwoPhaseProtocol":
        """TP that programs K on channels past the first unsafe one."""
        return TwoPhaseProtocol(k_unsafe=k, **kwargs)

    # ------------------------------------------------------------------
    def on_arrival(self, ctx: RoutingContext, message: Message) -> None:
        """Per-hop protocol state is handled by the engine hooks."""

    def decide(self, ctx: RoutingContext, message: Message) -> Decision:
        if message.tp_mode is TPMode.DETOUR:
            return self._decide_detour(ctx, message)
        return self._decide_dp(ctx, message)

    # ------------------------------------------------------------------
    # Optimistic phase: DP routing restrictions over safe channels.
    # ------------------------------------------------------------------
    def _decide_dp(self, ctx: RoutingContext, message: Message) -> Decision:
        node = message.current_node()
        dst = message.dst
        fc = self.flow_control
        k_now = fc.k_for(message.header.sr)

        # 1. Safe profitable adaptive channel.
        candidate = adaptive_candidate(ctx, node, dst, require_safe=True)
        if candidate is not None:
            dim, direction, vc = candidate
            return Decision(
                action=Action.RESERVE, vc=vc, port=(dim, direction), k=k_now
            )

        # 2. Safe deterministic channel: take it, or block while busy.
        det = ctx.cache.escape(node, dst)
        assert det is not None, "decide() must not be called at destination"
        dim, direction, vclass, det_ch = det
        det_faulty = ctx.faults.channel_faulty[det_ch]
        det_unsafe = ctx.faults.channel_unsafe[det_ch]
        if not det_faulty and not det_unsafe:
            vc = ctx.channels.deterministic(det_ch, vclass)
            if vc.is_free:
                return Decision(
                    action=Action.RESERVE, vc=vc, port=(dim, direction),
                    k=k_now,
                )
            if vc.owner == message.msg_id:
                # A post-detour path is a walk and may revisit this
                # physical channel: the escape VC is held by this very
                # message and can never free while its header blocks.
                # Treat it as unavailable and fall through to the
                # conservative machinery instead of deadlocking.
                detour_rules.enter_detour(message)
                return self._decide_detour(ctx, message)
            return WAIT  # blocks; adaptive channels re-checked next cycle

        # 3. Unsafe profitable adaptive channel — entering the fault
        # vicinity switches flow control from WR to SR.
        candidate = adaptive_candidate(ctx, node, dst, require_safe=False)
        if candidate is not None:
            a_dim, a_direction, vc = candidate
            message.header.sr = True
            return Decision(
                action=Action.RESERVE, vc=vc, port=(a_dim, a_direction),
                k=fc.k_for(True),
            )

        # 4. Unsafe deterministic channel.
        if not det_faulty and det_unsafe:
            vc = ctx.channels.deterministic(det_ch, vclass)
            if vc.is_free:
                message.header.sr = True
                return Decision(
                    action=Action.RESERVE, vc=vc, port=(dim, direction),
                    k=fc.k_for(True),
                )

        # 5. No way forward under DP restrictions: construct a detour.
        detour_rules.enter_detour(message)
        return self._decide_detour(ctx, message)

    # ------------------------------------------------------------------
    # Conservative phase: unrestricted depth-first detour search.
    # ------------------------------------------------------------------
    def _decide_detour(self, ctx: RoutingContext,
                       message: Message) -> Decision:
        if ctx.cycle < message.retry_wait:
            return WAIT

        node = message.current_node()
        dst = message.dst
        j = message.header_router
        tried = message.tried[j]
        k_now = self.flow_control.k_for(message.header.sr)
        can_backtrack = j > 0 and j > message.head_router
        # The depth-first search is self-avoiding: stepping onto a node
        # already on the path would open a cycle in the walk, thrash
        # the misroute budget, and (worst case) block on the message's
        # own channels.  The history store's role in hardware.  The
        # deliberate U-turn below is the single exception.
        on_path = set(message.path_nodes)
        free_adaptive = ctx.channels.free_adaptive

        # Profitable over any adaptive channel, safety ignored — and
        # reconfiguration restrictions ignored too: the detour search's
        # deliverability argument (Theorem 2) needs every healthy
        # channel, so restrictions only steer the optimistic phase.
        for dim, direction, ch, next_node in ctx.cache.adaptive_candidates(
            node, dst, None, honor_restrictions=False
        ):
            if ch in tried:
                continue
            if next_node in on_path and next_node != dst:
                continue
            vc = free_adaptive(ch)
            if vc is not None:
                return Decision(
                    action=Action.RESERVE, vc=vc, port=(dim, direction),
                    k=k_now, hold=True,
                )

        # Misroute within budget; the U-turn onto the reverse channel is
        # taken only when retreating is impossible ("the header can
        # route using the virtual channels in the opposite direction").
        if message.header.misroutes < self.misroute_limit:
            arrival = message.arrival_dims[j]
            for dim, direction, ch, next_node in (
                ctx.cache.misroute_candidates(
                    node, dst, arrival, allow_u_turn=not can_backtrack,
                    honor_restrictions=False,
                )
            ):
                if ch in tried:
                    continue
                is_u_turn = (
                    arrival is not None
                    and (dim, direction) == (arrival[0], -arrival[1])
                )
                if next_node in on_path and not is_u_turn:
                    continue
                vc = free_adaptive(ch)
                if vc is not None:
                    return Decision(
                        action=Action.RESERVE, vc=vc, port=(dim, direction),
                        k=k_now, hold=True, is_misroute=True,
                    )

        if can_backtrack:
            return Decision(action=Action.BACKTRACK)

        # Stuck at the first data flit (or the source): retry in place,
        # then hand the message to the recovery mechanism.
        if message.retries < self.max_retries:
            message.retries += 1
            message.retry_wait = ctx.cycle + self.retry_backoff
            tried.clear()
            return WAIT
        return Decision(
            action=Action.ABORT,
            reason="TP detour construction failed after retries",
        )
