"""Configurable flow-control mechanisms (paper Sections 1, 2.2, 4.0).

The paper's central idea: the *scouting distance* ``K`` — how many
positive acknowledgments the first data flit must wait for before
advancing — is a per-virtual-channel, dynamically programmable
register, so one router implements a whole spectrum of flow control:

* ``K = 0`` — optimistic wormhole-like behaviour (data flits directly
  follow the header; no acknowledgments are generated);
* ``0 < K < ∞`` — scouting: a controlled header/data gap that lets the
  header backtrack up to K links to avoid faults;
* ``K = ∞`` (path-ack gating) — conservative pipelined circuit
  switching: data leaves the source only after the header has reached
  the destination and a path acknowledgment has returned.

:class:`FlowControlConfig` captures a protocol's choice and the
per-situation K programming used by Two-Phase routing ("the counter
values of every output channel traversed by the header are set to K"
after the probe crosses an unsafe channel).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

#: Sentinel K meaning "gate stays closed until an explicit event"
#: (path-established acknowledgment for PCS; detour-resume token for
#: channels reserved while a Two-Phase probe is in detour mode).
K_INFINITE = 1 << 30


class FlowControlKind(enum.Enum):
    """The three flow-control mechanisms of Figure 1."""

    WORMHOLE = "wr"
    SCOUTING = "sr"
    PCS = "pcs"


@dataclass(frozen=True)
class FlowControlConfig:
    """Flow-control programming for a routing protocol.

    Attributes
    ----------
    kind:
        Base mechanism.
    k_safe:
        Scouting distance programmed on channels crossed while the
        header's SR bit is clear (fault-free vicinity).  Two-Phase uses
        0 here — wormhole behaviour, no acknowledgment traffic.
    k_unsafe:
        Scouting distance programmed once the probe has crossed an
        unsafe channel (SR bit set).  The paper's *conservative* TP uses
        3 (Theorem 2's sufficient value for non-isolated nodes); the
        *aggressive* TP keeps 0 and relies on detour construction.
    """

    kind: FlowControlKind
    k_safe: int = 0
    k_unsafe: int = 0

    def __post_init__(self) -> None:
        for name in ("k_safe", "k_unsafe"):
            value = getattr(self, name)
            if value < 0:
                raise ValueError(f"{name} must be non-negative, got {value}")
        if self.kind is FlowControlKind.WORMHOLE and (
            self.k_safe or self.k_unsafe
        ):
            raise ValueError("wormhole flow control has no scouting distance")

    @property
    def sends_acks_when_safe(self) -> bool:
        """Whether positive acks flow before any unsafe crossing.

        The current design "eliminates any positive acknowledgments
        from being transmitted when SR = 0" (Section 6.1), which is why
        TP's fault-free performance tracks WR.
        """
        return self.kind is FlowControlKind.SCOUTING and self.k_safe > 0

    def k_for(self, sr_active: bool) -> int:
        """Scouting distance to program on the next reserved channel."""
        if self.kind is FlowControlKind.WORMHOLE:
            return 0
        if self.kind is FlowControlKind.PCS:
            return K_INFINITE
        return self.k_unsafe if sr_active else self.k_safe

    # Convenience constructors ----------------------------------------
    @staticmethod
    def wormhole() -> "FlowControlConfig":
        return FlowControlConfig(kind=FlowControlKind.WORMHOLE)

    @staticmethod
    def pcs() -> "FlowControlConfig":
        return FlowControlConfig(kind=FlowControlKind.PCS)

    @staticmethod
    def scouting(k_safe: int = 0, k_unsafe: int = 3) -> "FlowControlConfig":
        return FlowControlConfig(
            kind=FlowControlKind.SCOUTING, k_safe=k_safe, k_unsafe=k_unsafe
        )


def gate_open(acks_received: int, k_programmed: int, path_established: bool) -> bool:
    """Data-gate predicate for the first data flit at a router.

    The DIBU output enable of Section 5.0/Figure 11: the first data flit
    (and everything behind it) may advance when the counter of acks
    received at the router reaches the programmed scouting distance.
    ``K_INFINITE`` gates wait for the explicit path event instead.
    """
    if k_programmed >= K_INFINITE:
        return path_established
    return acks_received >= k_programmed


def max_header_data_gap(k: int) -> int:
    """Largest header/first-data-flit separation while advancing.

    Acknowledgments flow opposite to the header, so the gap can grow
    up to ``2K - 1`` links while the header advances (Section 2.2).
    """
    if k < 0:
        raise ValueError("scouting distance must be non-negative")
    if k == 0:
        return 0
    return 2 * k - 1
