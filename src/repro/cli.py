"""Command-line interface: ``repro-sim``.

Subcommands:

* ``run`` — one simulation with explicit parameters, printing the
  latency/throughput summary;
* ``figure`` — regenerate one of the paper's figures (12, 13, 14, 15,
  17, ``formulas``, ``theorems``, ``ablation``);
* ``sweep`` — a latency-throughput load sweep for one protocol;
* ``chaos`` — a randomized fault-storm campaign with the invariant
  auditor and deadlock-recovery watchdog armed;
* ``storm`` — the storm resilience benchmark: identical fault storms
  through TP-only vs online-reconfiguration recovery, head-to-head.

Examples::

    repro-sim run --protocol tp --load 0.15 --faults 5
    repro-sim run --pattern hotspot --pattern-param hotspot_fraction=0.3
    repro-sim figure 12
    REPRO_PAPER_SCALE=1 repro-sim figure 13
    repro-sim sweep --protocol mb --loads 0.05,0.1,0.2
    repro-sim sweep --protocol tp --jobs 4
    repro-sim sweep --pattern transpose --find-knee
    repro-sim sweep --pattern bursty --find-knee --knee-tol 0.01
    repro-sim sweep --loads 0.28 --profile
    repro-sim chaos --seeds 20 --protocols tp,dp
    repro-sim chaos --seeds 2 --profile --profile-out chaos.pstats
    REPRO_JOBS=8 repro-sim chaos --seeds 40 --pattern hotspot
    repro-sim storm --seeds 4 --scenarios gridlock,linkstorm
    REPRO_JOBS=8 repro-sim storm --out BENCH_resilience.json

``--pattern`` selects a workload from the catalog in EXPERIMENTS.md
(uniform, hotspot, transpose, complement, tornado, nearest, bursty);
``--pattern-param key=value`` (repeatable) sets its knobs.
``--find-knee`` switches ``sweep`` from a fixed load grid to the
adaptive saturation-knee search of
:mod:`repro.experiments.saturation`.

``--jobs N`` (or ``REPRO_JOBS=N``) fans replications / campaign runs
out over N worker processes; aggregation order is deterministic, so
the output is identical to a serial run.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from repro.experiments import experiment_scale, sweep_loads
from repro.experiments.report import render_series_table
from repro.sim.config import FaultConfig, RecoveryConfig, SimulationConfig
from repro.sim.simulator import NetworkSimulator
from repro.sim.traffic import TrafficGenerator


def _pattern_params(pairs: Optional[List[str]]) -> dict:
    """Parse repeated ``--pattern-param key=value`` options.

    Values are coerced int → float → comma-separated int list →
    string, covering every knob in the catalog (counts, fractions,
    and explicit ``hotspot_nodes`` lists).
    """
    params: dict = {}
    for pair in pairs or ():
        key, sep, raw = pair.partition("=")
        if not sep or not key:
            raise SystemExit(
                f"--pattern-param expects key=value, got {pair!r}"
            )
        value: object = raw
        try:
            value = int(raw)
        except ValueError:
            try:
                value = float(raw)
            except ValueError:
                if "," in raw:
                    try:
                        value = [int(x) for x in raw.split(",")]
                    except ValueError:
                        pass
        params[key] = value
    return params


def _cmd_run(args: argparse.Namespace) -> int:
    params = {}
    if args.protocol == "tp":
        params["k_unsafe"] = args.k_unsafe
    cfg = SimulationConfig(
        k=args.k,
        n=args.n,
        protocol=args.protocol,
        protocol_params=params,
        message_length=args.message_length,
        traffic=args.pattern,
        traffic_params=_pattern_params(args.pattern_param),
        offered_load=args.load,
        warmup_cycles=args.warmup,
        measure_cycles=args.cycles,
        seed=args.seed,
        faults=FaultConfig(
            static_node_faults=args.faults,
            dynamic_faults=args.dynamic_faults,
        ),
        recovery=RecoveryConfig(
            tail_ack=args.tail_ack, retransmit=args.tail_ack
        ),
    )
    result = NetworkSimulator(cfg).run()
    print(
        f"protocol={args.protocol} pattern={args.pattern} "
        f"load={args.load} faults={args.faults} "
        f"dynamic={args.dynamic_faults}"
    )
    print(
        f"latency  {result.latency_mean:.1f} +- {result.latency_ci95:.1f} "
        f"cycles ({result.latency_count} messages)"
    )
    print(f"throughput {result.throughput:.4f} flits/node/cycle")
    print(
        f"delivered {result.delivered}  dropped {result.dropped}  "
        f"killed {result.killed}  retransmissions {result.retransmissions}"
    )
    if result.drop_reasons:
        print(f"drop reasons: {result.drop_reasons}")
    return 0


def _cmd_figure(args: argparse.Namespace) -> int:
    name = args.name.lower()
    if name in ("12", "fig12"):
        from repro.experiments import fig12_fault_free as mod

        mod.main()
    elif name in ("13", "fig13"):
        from repro.experiments import fig13_static_faults as mod

        mod.main()
    elif name in ("14", "fig14"):
        from repro.experiments import fig14_fault_sweep as mod

        mod.main()
    elif name in ("15", "fig15"):
        from repro.experiments import fig15_aggressive_vs_conservative as mod

        mod.main()
    elif name in ("17", "fig17"):
        from repro.experiments import fig17_dynamic_faults as mod

        mod.main()
    elif name == "formulas":
        from repro.experiments import formula_table as mod

        mod.main()
    elif name == "theorems":
        from repro.experiments import theorem_table as mod

        mod.main()
    elif name == "ablation":
        from repro.experiments import ablation_k as mod

        mod.main()
    elif name in ("hw-acks", "hw_acks"):
        from repro.experiments import ablation_hw_acks as mod

        mod.main()
    elif name in ("length", "length-sweep"):
        from repro.experiments import message_length_sweep as mod

        mod.main()
    elif name == "validation":
        from repro.sim import validation

        print(validation.render(validation.validate()))
    else:
        print(f"unknown figure {args.name!r}", file=sys.stderr)
        return 2
    return 0


def _run_profiled(args: argparse.Namespace) -> int:
    """Run ``args.func`` under cProfile (the ``--profile`` flag).

    With ``--profile-out`` the raw stats are dumped to that path for
    ``pstats`` / ``snakeviz``-style offline digging; otherwise the top
    entries by cumulative time go to stderr, so profiling output never
    corrupts a table or JSON payload on stdout.  Profiling forces
    ``--jobs`` to serial: work fanned out to worker processes would be
    invisible to the parent's profiler and the numbers would lie.
    """
    import cProfile
    import pstats

    if getattr(args, "jobs", None) not in (None, 1):
        print("--profile forces --jobs 1 (worker processes are "
              "invisible to the profiler)", file=sys.stderr)
    args.jobs = 1
    profiler = cProfile.Profile()
    profiler.enable()
    try:
        status = args.func(args)
    finally:
        profiler.disable()
        if args.profile_out:
            profiler.dump_stats(args.profile_out)
            print(f"wrote profile stats to {args.profile_out}",
                  file=sys.stderr)
        else:
            stats = pstats.Stats(profiler, stream=sys.stderr)
            stats.sort_stats("cumulative").print_stats(25)
    return status


def _add_profile_args(subparser: argparse.ArgumentParser) -> None:
    subparser.add_argument(
        "--profile", action="store_true",
        help=(
            "run under cProfile; top-25 cumulative functions are "
            "printed to stderr (forces --jobs 1)"
        ),
    )
    subparser.add_argument(
        "--profile-out", default=None, metavar="PATH",
        help=(
            "with --profile: dump raw pstats data to PATH instead of "
            "printing the stderr summary"
        ),
    )


def _cmd_sweep(args: argparse.Namespace) -> int:
    params = {}
    if args.protocol == "tp":
        params["k_unsafe"] = args.k_unsafe
    traffic_params = _pattern_params(args.pattern_param)
    if args.find_knee:
        from repro.experiments import saturation

        result = saturation.find_knee(
            experiment_scale(),
            args.protocol,
            params,
            traffic=args.pattern,
            traffic_params=traffic_params,
            tolerance=args.knee_tol,
            jobs=args.jobs,
        )
        print(saturation.render([result]))
        lo, hi = result.bracket
        print(f"knee bracket: [{lo:.4f}, {hi:.4f}]")
        if args.out:
            with open(args.out, "w") as fh:
                json.dump(saturation.snapshot([result]), fh, indent=2)
                fh.write("\n")
            print(f"wrote {args.out}")
        return 0
    loads = [float(x) for x in args.loads.split(",")]
    series = sweep_loads(
        experiment_scale(),
        args.protocol.upper(),
        args.protocol,
        params,
        loads=loads,
        static_faults=args.faults,
        traffic=args.pattern,
        traffic_params=traffic_params,
        jobs=args.jobs,
    )
    title = f"sweep: {args.protocol} ({args.pattern})"
    print(render_series_table([series], title=title))
    return 0


def _cmd_chaos(args: argparse.Namespace) -> int:
    from repro.faults.chaos import SCENARIOS, ChaosSpec, run_campaign
    from repro.sim.simulator import PROTOCOLS

    protocols = tuple(args.protocols.split(","))
    known = sorted(set(PROTOCOLS) | set(SCENARIOS))
    for name in protocols:
        if name not in PROTOCOLS and name not in SCENARIOS:
            print(
                f"unknown protocol {name!r}; choose from {known}",
                file=sys.stderr,
            )
            return 2
    spec = ChaosSpec(
        seeds=tuple(range(args.seeds)),
        protocols=protocols,
        k=args.k,
        n=args.n,
        offered_load=args.load,
        traffic=args.pattern,
        traffic_params=_pattern_params(args.pattern_param),
        bursts=args.bursts,
        burst_size=args.burst_size,
        node_fault_fraction=args.node_fault_fraction,
        watchdog_cycles=args.watchdog,
    )
    result = run_campaign(spec, jobs=args.jobs)
    print(result.render())
    return 0 if result.ok else 1


def _cmd_storm(args: argparse.Namespace) -> int:
    from repro.faults.chaos import (
        STORM_SCENARIOS,
        StormSpec,
        run_storm_campaign,
    )

    scenarios = tuple(args.scenarios.split(","))
    for name in scenarios:
        if name not in STORM_SCENARIOS:
            print(
                f"unknown storm scenario {name!r}; choose from "
                f"{sorted(STORM_SCENARIOS)}",
                file=sys.stderr,
            )
            return 2
    spec = StormSpec(
        seeds=tuple(range(args.seeds)),
        scenarios=scenarios,
        k=args.k,
        n=args.n,
    )
    result = run_storm_campaign(spec, jobs=args.jobs)
    print(result.render())
    if args.out:
        with open(args.out, "w") as fh:
            json.dump(result.report(), fh, indent=2)
            fh.write("\n")
        print(f"wrote {args.out}")
    return 0 if result.ok else 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-sim",
        description=(
            "Flit-level simulator for 'Configurable Flow Control "
            "Mechanisms for Fault-Tolerant Routing' (ISCA 1995)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run_p = sub.add_parser("run", help="run one simulation")
    run_p.add_argument("--protocol", default="tp",
                       choices=("tp", "dp", "mb", "det"))
    run_p.add_argument("--k", type=int, default=8, help="network radix")
    run_p.add_argument("--n", type=int, default=2, help="dimensions")
    run_p.add_argument("--load", type=float, default=0.1,
                       help="offered load, flits/node/cycle")
    run_p.add_argument("--pattern", default="uniform",
                       choices=TrafficGenerator.PATTERNS,
                       help="workload pattern (EXPERIMENTS.md catalog)")
    run_p.add_argument(
        "--pattern-param", action="append", metavar="KEY=VALUE",
        help="pattern knob, e.g. hotspot_fraction=0.3 (repeatable)",
    )
    run_p.add_argument("--message-length", type=int, default=32)
    run_p.add_argument("--faults", type=int, default=0,
                       help="static node faults")
    run_p.add_argument("--dynamic-faults", type=int, default=0)
    run_p.add_argument("--tail-ack", action="store_true",
                       help="reliable delivery with tail acknowledgments")
    run_p.add_argument("--k-unsafe", type=int, default=0,
                       help="TP scouting distance past unsafe channels")
    run_p.add_argument("--warmup", type=int, default=1000)
    run_p.add_argument("--cycles", type=int, default=5000)
    run_p.add_argument("--seed", type=int, default=1)
    run_p.set_defaults(func=_cmd_run)

    fig_p = sub.add_parser("figure", help="regenerate a paper figure")
    fig_p.add_argument(
        "name",
        help=(
            "12 | 13 | 14 | 15 | 17 | formulas | theorems | ablation "
            "| hw-acks | length | validation"
        ),
    )
    fig_p.set_defaults(func=_cmd_figure)

    sweep_p = sub.add_parser("sweep", help="latency-throughput load sweep")
    sweep_p.add_argument("--protocol", default="tp",
                         choices=("tp", "dp", "mb"))
    sweep_p.add_argument("--loads", default="0.05,0.1,0.2,0.3")
    sweep_p.add_argument("--faults", type=int, default=0)
    sweep_p.add_argument("--k-unsafe", type=int, default=0)
    sweep_p.add_argument("--pattern", default="uniform",
                         choices=TrafficGenerator.PATTERNS,
                         help="workload pattern (EXPERIMENTS.md catalog)")
    sweep_p.add_argument(
        "--pattern-param", action="append", metavar="KEY=VALUE",
        help="pattern knob, e.g. burst_on=64 (repeatable)",
    )
    sweep_p.add_argument(
        "--find-knee", action="store_true",
        help=(
            "replace the fixed load grid with the adaptive "
            "saturation-knee search (bracket + bisect)"
        ),
    )
    sweep_p.add_argument(
        "--knee-tol", type=float, default=0.02,
        help="bisection tolerance on the knee load (default: 0.02)",
    )
    sweep_p.add_argument(
        "--out", default=None,
        help="with --find-knee: write a BENCH_saturation.json snapshot",
    )
    sweep_p.add_argument(
        "--jobs", type=int, default=None,
        help=(
            "worker processes for replications (default: REPRO_JOBS "
            "env var, else serial); results are identical to a "
            "serial run"
        ),
    )
    _add_profile_args(sweep_p)
    sweep_p.set_defaults(func=_cmd_sweep)

    chaos_p = sub.add_parser(
        "chaos", help="randomized fault-storm resilience campaign"
    )
    chaos_p.add_argument("--seeds", type=int, default=20,
                         help="number of seeds per protocol")
    chaos_p.add_argument(
        "--protocols", default="tp,dp,det-naive",
        help=(
            "comma-separated protocol names; 'det-naive' is the "
            "deadlock-prone gridlock scenario"
        ),
    )
    chaos_p.add_argument("--k", type=int, default=6)
    chaos_p.add_argument("--n", type=int, default=2)
    chaos_p.add_argument("--load", type=float, default=0.08)
    chaos_p.add_argument("--pattern", default="uniform",
                         choices=TrafficGenerator.PATTERNS,
                         help="workload pattern under the fault storm")
    chaos_p.add_argument(
        "--pattern-param", action="append", metavar="KEY=VALUE",
        help="pattern knob, e.g. hotspot_count=2 (repeatable)",
    )
    chaos_p.add_argument("--bursts", type=int, default=3,
                         help="fault bursts per run")
    chaos_p.add_argument("--burst-size", type=int, default=2,
                         help="faults per burst")
    chaos_p.add_argument("--node-fault-fraction", type=float, default=0.25,
                         help="fraction of faults that kill whole nodes")
    chaos_p.add_argument("--watchdog", type=int, default=120,
                         help="watchdog window in cycles")
    chaos_p.add_argument(
        "--jobs", type=int, default=None,
        help=(
            "worker processes for the (protocol, seed) grid (default: "
            "REPRO_JOBS env var, else serial)"
        ),
    )
    _add_profile_args(chaos_p)
    chaos_p.set_defaults(func=_cmd_chaos)

    storm_p = sub.add_parser(
        "storm",
        help=(
            "storm resilience benchmark: TP-only vs online "
            "reconfiguration, head-to-head"
        ),
    )
    storm_p.add_argument("--seeds", type=int, default=4,
                         help="number of seeds per (scenario, arm)")
    storm_p.add_argument(
        "--scenarios", default="gridlock,linkstorm",
        help="comma-separated storm scenario names",
    )
    storm_p.add_argument("--k", type=int, default=6)
    storm_p.add_argument("--n", type=int, default=2)
    storm_p.add_argument(
        "--out", default=None,
        help="write the BENCH_resilience.json payload here",
    )
    storm_p.add_argument(
        "--jobs", type=int, default=None,
        help=(
            "worker processes for the (scenario, arm, seed) grid "
            "(default: REPRO_JOBS env var, else serial)"
        ),
    )
    storm_p.set_defaults(func=_cmd_storm)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if getattr(args, "profile", False):
        return _run_profiled(args)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
