"""Fault model, fault injection, and recovery mechanisms."""

from repro.faults.injection import (
    DynamicFaultSchedule,
    FaultEvent,
    place_random_node_faults,
    random_dynamic_schedule,
)
from repro.faults.model import FaultState

__all__ = [
    "DynamicFaultSchedule",
    "FaultEvent",
    "FaultState",
    "place_random_node_faults",
    "random_dynamic_schedule",
]
