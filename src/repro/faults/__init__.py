"""Fault model, fault injection, chaos storms, and recovery mechanisms.

The chaos harness (:mod:`repro.faults.chaos`) imports the simulator
facade and is therefore *not* re-exported here — importing it from this
package ``__init__`` would create a cycle through the routing
protocols.  Import it as ``from repro.faults import chaos`` or from the
top-level :mod:`repro` package.
"""

from repro.faults.injection import (
    DynamicFaultSchedule,
    FaultEvent,
    place_random_node_faults,
    random_dynamic_schedule,
)
from repro.faults.model import FaultState

__all__ = [
    "DynamicFaultSchedule",
    "FaultEvent",
    "FaultState",
    "place_random_node_faults",
    "random_dynamic_schedule",
]
