"""Fault placement and dynamic fault schedules (Sections 2.4, 6.2).

The paper's static-fault experiments place N failed nodes "randomly
throughout the network"; its dynamic-fault experiments "probabilistically
insert f faults dynamically" during the run and compare against f/2
static faults.  This module generates both kinds of scenarios:

* :func:`place_random_node_faults` — random static node faults, with an
  option to keep the healthy portion of the network connected (the
  paper notes networks usually stay connected well past the 2n-1
  theoretical budget, and undeliverable messages are handled by
  recovery; keeping connectivity makes delivery statistics meaningful).
* :class:`DynamicFaultSchedule` — fault events at random cycles on
  random live links/nodes, driven by the engine each cycle.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List, Sequence

from repro.faults.model import FaultState
from repro.network.topology import KAryNCube


def place_random_node_faults(
    fault_state: FaultState,
    count: int,
    rng: random.Random,
    keep_connected: bool = True,
    protected: Sequence[int] = (),
    max_attempts: int = 10_000,
) -> List[int]:
    """Fail ``count`` random distinct nodes; returns the failed node ids.

    With ``keep_connected`` the placement rejects nodes whose failure
    would disconnect the healthy portion of the network (retrying up to
    ``max_attempts`` candidate draws).  ``protected`` nodes are never
    failed.
    """
    topo = fault_state.topology
    if count < 0:
        raise ValueError("fault count must be non-negative")
    if count >= topo.num_nodes - len(protected):
        raise ValueError("cannot fail that many nodes")
    failed: List[int] = []
    protected_set = set(protected)
    attempts = 0
    while len(failed) < count:
        attempts += 1
        if attempts > max_attempts:
            raise RuntimeError(
                f"could not place {count} faults after {max_attempts} attempts"
            )
        node = rng.randrange(topo.num_nodes)
        if node in fault_state.faulty_nodes or node in protected_set:
            continue
        fault_state.fail_node(node)
        if keep_connected and not fault_state.healthy_nodes_connected():
            # Roll back: rebuild the fault state without this node.
            _undo_last_node(fault_state, node, failed)
            continue
        failed.append(node)
    return failed


def _undo_last_node(
    fault_state: FaultState, node: int, kept: Sequence[int]
) -> None:
    """Rebuild ``fault_state`` with ``node`` removed from the fault set.

    FaultState does not support un-failing (real failures are
    permanent), so placement rollback reconstructs the state from the
    accepted set.
    """
    fresh = FaultState(fault_state.topology)
    for kept_node in kept:
        fresh.fail_node(kept_node)
    fault_state.faulty_nodes = fresh.faulty_nodes
    fault_state.faulty_links = fresh.faulty_links
    fault_state.channel_faulty = fresh.channel_faulty
    fault_state.channel_unsafe = fresh.channel_unsafe
    fault_state.last_failed_channels = []


@dataclass
class FaultEvent:
    """One dynamic failure, applied when the simulator reaches ``cycle``."""

    cycle: int
    kind: str  # "node" or "link"
    target: int  # node id, or channel id for links

    def apply(self, fault_state: FaultState) -> None:
        if self.kind == "node":
            fault_state.fail_node(self.target)
        elif self.kind == "link":
            fault_state.fail_link(self.target)
        else:
            raise ValueError(f"unknown fault kind {self.kind!r}")


@dataclass
class DynamicFaultSchedule:
    """A time-ordered list of dynamic fault events."""

    events: List[FaultEvent] = field(default_factory=list)
    _cursor: int = 0

    def due(self, cycle: int) -> List[FaultEvent]:
        """Events scheduled at or before ``cycle`` (consumed once)."""
        due_events = []
        while self._cursor < len(self.events) and (
            self.events[self._cursor].cycle <= cycle
        ):
            due_events.append(self.events[self._cursor])
            self._cursor += 1
        return due_events

    @property
    def remaining(self) -> int:
        return len(self.events) - self._cursor


def random_dynamic_schedule(
    topology: KAryNCube,
    count: int,
    horizon: int,
    rng: random.Random,
    kind: str = "link",
    start_cycle: int = 0,
) -> DynamicFaultSchedule:
    """Schedule ``count`` dynamic faults uniformly over ``[start, horizon)``.

    Link faults (the paper's Figure 16 scenario) pick a random physical
    link; node faults pick a random node.  Targets may repeat draws but
    duplicates are filtered so exactly ``count`` distinct components
    fail.
    """
    if horizon <= start_cycle:
        raise ValueError("horizon must be beyond start_cycle")
    events: List[FaultEvent] = []
    chosen = set()
    guard = 0
    while len(events) < count:
        guard += 1
        if guard > 100 * max(count, 1) + 100:
            raise RuntimeError("could not draw enough distinct fault targets")
        if kind == "link":
            target = rng.randrange(topology.num_channels)
            # Normalize to the link (unordered pair) so both directions
            # count as one component.
            rev = topology.reverse_channel_id(target)
            key = (min(target, rev), max(target, rev))
        elif kind == "node":
            target = rng.randrange(topology.num_nodes)
            key = ("node", target)
        else:
            raise ValueError(f"unknown fault kind {kind!r}")
        if key in chosen:
            continue
        chosen.add(key)
        cycle = rng.randrange(start_cycle, horizon)
        events.append(FaultEvent(cycle=cycle, kind=kind, target=target))
    events.sort(key=lambda e: e.cycle)
    return DynamicFaultSchedule(events=events)
