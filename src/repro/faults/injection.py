"""Fault placement and dynamic fault schedules (Sections 2.4, 6.2).

The paper's static-fault experiments place N failed nodes "randomly
throughout the network"; its dynamic-fault experiments "probabilistically
insert f faults dynamically" during the run and compare against f/2
static faults.  This module generates both kinds of scenarios:

* :func:`place_random_node_faults` — random static node faults, with an
  option to keep the healthy portion of the network connected (the
  paper notes networks usually stay connected well past the 2n-1
  theoretical budget, and undeliverable messages are handled by
  recovery; keeping connectivity makes delivery statistics meaningful).
* :class:`DynamicFaultSchedule` — fault events at random cycles on
  random live links/nodes, driven by the engine each cycle.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from repro.faults.model import FaultState
from repro.network.topology import KAryNCube


def place_random_node_faults(
    fault_state: FaultState,
    count: int,
    rng: random.Random,
    keep_connected: bool = True,
    protected: Sequence[int] = (),
    max_attempts: int = 10_000,
) -> List[int]:
    """Fail ``count`` random distinct nodes; returns the failed node ids.

    With ``keep_connected`` the placement rejects nodes whose failure
    would disconnect the healthy portion of the network (retrying up to
    ``max_attempts`` candidate draws).  ``protected`` nodes are never
    failed.
    """
    topo = fault_state.topology
    if count < 0:
        raise ValueError("fault count must be non-negative")
    if count >= topo.num_nodes - len(protected):
        raise ValueError("cannot fail that many nodes")
    failed: List[int] = []
    protected_set = set(protected)
    attempts = 0
    while len(failed) < count:
        attempts += 1
        if attempts > max_attempts:
            raise RuntimeError(
                f"could not place {count} faults after {max_attempts} attempts"
            )
        node = rng.randrange(topo.num_nodes)
        if node in fault_state.faulty_nodes or node in protected_set:
            continue
        snapshot = _snapshot_before_fail(fault_state, node)
        fault_state.fail_node(node)
        if keep_connected and not fault_state.healthy_nodes_connected():
            _restore_after_rejected_fail(fault_state, node, snapshot)
            continue
        failed.append(node)
    return failed


#: Placement-rollback snapshot: the incident link keys ``fail_node``
#: would newly add, plus the prior ``last_failed_channels`` list.
_FailSnapshot = Tuple[List[Tuple[int, int]], List[int]]


def _snapshot_before_fail(
    fault_state: FaultState, node: int
) -> _FailSnapshot:
    """Record exactly the state a rejected ``fail_node`` would touch.

    FaultState does not support un-failing (real failures are
    permanent); placement rollback instead snapshots the touched state
    before the speculative failure and restores it on rejection —
    O(degree) per rejection instead of rebuilding the whole fault state
    from the accepted set (which made dense placements quadratic in the
    fault count).
    """
    topo = fault_state.topology
    new_links: List[Tuple[int, int]] = []
    for dim, direction in topo.ports(node):
        out_ch = topo.channel_id(node, dim, direction)
        in_ch = topo.reverse_channel_id(out_ch)
        link = FaultState._link_key(out_ch, in_ch)
        if link not in fault_state.faulty_links:
            new_links.append(link)
    return new_links, list(fault_state.last_failed_channels)


def _restore_after_rejected_fail(
    fault_state: FaultState, node: int, snapshot: _FailSnapshot
) -> None:
    """Undo a speculative ``fail_node`` using its pre-fail snapshot.

    ``fail_node`` recorded the channels it newly failed in
    ``last_failed_channels``; together with the snapshotted link keys
    that pins every mutation apart from the unsafe marks, which are
    re-derived (one O(channels) pass, the same cost ``fail_node``
    itself already paid).
    """
    fault_state.faulty_nodes.discard(node)
    new_links, prior_last_failed = snapshot
    for link in new_links:
        fault_state.faulty_links.discard(link)
    for ch in fault_state.last_failed_channels:
        fault_state.channel_faulty[ch] = False
    fault_state.last_failed_channels = prior_last_failed
    fault_state._recompute_unsafe()


@dataclass
class FaultEvent:
    """One dynamic failure, applied when the simulator reaches ``cycle``."""

    cycle: int
    kind: str  # "node" or "link"
    target: int  # node id, or channel id for links

    def apply(self, fault_state: FaultState) -> None:
        if self.kind == "node":
            fault_state.fail_node(self.target)
        elif self.kind == "link":
            fault_state.fail_link(self.target)
        else:
            raise ValueError(f"unknown fault kind {self.kind!r}")


@dataclass
class DynamicFaultSchedule:
    """A time-ordered list of dynamic fault events."""

    events: List[FaultEvent] = field(default_factory=list)
    _cursor: int = 0

    def due(self, cycle: int) -> List[FaultEvent]:
        """Events scheduled at or before ``cycle`` (consumed once)."""
        due_events = []
        while self._cursor < len(self.events) and (
            self.events[self._cursor].cycle <= cycle
        ):
            due_events.append(self.events[self._cursor])
            self._cursor += 1
        return due_events

    def has_due(self, cycle: int) -> bool:
        """True when at least one unconsumed event is due by ``cycle``.

        O(1) peek so the engine's fault phase can skip entirely on the
        (overwhelmingly common) cycles with nothing scheduled.
        """
        return self._cursor < len(self.events) and (
            self.events[self._cursor].cycle <= cycle
        )

    def next_cycle(self) -> Optional[int]:
        """Cycle of the next unconsumed event, or ``None`` when spent.

        Events are time-ordered, so this is the schedule's event
        horizon: no dynamic fault can strike before it.  The engine's
        fast-forward path uses it to bound how far the clock may jump.
        """
        if self._cursor < len(self.events):
            return self.events[self._cursor].cycle
        return None

    @property
    def remaining(self) -> int:
        return len(self.events) - self._cursor


def random_dynamic_schedule(
    topology: KAryNCube,
    count: int,
    horizon: int,
    rng: random.Random,
    kind: str = "link",
    start_cycle: int = 0,
) -> DynamicFaultSchedule:
    """Schedule ``count`` dynamic faults uniformly over ``[start, horizon)``.

    Link faults (the paper's Figure 16 scenario) pick a random physical
    link; node faults pick a random node.  Targets may repeat draws but
    duplicates are filtered so exactly ``count`` distinct components
    fail.
    """
    if horizon <= start_cycle:
        raise ValueError("horizon must be beyond start_cycle")
    events: List[FaultEvent] = []
    chosen = set()
    guard = 0
    while len(events) < count:
        guard += 1
        if guard > 100 * max(count, 1) + 100:
            raise RuntimeError("could not draw enough distinct fault targets")
        if kind == "link":
            target = rng.randrange(topology.num_channels)
            # Normalize to the link (unordered pair) so both directions
            # count as one component.
            rev = topology.reverse_channel_id(target)
            key = (min(target, rev), max(target, rev))
        elif kind == "node":
            target = rng.randrange(topology.num_nodes)
            key = ("node", target)
        else:
            raise ValueError(f"unknown fault kind {kind!r}")
        if key in chosen:
            continue
        chosen.add(key)
        cycle = rng.randrange(start_cycle, horizon)
        events.append(FaultEvent(cycle=cycle, kind=kind, target=target))
    events.sort(key=lambda e: e.cycle)
    return DynamicFaultSchedule(events=events)
