"""Chaos fault-storm harness (the resilience layer's adversary).

Randomized campaigns that inject *bursts* of node/link faults at
adversarial moments — while a message is mid-path-setup, while a header
is backtracking, while a kill-flit teardown is already in flight —
across many seeds and protocols, with the runtime invariant auditor
(:mod:`repro.sim.invariants`) enabled and the deadlock-recovery
watchdog (:mod:`repro.sim.postmortem`) armed.

Unlike the paper-faithful :func:`~repro.faults.injection.random_dynamic_schedule`
(faults at uniformly random cycles), the chaos controller watches live
engine state through the :meth:`NetworkSimulator.run` per-cycle hook
and schedules each fault exactly when a message is in the targeted
vulnerable phase, on a channel that message is actually holding.  Every
run must end with the network drained or every message accounted for —
this harness is the regression gate that makes aggressive engine
changes safe to land.

CLI: ``repro-sim chaos --seeds 20 --protocols tp,dp,det-naive``.

The storm *benchmark* below promotes the harness from regression gate
to measurement instrument: :func:`run_storm_campaign` runs the same
adversarial fault storms head-to-head through two recovery arms —
``tp-only`` (the paper's per-message misrouting/detours, nothing else)
and ``reconfig`` (the same protocol plus the online reconfiguration
controller of :mod:`repro.reconfig`) — and records recovery latency,
delivery ratio over storm-window traffic, victim/ejection counts, and
reconfiguration downtime.  ``benchmarks/test_bench_resilience.py``
writes the aggregate into ``BENCH_resilience.json`` (diffable with
``benchmarks/compare_bench.py --key storm_delivery_ratio``).

CLI: ``repro-sim storm --seeds 4 --scenarios gridlock,linkstorm``.
"""

from __future__ import annotations

import random
from dataclasses import asdict, dataclass, field
from multiprocessing import Pool
from typing import Dict, List, Optional, Sequence, Tuple

from repro.faults.injection import DynamicFaultSchedule, FaultEvent
from repro.sim.config import ResilienceConfig, SimulationConfig
from repro.sim.engine import DeadlockError
from repro.sim.invariants import InvariantError
from repro.sim.message import HeaderPhase, Message
from repro.sim.parallel import resolve_jobs
from repro.sim.simulator import NetworkSimulator

#: Vulnerable message phases the controller aims its bursts at.
TRIGGERS = ("setup", "backtrack", "teardown")

#: Pseudo-protocols resolving to a real protocol plus parameters.  The
#: fault-tolerant protocols (TP, DP) are deadlock-free by construction,
#: so their fault-storm runs prove the *absence* of stalls; the
#: ``det-naive`` gridlock scenario (dimension-order without dateline
#: classes — the textbook torus wormhole deadlock) proves the watchdog
#: diagnoses and recovers *real* cyclic deadlocks when they do happen.
SCENARIOS = {"det-naive": ("det", {"dateline": False})}


@dataclass
class ChaosSpec:
    """Parameters of one chaos campaign."""

    seeds: Sequence[int] = tuple(range(20))
    protocols: Sequence[str] = ("tp", "dp", "det-naive")
    k: int = 6
    n: int = 2
    offered_load: float = 0.08
    #: Workload pattern under fault storms (see the EXPERIMENTS.md
    #: catalog) — hotspot and bursty runs exercise the resilience
    #: machinery under skewed and clumped traffic.
    traffic: str = "uniform"
    traffic_params: dict = field(default_factory=dict)
    message_length: int = 8
    warmup_cycles: int = 200
    measure_cycles: int = 1000
    drain_cycles: int = 30_000
    #: Fault bursts per run, spread across the measurement window.
    bursts: int = 3
    #: Faults per burst.
    burst_size: int = 2
    #: Fraction of burst faults that kill the node at the downstream
    #: end of the targeted channel instead of the link itself.
    node_fault_fraction: float = 0.25
    #: Short watchdog so stalls are diagnosed and recovered quickly.
    watchdog_cycles: int = 120
    #: Keep the per-header wait escape far beyond the watchdog so the
    #: diagnosis/victim-ejection path is the mechanism under test.
    max_header_wait: int = 6000
    audit_every: int = 20
    max_deadlock_recoveries: int = 512
    #: Extra cycles after the drain for residual teardown tokens.
    settle_cycles: int = 200
    #: Load/length overrides for the ``det-naive`` gridlock scenario —
    #: high enough that cyclic wait genuinely forms around the rings.
    gridlock_load: float = 0.30
    gridlock_message_length: int = 16


class ChaosController:
    """Per-cycle hook that fires fault bursts at adversarial moments.

    Faults are scheduled through the engine's
    :class:`DynamicFaultSchedule` (never applied behind its back), so
    the engine's dynamic-fault phase performs the proper circuit
    interruption and kill-flit recovery for every injected fault.
    """

    def __init__(self, schedule: DynamicFaultSchedule, rng: random.Random,
                 burst_cycles: Sequence[int], burst_size: int,
                 node_fault_fraction: float, patience: int = 100):
        self.schedule = schedule
        self.rng = rng
        self.burst_cycles = list(burst_cycles)
        self.burst_size = burst_size
        self.node_fault_fraction = node_fault_fraction
        #: Cycles to wait past the due cycle for a vulnerable message
        #: before falling back to a random healthy link.
        self.patience = patience
        self.faults_injected = 0
        self.triggers_hit: List[str] = []
        self._next = 0

    def next_event_cycle(self, engine) -> Optional[int]:
        """First future cycle at which :meth:`__call__` might act.

        The engine's fast-forward contract: on a quiescent network,
        calling this hook at any cycle before the returned one is a
        pure no-op (``None`` = the hook is spent).  Before a burst's
        due cycle the hook returns immediately; at the due cycle with
        no active messages there are no vulnerable targets, so the
        burst is held until the patience deadline — the next cycle the
        hook acts regardless of network state.
        """
        if self._next >= len(self.burst_cycles):
            return None
        due = self.burst_cycles[self._next]
        if engine.cycle < due:
            return due
        return due + self.patience

    def __call__(self, engine) -> None:
        if self._next >= len(self.burst_cycles):
            return
        due = self.burst_cycles[self._next]
        if engine.cycle < due:
            return
        preferred = TRIGGERS[self._next % len(TRIGGERS)]
        trigger, targets = self._find_targets(engine, preferred)
        if not targets and engine.cycle < due + self.patience:
            return  # hold the burst until someone is vulnerable
        self._fire(engine, trigger, targets)
        self._next += 1

    # ------------------------------------------------------------------
    def _find_targets(
        self, engine, preferred: str
    ) -> Tuple[str, List[Tuple[Message, List[int]]]]:
        order = [preferred] + [t for t in TRIGGERS if t != preferred]
        for trigger in order:
            targets = self._collect(engine, trigger)
            if targets:
                return trigger, targets
        return "random", []

    @staticmethod
    def _matches(msg: Message, trigger: str) -> bool:
        if trigger == "setup":
            return not msg.teardown and msg.header_phase in (
                HeaderPhase.PENDING, HeaderPhase.IN_FLIGHT
            )
        if trigger == "backtrack":
            return not msg.teardown and (
                msg.backtrack_lock >= 0 or msg.header.backtrack
            )
        return msg.teardown  # "teardown": kill flits already traveling

    def _collect(
        self, engine, trigger: str
    ) -> List[Tuple[Message, List[int]]]:
        targets = []
        for msg in engine.active.values():
            if not msg.path or not self._matches(msg, trigger):
                continue
            links = [
                i for i in range(len(msg.path))
                if not msg.released[i]
                and not engine.faults.channel_faulty[msg.path[i].channel_id]
            ]
            if links:
                targets.append((msg, links))
        return targets

    def _fire(self, engine, trigger: str,
              targets: List[Tuple[Message, List[int]]]) -> None:
        self.triggers_hit.append(trigger)
        chosen = set()
        for _ in range(self.burst_size):
            ch = self._pick_channel(engine, targets, chosen)
            if ch is None:
                return
            chosen.add(ch)
            if self.rng.random() < self.node_fault_fraction:
                node = engine.topology.channel(ch).dst
                if engine.faults.is_node_faulty(node):
                    continue
                event = FaultEvent(
                    cycle=engine.cycle + 1, kind="node", target=node
                )
            else:
                event = FaultEvent(
                    cycle=engine.cycle + 1, kind="link", target=ch
                )
            self.schedule.events.append(event)
            self.faults_injected += 1

    def _pick_channel(self, engine, targets, chosen) -> Optional[int]:
        if targets:
            msg, links = self.rng.choice(targets)
            fresh = [
                i for i in links
                if msg.path[i].channel_id not in chosen
            ]
            if fresh:
                return msg.path[self.rng.choice(fresh)].channel_id
        healthy = [
            c for c in range(engine.topology.num_channels)
            if not engine.faults.channel_faulty[c] and c not in chosen
        ]
        return self.rng.choice(healthy) if healthy else None


@dataclass
class ChaosRunRecord:
    """Outcome of one chaos run."""

    seed: int
    protocol: str
    faults_injected: int
    triggers_hit: List[str]
    recoveries: int
    victims: List[int]
    teardown_counts: dict
    delivered: int
    dropped: int
    killed: int
    invariant_checks: int
    invariant_violations: int
    drained: bool
    accounted: bool
    error: Optional[str] = None

    @property
    def ok(self) -> bool:
        """Survived: no unhandled error, clean audits, nothing leaked."""
        return (
            self.error is None
            and self.invariant_violations == 0
            and (self.drained or self.accounted)
        )


@dataclass
class ChaosCampaignResult:
    """Aggregate verdict of a chaos campaign."""

    spec: ChaosSpec
    runs: List[ChaosRunRecord] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return bool(self.runs) and all(r.ok for r in self.runs)

    @property
    def total_recoveries(self) -> int:
        return sum(r.recoveries for r in self.runs)

    @property
    def total_faults(self) -> int:
        return sum(r.faults_injected for r in self.runs)

    @property
    def failures(self) -> List[ChaosRunRecord]:
        return [r for r in self.runs if not r.ok]

    def render(self) -> str:
        header = (
            f"{'seed':>5} {'proto':>9} {'faults':>6} {'recov':>5} "
            f"{'deliv':>5} {'drop':>4} {'kill':>4} {'audits':>6} "
            f"{'drained':>7}  status"
        )
        lines = [header, "-" * len(header)]
        for r in self.runs:
            status = "ok" if r.ok else (r.error or "LEAKED")
            lines.append(
                f"{r.seed:>5} {r.protocol:>9} {r.faults_injected:>6} "
                f"{r.recoveries:>5} {r.delivered:>5} {r.dropped:>4} "
                f"{r.killed:>4} {r.invariant_checks:>6} "
                f"{str(r.drained):>7}  {status}"
            )
        lines.append("-" * len(header))
        verdict = "PASS" if self.ok else "FAIL"
        lines.append(
            f"{verdict}: {len(self.runs)} runs, {self.total_faults} faults "
            f"injected, {self.total_recoveries} deadlock recoveries, "
            f"{len(self.failures)} failures"
        )
        return "\n".join(lines)


def burst_schedule(spec: ChaosSpec) -> List[int]:
    """Burst due-cycles spread evenly across the measurement window."""
    window = spec.measure_cycles
    return [
        spec.warmup_cycles + (i + 1) * window // (spec.bursts + 1)
        for i in range(spec.bursts)
    ]


def run_one(spec: ChaosSpec, seed: int, protocol: str) -> ChaosRunRecord:
    """One chaos run: build, storm, drain, audit, account."""
    real_protocol, params = SCENARIOS.get(protocol, (protocol, {}))
    gridlock = protocol in SCENARIOS
    cfg = SimulationConfig(
        k=spec.k, n=spec.n, protocol=real_protocol,
        protocol_params=dict(params),
        offered_load=spec.gridlock_load if gridlock else spec.offered_load,
        traffic=spec.traffic,
        traffic_params=dict(spec.traffic_params),
        message_length=(
            spec.gridlock_message_length if gridlock
            else spec.message_length
        ),
        warmup_cycles=spec.warmup_cycles,
        measure_cycles=spec.measure_cycles,
        drain_cycles=spec.drain_cycles,
        seed=seed,
        watchdog_cycles=spec.watchdog_cycles,
        max_header_wait=spec.max_header_wait,
        resilience=ResilienceConfig(
            audit_invariants=True,
            audit_every=spec.audit_every,
            max_deadlock_recoveries=spec.max_deadlock_recoveries,
        ),
    )
    sim = NetworkSimulator(cfg)
    engine = sim.engine
    if engine.dynamic_schedule is None:
        engine.dynamic_schedule = DynamicFaultSchedule()
    controller = ChaosController(
        engine.dynamic_schedule,
        random.Random((seed + 1) * 7919),
        burst_schedule(spec),
        spec.burst_size,
        spec.node_fault_fraction,
    )
    error: Optional[str] = None
    try:
        sim.run(on_cycle=controller)
        for _ in range(spec.settle_cycles):
            if engine.network_drained():
                break
            engine.step()
    except DeadlockError as exc:
        error = f"DeadlockError: {exc}"
    except InvariantError as exc:
        error = f"InvariantError: {exc}"

    if error is None:
        engine.auditor.audit()  # final audit; folds into violations_found
    records = [r for r in engine.records if not r.superseded]
    statuses = [r.status for r in records]
    accounted = (
        not engine.active
        and not any(engine.queues)
        and len(records) == engine.accepted_messages
    )
    return ChaosRunRecord(
        seed=seed,
        protocol=protocol,
        faults_injected=controller.faults_injected,
        triggers_hit=controller.triggers_hit,
        recoveries=engine.deadlock_recoveries,
        victims=list(engine.deadlock_victims),
        teardown_counts=dict(engine.teardown_counts),
        delivered=statuses.count("DELIVERED"),
        dropped=statuses.count("DROPPED"),
        killed=statuses.count("KILLED"),
        invariant_checks=(
            engine.auditor.checks_run if engine.auditor else 0
        ),
        invariant_violations=engine.auditor.violations_found,
        drained=engine.network_drained(),
        accounted=accounted,
        error=error,
    )


# ======================================================================
# Storm resilience benchmark (TP-only vs online reconfiguration)
# ======================================================================

#: Recovery arms compared head-to-head on identical storm specs.
ARMS = ("tp-only", "reconfig")


@dataclass(frozen=True)
class StormScenario:
    """One named storm shape (workload + burst pattern)."""

    name: str
    offered_load: float
    message_length: int
    bursts: int
    burst_size: int
    node_fault_fraction: float


#: The storm catalog.  ``gridlock`` is the acceptance scenario: heavy
#: clustered bursts at near-saturation load wedge whole corridors, so
#: the per-message scheme keeps paying aborts/ejections in the pocket
#: while the reconfiguration arm withdraws the pocket from the
#: candidate sets once and routes around it.  ``linkstorm`` is a
#: milder link-only storm at moderate load.
STORM_SCENARIOS: Dict[str, StormScenario] = {
    s.name: s
    for s in (
        StormScenario(
            name="gridlock", offered_load=0.22, message_length=12,
            bursts=4, burst_size=3, node_fault_fraction=0.4,
        ),
        StormScenario(
            name="linkstorm", offered_load=0.10, message_length=8,
            bursts=3, burst_size=2, node_fault_fraction=0.0,
        ),
    )
}


@dataclass
class StormSpec:
    """Parameters of one storm-benchmark campaign."""

    seeds: Sequence[int] = tuple(range(4))
    scenarios: Sequence[str] = ("gridlock", "linkstorm")
    arms: Sequence[str] = ARMS
    k: int = 6
    n: int = 2
    warmup_cycles: int = 200
    measure_cycles: int = 1500
    drain_cycles: int = 30_000
    watchdog_cycles: int = 120
    max_header_wait: int = 6000
    audit_every: int = 20
    max_deadlock_recoveries: int = 512
    settle_cycles: int = 200
    fast_forward: bool = True
    #: Reconfiguration-arm knobs (see ResilienceConfig): check often —
    #: storms are short — but demand real pressure (threshold 4) and
    #: hold each committed plan for a while (cooldown 600), so the arm
    #: reconfigures once per genuine pocket instead of churning epochs
    #: and paying drain downtime for marginal plans.
    reconfig_check_every: int = 16
    reconfig_window: int = 512
    reconfig_threshold: int = 4
    reconfig_drain_timeout: int = 200
    reconfig_cooldown: int = 600
    reconfig_unsafe_radius: int = 2


@dataclass
class StormRunRecord:
    """Outcome and recovery metrics of one storm run."""

    scenario: str
    arm: str
    seed: int
    faults_injected: int
    first_burst: int
    delivered: int
    dropped: int
    killed: int
    #: Delivery accounting restricted to messages created at or after
    #: the first burst — "delivery ratio during the storm".
    storm_delivered: int
    storm_dropped: int
    storm_killed: int
    storm_latency_mean: float
    #: Cycles from the first burst to the last recovery action (any
    #: teardown or reconfiguration commit) — how long the network kept
    #: paying for the storm.
    recovery_latency: int
    recoveries: int
    victims: int
    victim_cap_hits: int
    reconfigurations: int
    reconfig_downtime: int
    reconfig_victims: int
    invariant_checks: int
    invariant_violations: int
    drained: bool
    accounted: bool
    error: Optional[str] = None

    @property
    def storm_delivery_ratio(self) -> float:
        total = self.storm_delivered + self.storm_dropped + self.storm_killed
        return self.storm_delivered / total if total else 1.0

    @property
    def ok(self) -> bool:
        return (
            self.error is None
            and self.invariant_violations == 0
            and (self.drained or self.accounted)
        )


@dataclass
class StormCampaignResult:
    """All storm runs plus the per-(scenario, arm) aggregate rows."""

    spec: StormSpec
    runs: List[StormRunRecord] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return bool(self.runs) and all(r.ok for r in self.runs)

    @property
    def failures(self) -> List[StormRunRecord]:
        return [r for r in self.runs if not r.ok]

    def arm_runs(self, scenario: str, arm: str) -> List[StormRunRecord]:
        return [
            r for r in self.runs
            if r.scenario == scenario and r.arm == arm
        ]

    def rows(self) -> List[dict]:
        """Aggregate bench rows, one per scenario/arm (JSON-ready)."""
        out = []
        for scenario in self.spec.scenarios:
            for arm in self.spec.arms:
                runs = self.arm_runs(scenario, arm)
                if not runs:
                    continue
                n = len(runs)
                lat = [
                    r.storm_latency_mean for r in runs
                    if r.storm_latency_mean == r.storm_latency_mean
                ]
                out.append({
                    "workload": f"{scenario}/{arm}",
                    "scenario": scenario,
                    "arm": arm,
                    "seeds": n,
                    "faults_injected": sum(r.faults_injected for r in runs),
                    "storm_delivery_ratio": round(
                        sum(r.storm_delivery_ratio for r in runs) / n, 4
                    ),
                    "storm_latency_mean": round(
                        sum(lat) / len(lat), 2
                    ) if lat else float("nan"),
                    "recovery_latency_mean": round(
                        sum(r.recovery_latency for r in runs) / n, 1
                    ),
                    "recoveries": sum(r.recoveries for r in runs),
                    "victims": sum(r.victims for r in runs),
                    "victim_cap_hits": sum(r.victim_cap_hits for r in runs),
                    "reconfigurations": sum(
                        r.reconfigurations for r in runs
                    ),
                    "reconfig_downtime": sum(
                        r.reconfig_downtime for r in runs
                    ),
                    "reconfig_victims": sum(
                        r.reconfig_victims for r in runs
                    ),
                    "delivered": sum(r.delivered for r in runs),
                    "dropped": sum(r.dropped for r in runs),
                    "killed": sum(r.killed for r in runs),
                })
        return out

    def report(self) -> dict:
        """The ``BENCH_resilience.json`` payload."""
        return {
            "k": self.spec.k,
            "n": self.spec.n,
            "seeds": list(self.spec.seeds),
            "ok": self.ok,
            "workloads": self.rows(),
        }

    def render(self) -> str:
        header = (
            f"{'scenario/arm':<22} {'ratio':>6} {'lat':>8} {'recov':>6} "
            f"{'vict':>5} {'reconf':>6} {'down':>5} {'deliv':>6} "
            f"{'drop':>5} {'kill':>5}"
        )
        lines = [header, "-" * len(header)]
        for row in self.rows():
            lines.append(
                f"{row['workload']:<22} {row['storm_delivery_ratio']:>6.3f} "
                f"{row['storm_latency_mean']:>8.1f} {row['recoveries']:>6} "
                f"{row['victims']:>5} {row['reconfigurations']:>6} "
                f"{row['reconfig_downtime']:>5} {row['delivered']:>6} "
                f"{row['dropped']:>5} {row['killed']:>5}"
            )
        lines.append("-" * len(header))
        verdict = "PASS" if self.ok else "FAIL"
        lines.append(
            f"{verdict}: {len(self.runs)} runs, "
            f"{len(self.failures)} failures"
        )
        return "\n".join(lines)


def storm_config(
    spec: StormSpec, scenario: StormScenario, seed: int, arm: str
) -> SimulationConfig:
    """The SimulationConfig of one storm run (both arms share all but
    the reconfiguration switch)."""
    return SimulationConfig(
        k=spec.k, n=spec.n, protocol="tp",
        offered_load=scenario.offered_load,
        message_length=scenario.message_length,
        warmup_cycles=spec.warmup_cycles,
        measure_cycles=spec.measure_cycles,
        drain_cycles=spec.drain_cycles,
        seed=seed,
        fast_forward=spec.fast_forward,
        watchdog_cycles=spec.watchdog_cycles,
        max_header_wait=spec.max_header_wait,
        resilience=ResilienceConfig(
            audit_invariants=True,
            audit_every=spec.audit_every,
            max_deadlock_recoveries=spec.max_deadlock_recoveries,
            reconfig=(arm == "reconfig"),
            reconfig_check_every=spec.reconfig_check_every,
            reconfig_window=spec.reconfig_window,
            reconfig_threshold=spec.reconfig_threshold,
            reconfig_drain_timeout=spec.reconfig_drain_timeout,
            reconfig_cooldown=spec.reconfig_cooldown,
            reconfig_unsafe_radius=spec.reconfig_unsafe_radius,
        ),
    )


def run_storm_one(
    spec: StormSpec, scenario_name: str, seed: int, arm: str
) -> StormRunRecord:
    """One storm run: same seed, same burst targeting policy per arm.

    Head-to-head means identical spec and seed, not an identical fault
    *trace*: the chaos controller aims at live vulnerable messages, so
    once the arms diverge in routing the targeted channels may too —
    the comparison is between recovery mechanisms under the same
    adversary, exactly like the chaos harness runs.
    """
    if arm not in ARMS:
        raise ValueError(f"unknown arm {arm!r}; choose from {ARMS}")
    scenario = STORM_SCENARIOS[scenario_name]
    cfg = storm_config(spec, scenario, seed, arm)
    sim = NetworkSimulator(cfg)
    engine = sim.engine
    if engine.dynamic_schedule is None:
        engine.dynamic_schedule = DynamicFaultSchedule()
    burst_cycles = [
        spec.warmup_cycles + (i + 1) * spec.measure_cycles
        // (scenario.bursts + 1)
        for i in range(scenario.bursts)
    ]
    controller = ChaosController(
        engine.dynamic_schedule,
        random.Random((seed + 1) * 7919),
        burst_cycles,
        scenario.burst_size,
        scenario.node_fault_fraction,
    )
    first_burst = burst_cycles[0]
    error: Optional[str] = None
    try:
        sim.run(on_cycle=controller)
        for _ in range(spec.settle_cycles):
            if engine.network_drained():
                break
            engine.step()
    except DeadlockError as exc:
        error = f"DeadlockError: {exc}"
    except InvariantError as exc:
        error = f"InvariantError: {exc}"

    if error is None:
        engine.auditor.audit()
    records = [r for r in engine.records if not r.superseded]
    statuses = [r.status for r in records]
    storm_records = [r for r in records if r.created >= first_burst]
    storm_statuses = [r.status for r in storm_records]
    storm_latencies = [
        r.latency for r in storm_records
        if r.status == "DELIVERED" and r.latency is not None
    ]
    accounted = (
        not engine.active
        and not any(engine.queues)
        and len(records) == engine.accepted_messages
    )
    return StormRunRecord(
        scenario=scenario_name,
        arm=arm,
        seed=seed,
        faults_injected=controller.faults_injected,
        first_burst=first_burst,
        delivered=statuses.count("DELIVERED"),
        dropped=statuses.count("DROPPED"),
        killed=statuses.count("KILLED"),
        storm_delivered=storm_statuses.count("DELIVERED"),
        storm_dropped=storm_statuses.count("DROPPED"),
        storm_killed=storm_statuses.count("KILLED"),
        storm_latency_mean=(
            sum(storm_latencies) / len(storm_latencies)
            if storm_latencies else float("nan")
        ),
        recovery_latency=max(
            0, engine.last_recovery_cycle - first_burst
        ) if engine.last_recovery_cycle else 0,
        recoveries=engine.deadlock_recoveries,
        victims=len(engine.deadlock_victims),
        victim_cap_hits=engine.victim_cap_hits,
        reconfigurations=engine.reconfigurations,
        reconfig_downtime=engine.reconfig_downtime_cycles,
        reconfig_victims=len(engine.reconfig_victims),
        invariant_checks=(
            engine.auditor.checks_run if engine.auditor else 0
        ),
        invariant_violations=engine.auditor.violations_found,
        drained=engine.network_drained(),
        accounted=accounted,
        error=error,
    )


def run_storm_campaign(
    spec: Optional[StormSpec] = None,
    jobs: Optional[int] = None,
) -> StormCampaignResult:
    """Every scenario crossed with every arm and seed, serial-identical.

    Like :func:`run_campaign`, runs are independent simulations fanned
    out over a process pool in submission order (scenario-major, then
    arm, then seed), so parallel and serial campaigns produce the same
    run list byte for byte.
    """
    spec = spec if spec is not None else StormSpec()
    for name in spec.scenarios:
        if name not in STORM_SCENARIOS:
            raise ValueError(
                f"unknown storm scenario {name!r}; choose from "
                f"{sorted(STORM_SCENARIOS)}"
            )
    tasks = [
        (spec, scenario, seed, arm)
        for scenario in spec.scenarios
        for arm in spec.arms
        for seed in spec.seeds
    ]
    result = StormCampaignResult(spec=spec)
    jobs = resolve_jobs(jobs)
    if jobs <= 1 or len(tasks) <= 1:
        result.runs.extend(run_storm_one(*task) for task in tasks)
    else:
        with Pool(processes=min(jobs, len(tasks))) as pool:
            result.runs.extend(
                pool.starmap(run_storm_one, tasks, chunksize=1)
            )
    return result


def storm_record_dicts(result: StormCampaignResult) -> List[dict]:
    """Plain-dict run records (determinism tests compare these)."""
    return [asdict(r) for r in result.runs]


def run_campaign(
    spec: Optional[ChaosSpec] = None,
    jobs: Optional[int] = None,
) -> ChaosCampaignResult:
    """The full campaign: every seed crossed with every protocol.

    Each (protocol, seed) run is an independent simulation, so with
    ``jobs > 1`` (or ``REPRO_JOBS``) the grid fans out over a process
    pool.  Results are collected in submission order — the same
    protocol-major, seed-minor order as the serial loop — so the
    campaign record list is identical either way.
    """
    spec = spec if spec is not None else ChaosSpec()
    tasks = [
        (spec, seed, protocol)
        for protocol in spec.protocols
        for seed in spec.seeds
    ]
    result = ChaosCampaignResult(spec=spec)
    jobs = resolve_jobs(jobs)
    if jobs <= 1 or len(tasks) <= 1:
        result.runs.extend(run_one(*task) for task in tasks)
    else:
        with Pool(processes=min(jobs, len(tasks))) as pool:
            result.runs.extend(pool.starmap(run_one, tasks, chunksize=1))
    return result
