"""Fault model: failed nodes, failed links, unsafe channels (Section 2.4).

The detection mechanisms assumed by the paper identify two fault types:

* a processing element together with its router fails — every physical
  link incident on the node is marked faulty; or
* a communication channel (physical link) fails — every virtual channel
  on it, in both directions, is marked faulty.

In addition, healthy physical channels incident on PEs *adjacent* to a
failed component are marked **unsafe** (Figure 3): routing across them
may lead to an encounter with a failed component.  The Two-Phase
protocol keys its optimistic-to-conservative flow-control switch off
this designation.

Failures are permanent (static at power-on, or dynamic during
operation) and :class:`FaultState` supports incremental updates so the
simulator can inject dynamic faults mid-run.

Beyond the paper's per-message reaction, the online reconfiguration
subsystem (:mod:`repro.reconfig`) can push a *routing restriction
epoch* through this class: a set of **restricted** channels (healthy,
but withdrawn from adaptive/misroute candidate sets except for the
final delivery hop) and a widened **unsafe radius** (the at-risk ball
around faulty components grows from the paper's 1-hop adjacency to an
r-hop BFS ball, switching TP to its conservative phase earlier around
fault pockets).  Both are committed atomically by :meth:`reconfigure`
and funnel through :meth:`_recompute_unsafe`, so route caches see
exactly one epoch bump per reconfiguration.
"""

from __future__ import annotations

from collections import deque
from typing import Iterable, List, Optional, Set, Tuple

from repro.network.topology import KAryNCube


class FaultState:
    """Mutable fault status of every node and channel in a network."""

    def __init__(self, topology: KAryNCube):
        self.topology = topology
        self.faulty_nodes: Set[int] = set()
        #: Failed physical links as unordered channel-id pairs; both
        #: directed channels of a link fail together.
        self.faulty_links: Set[Tuple[int, int]] = set()
        self.channel_faulty: List[bool] = [False] * topology.num_channels
        self.channel_unsafe: List[bool] = [False] * topology.num_channels
        #: Healthy channels withdrawn from adaptive/misroute candidate
        #: sets by an online reconfiguration (:mod:`repro.reconfig`).
        #: The dimension-order escape layer and the final delivery hop
        #: ignore restrictions, so deliverability is never reduced.
        self.channel_restricted: List[bool] = [False] * topology.num_channels
        #: Radius of the at-risk ball around faulty components; 1 is
        #: the paper's "adjacent PE" rule (Figure 3), larger values are
        #: committed by :meth:`reconfigure`.
        self.unsafe_radius: int = 1
        #: Committed reconfigurations (restriction epochs) so far.
        self.restriction_epoch: int = 0
        #: Channels whose fault status changed in the most recent
        #: update; the engine uses this to find interrupted messages.
        self.last_failed_channels: List[int] = []
        #: Monotonic fault epoch, bumped whenever the faulty/unsafe
        #: designations change (including placement rollbacks).  Route
        #: caches key their fault-dependent entries on this counter.
        self.epoch: int = 0

    # ------------------------------------------------------------------
    # Fault injection
    # ------------------------------------------------------------------
    def fail_node(self, node: int) -> None:
        """Fail a PE and its router: all incident links become faulty."""
        topo = self.topology
        if node in self.faulty_nodes:
            return
        self.faulty_nodes.add(node)
        newly_failed = []
        for dim, direction in topo.ports(node):
            out_ch = topo.channel_id(node, dim, direction)
            in_ch = topo.reverse_channel_id(out_ch)
            link = self._link_key(out_ch, in_ch)
            if link not in self.faulty_links:
                self.faulty_links.add(link)
            for ch in (out_ch, in_ch):
                if not self.channel_faulty[ch]:
                    self.channel_faulty[ch] = True
                    newly_failed.append(ch)
        self.last_failed_channels = newly_failed
        self._recompute_unsafe()

    def fail_link(self, channel_id: int) -> None:
        """Fail a physical link (both directed channels)."""
        rev = self.topology.reverse_channel_id(channel_id)
        link = self._link_key(channel_id, rev)
        if link in self.faulty_links:
            return
        self.faulty_links.add(link)
        newly_failed = []
        for ch in (channel_id, rev):
            if not self.channel_faulty[ch]:
                self.channel_faulty[ch] = True
                newly_failed.append(ch)
        self.last_failed_channels = newly_failed
        self._recompute_unsafe()

    def fail_nodes(self, nodes: Iterable[int]) -> None:
        for node in nodes:
            self.fail_node(node)

    @staticmethod
    def _link_key(a: int, b: int) -> Tuple[int, int]:
        return (a, b) if a < b else (b, a)

    # ------------------------------------------------------------------
    # Derived status
    # ------------------------------------------------------------------
    def _recompute_unsafe(self) -> None:
        """Re-derive unsafe marks from the current fault sets.

        A healthy channel ``u -> v`` is unsafe iff its head node ``v``
        is *at risk*: within :attr:`unsafe_radius` hops (over healthy
        channels) of a node incident to a faulty channel.  At the
        default radius 1 the at-risk set is exactly the paper's rule —
        nodes touching a failed component — and the marks are
        bit-identical to the pre-reconfiguration implementation.

        Every mutation of the fault sets funnels through here, so this
        is also the single point that advances the fault epoch.
        """
        self.epoch += 1
        topo = self.topology
        at_risk = [False] * topo.num_nodes
        frontier: List[int] = []
        for ch_id, faulty in enumerate(self.channel_faulty):
            if faulty:
                c = topo.channel(ch_id)
                for node in (c.src, c.dst):
                    if not at_risk[node]:
                        at_risk[node] = True
                        frontier.append(node)
        for _ in range(self.unsafe_radius - 1):
            if not frontier:
                break
            nxt: List[int] = []
            for node in frontier:
                for dim, direction in topo.ports(node):
                    ch = topo.channel_id(node, dim, direction)
                    if self.channel_faulty[ch]:
                        continue
                    v = topo.channel(ch).dst
                    if not at_risk[v]:
                        at_risk[v] = True
                        nxt.append(v)
            frontier = nxt
        for ch_id in range(topo.num_channels):
            if self.channel_faulty[ch_id]:
                self.channel_unsafe[ch_id] = False
            else:
                self.channel_unsafe[ch_id] = at_risk[topo.channel(ch_id).dst]

    def reconfigure(
        self,
        restricted_channels: Iterable[int],
        unsafe_radius: Optional[int] = None,
    ) -> None:
        """Atomically commit a new routing-restriction epoch.

        Replaces the restricted-channel set (faulty channels are never
        marked restricted — faulty already dominates in every consumer)
        and optionally the unsafe radius, then re-derives the unsafe
        marks.  Exactly one epoch bump, so
        :class:`~repro.routing.cache.RouteCache` invalidates once and
        the next candidate lookup sees the fully committed epoch —
        callers (the reconfiguration controller) must only invoke this
        when no message is mid-route, per the drain protocol.
        """
        if unsafe_radius is not None:
            if unsafe_radius < 1:
                raise ValueError("unsafe_radius must be >= 1")
            self.unsafe_radius = unsafe_radius
        restricted = [False] * self.topology.num_channels
        for ch in restricted_channels:
            if not self.channel_faulty[ch]:
                restricted[ch] = True
        self.channel_restricted = restricted
        self.restriction_epoch += 1
        self._recompute_unsafe()

    def is_node_faulty(self, node: int) -> bool:
        return node in self.faulty_nodes

    def is_channel_faulty(self, channel_id: int) -> bool:
        return self.channel_faulty[channel_id]

    def is_channel_unsafe(self, channel_id: int) -> bool:
        return self.channel_unsafe[channel_id]

    def is_channel_restricted(self, channel_id: int) -> bool:
        return self.channel_restricted[channel_id]

    @property
    def num_faults(self) -> int:
        """Total failed components (nodes + independently failed links)."""
        node_links = set()
        for node in self.faulty_nodes:
            for dim, direction in self.topology.ports(node):
                ch = self.topology.channel_id(node, dim, direction)
                node_links.add(self._link_key(ch, self.topology.reverse_channel_id(ch)))
        independent_links = len(self.faulty_links - node_links)
        return len(self.faulty_nodes) + independent_links

    # ------------------------------------------------------------------
    # Connectivity
    # ------------------------------------------------------------------
    def healthy_neighbors(self, node: int) -> List[int]:
        """Neighbors reachable over healthy channels from ``node``."""
        topo = self.topology
        result = []
        for dim, direction in topo.ports(node):
            ch = topo.channel_id(node, dim, direction)
            if not self.channel_faulty[ch]:
                result.append(topo.channel(ch).dst)
        return result

    def reachable(self, src: int, dst: int) -> bool:
        """Whether ``dst`` is reachable from ``src`` over healthy links."""
        if self.is_node_faulty(src) or self.is_node_faulty(dst):
            return False
        if src == dst:
            return True
        seen = {src}
        frontier = deque([src])
        while frontier:
            node = frontier.popleft()
            for nxt in self.healthy_neighbors(node):
                if nxt == dst:
                    return True
                if nxt not in seen:
                    seen.add(nxt)
                    frontier.append(nxt)
        return False

    def healthy_nodes_connected(self) -> bool:
        """Whether all healthy nodes form one connected component."""
        healthy = [
            node
            for node in range(self.topology.num_nodes)
            if node not in self.faulty_nodes
        ]
        if not healthy:
            return True
        seen = {healthy[0]}
        frontier = deque([healthy[0]])
        while frontier:
            node = frontier.popleft()
            for nxt in self.healthy_neighbors(node):
                if nxt not in seen:
                    seen.add(nxt)
                    frontier.append(nxt)
        return len(seen) == len(healthy)

    def shortest_healthy_distance(self, src: int, dst: int) -> Optional[int]:
        """BFS hop count over healthy channels, or ``None`` if cut off."""
        if self.is_node_faulty(src) or self.is_node_faulty(dst):
            return None
        if src == dst:
            return 0
        seen = {src: 0}
        frontier = deque([src])
        while frontier:
            node = frontier.popleft()
            for nxt in self.healthy_neighbors(node):
                if nxt in seen:
                    continue
                seen[nxt] = seen[node] + 1
                if nxt == dst:
                    return seen[nxt]
                frontier.append(nxt)
        return None
