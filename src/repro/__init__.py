"""repro: reproduction of "Configurable Flow Control Mechanisms for
Fault-Tolerant Routing" (Dao, Duato, Yalamanchili, ISCA 1995).

A flit-level k-ary n-cube network simulator with configurable flow
control (wormhole / scouting / pipelined circuit switching), the
Two-Phase fault-tolerant routing protocol, the DP and MB-m baselines,
static and dynamic fault models with kill-flit recovery, and the full
benchmark harness regenerating the paper's evaluation figures.
"""

from repro.core.flow_control import FlowControlConfig, FlowControlKind
from repro.core.two_phase import TwoPhaseProtocol
from repro.faults.model import FaultState
from repro.network.topology import KAryNCube
from repro.routing.duato import DuatoProtocol
from repro.routing.mb import MBmProtocol
from repro.faults.chaos import ChaosCampaignResult, ChaosSpec, run_campaign
from repro.sim.config import (
    FaultConfig,
    RecoveryConfig,
    ResilienceConfig,
    SimulationConfig,
)
from repro.sim.invariants import InvariantError, InvariantViolation
from repro.sim.simulator import NetworkSimulator, make_protocol, run_config
from repro.sim.stats import RunResult, repeat_until_confident
from repro.sim.trace import MessageTracer, trace_single_message

__version__ = "1.0.0"

__all__ = [
    "ChaosCampaignResult",
    "ChaosSpec",
    "DuatoProtocol",
    "FaultConfig",
    "FaultState",
    "InvariantError",
    "InvariantViolation",
    "FlowControlConfig",
    "FlowControlKind",
    "KAryNCube",
    "MBmProtocol",
    "MessageTracer",
    "NetworkSimulator",
    "RecoveryConfig",
    "ResilienceConfig",
    "RunResult",
    "SimulationConfig",
    "TwoPhaseProtocol",
    "make_protocol",
    "repeat_until_confident",
    "run_campaign",
    "run_config",
    "trace_single_message",
    "__version__",
]
