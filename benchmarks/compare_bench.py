"""Compare two ``BENCH_engine.json`` snapshots workload by workload.

Usage::

    python benchmarks/compare_bench.py BASELINE.json CURRENT.json \
        [--threshold 0.05]

Prints a per-workload table of simulated cycles per second (baseline,
current, and the relative delta) and exits nonzero when any workload
present in both files regressed by more than ``--threshold`` (default
5%).  Speedups never fail; workloads present on only one side are
reported but ignored for the verdict, so adding or retiring a workload
does not break the comparison.

``--key`` selects which numeric field is compared (default
``cycles_per_sec``).  ``--key events_per_sec`` compares interpreter
cost per simulation event (flit hops + ejections + header decisions)
instead — unlike cycles/s it is insensitive to how much of the
horizon the quiescence fast-forward skipped, so it isolates hot-path
cost from scheduling-efficiency changes.  Saturation snapshots from
``repro.experiments.saturation`` share the same shape, so
``--key knee_throughput`` diffs two ``BENCH_saturation.json`` files.
``--events`` is shorthand for ``--key events_per_sec``.

CI runs this twice against the committed snapshot: once over every
workload informationally (the numbers are machine-dependent, so small
deltas are hints, not verdicts), and once as a hard gate with
``--workloads tp-high,dp-high --threshold 0.25`` — a saturated
workload losing more than a quarter of its cycles/s is an engine
regression, not runner noise.  Run it locally against a baseline
produced on the same machine to validate an engine optimisation.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
from typing import List, Optional


def load_rows(path: pathlib.Path) -> dict:
    """Map workload name -> row for one BENCH_engine.json file."""
    report = json.loads(path.read_text())
    return {row["workload"]: row for row in report["workloads"]}


def compare(baseline: dict, current: dict, threshold: float,
            key: str = "cycles_per_sec",
            workloads: Optional[List[str]] = None):
    """Per-workload comparison rows plus the list of regressions.

    Returns ``(rows, regressions)``; each row is a dict with the
    workload name, both ``key`` figures (``None`` when the workload
    is missing on that side), and ``delta`` (relative change, ``None``
    unless present on both sides).  ``regressions`` lists the names
    whose figure dropped by more than ``threshold``.  ``workloads``
    restricts the comparison (and therefore the verdict) to the named
    subset — the CI perf gate uses it to assert only on the saturated
    workloads, whose throughput is dominated by engine work rather
    than scheduling noise.
    """
    names = set(baseline) | set(current)
    if workloads is not None:
        names &= set(workloads)
    rows: List[dict] = []
    regressions: List[str] = []
    for name in sorted(names):
        base = baseline.get(name)
        cur = current.get(name)
        base_cps: Optional[float] = base and base.get(key)
        cur_cps: Optional[float] = cur and cur.get(key)
        delta: Optional[float] = None
        if base_cps and cur_cps:
            delta = (cur_cps - base_cps) / base_cps
            if delta < -threshold:
                regressions.append(name)
        rows.append({
            "workload": name,
            "baseline": base_cps,
            "current": cur_cps,
            "delta": delta,
        })
    return rows, regressions


def _fmt(value: Optional[float]) -> str:
    if value is None:
        return f"{'-':>12}"
    # Saturation keys are O(0.1) flits/node/cycle; cycles/sec are large.
    if abs(value) < 100:
        return f"{value:>12,.4f}"
    return f"{value:>12,.0f}"


def render(rows: List[dict], regressions: List[str],
           threshold: float) -> str:
    header = (
        f"{'workload':<20} {'baseline':>12} {'current':>12} {'delta':>8}"
    )
    lines = [header, "-" * len(header)]
    for row in rows:
        base = _fmt(row["baseline"])
        cur = _fmt(row["current"])
        if row["delta"] is None:
            delta = f"{'-':>8}"
        else:
            mark = " *" if row["workload"] in regressions else ""
            delta = f"{row['delta']:>+8.1%}{mark}"
        lines.append(f"{row['workload']:<20} {base} {cur} {delta}")
    lines.append("-" * len(header))
    if regressions:
        lines.append(
            f"FAIL: {len(regressions)} workload(s) regressed more than "
            f"{threshold:.0%}: {', '.join(regressions)}"
        )
    else:
        lines.append(f"PASS: no workload regressed more than {threshold:.0%}")
    return "\n".join(lines)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="Diff two BENCH_engine.json files (cycles/sec)."
    )
    parser.add_argument("baseline", type=pathlib.Path,
                        help="baseline BENCH_engine.json")
    parser.add_argument("current", type=pathlib.Path,
                        help="current BENCH_engine.json")
    parser.add_argument(
        "--threshold", type=float, default=0.05,
        help="max tolerated relative throughput drop (default: 0.05)",
    )
    parser.add_argument(
        "--key", default="cycles_per_sec",
        help=(
            "numeric row field to compare (default: cycles_per_sec; "
            "use knee_throughput for BENCH_saturation.json)"
        ),
    )
    parser.add_argument(
        "--events", action="store_true",
        help=(
            "shorthand for --key events_per_sec: compare per-event "
            "interpreter cost (flit hops + ejections + header "
            "decisions per wall second) instead of cycles/s"
        ),
    )
    parser.add_argument(
        "--workloads", default=None,
        help=(
            "comma-separated workload names to compare; everything "
            "else is excluded from the table and the verdict "
            "(CI gates only the saturated workloads this way)"
        ),
    )
    args = parser.parse_args(argv)
    key = "events_per_sec" if args.events else args.key
    workloads = (
        [w for w in args.workloads.split(",") if w]
        if args.workloads else None
    )
    rows, regressions = compare(
        load_rows(args.baseline), load_rows(args.current),
        args.threshold, key=key, workloads=workloads,
    )
    print(render(rows, regressions, args.threshold))
    return 1 if regressions else 0


if __name__ == "__main__":
    sys.exit(main())
