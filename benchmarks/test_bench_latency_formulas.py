"""E1 — Section 2.2 / Figure 1: minimum-latency table.

Regenerates the WR / SR(K) / PCS latency comparison; every measured
value must equal the paper's closed-form expression.
"""

from repro.experiments import formula_table

from .conftest import run_and_report


def test_bench_formula_table(benchmark):
    rows = run_and_report(
        benchmark,
        lambda: formula_table.run(
            link_grid=(1, 2, 4, 7),
            length_grid=(1, 8, 32),
            k_grid=(1, 3),
        ),
        formula_table.render,
        name="formula_table",
    )
    assert all(r.match for r in rows)
