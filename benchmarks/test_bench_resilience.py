"""P2 — storm resilience: TP-only vs online reconfiguration.

Runs the chaos storm benchmark (:mod:`repro.faults.chaos`) head-to-head
through both recovery arms and records delivery ratio during the storm,
recovery latency, victim/ejection counts, and reconfiguration downtime
in ``BENCH_resilience.json`` at the repository root, which CI uploads
and diffs as an informational artifact
(``benchmarks/compare_bench.py --key storm_delivery_ratio``).

Unlike the perf benchmarks the aggregate here is deterministic (fixed
seeds, submission-order collection), so one outcome *is* asserted: on
the ``gridlock`` scenario — the acceptance scenario, where clustered
bursts wedge whole corridors — the reconfiguration arm must deliver at
least as well during the storm as per-message recovery alone.

``REPRO_QUICK=1`` shrinks the seed set for CI smoke runs.
"""

import json
import os
import pathlib

from repro.faults.chaos import StormSpec, run_storm_campaign

from .conftest import run_and_report

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
BENCH_JSON = REPO_ROOT / "BENCH_resilience.json"


def bench_spec() -> StormSpec:
    if os.environ.get("REPRO_QUICK") == "1":
        return StormSpec(seeds=tuple(range(2)))
    return StormSpec()


def run_storms():
    result = run_storm_campaign(bench_spec())
    report = result.report()
    report["render"] = result.render()
    return report


def render(report):
    return report["render"]


def test_bench_resilience(benchmark):
    report = run_and_report(benchmark, run_storms, render,
                            name="resilience")
    payload = {k: v for k, v in report.items() if k != "render"}
    BENCH_JSON.write_text(json.dumps(payload, indent=2) + "\n")

    assert report["ok"], "a storm run leaked messages or failed an audit"
    by_arm = {row["workload"]: row for row in payload["workloads"]}
    gridlock_tp = by_arm["gridlock/tp-only"]
    gridlock_rc = by_arm["gridlock/reconfig"]
    # The tentpole's acceptance bar: online reconfiguration must not
    # lose storm-window traffic that per-message recovery saves.
    assert (gridlock_rc["storm_delivery_ratio"]
            >= gridlock_tp["storm_delivery_ratio"])
    assert gridlock_rc["reconfigurations"] > 0
