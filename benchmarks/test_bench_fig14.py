"""E5 — Figure 14: latency and throughput as a function of node faults.

Expected shape: at low loads MB-m's latency stays nearly flat across
the fault sweep; TP wins at low fault counts; at the highest offered
load TP's accepted throughput falls as faults accumulate.
"""

from repro.experiments import experiment_scale, fig14_fault_sweep

from .conftest import run_and_report


def test_bench_fig14(benchmark):
    scale = experiment_scale()
    exp = run_and_report(
        benchmark,
        lambda: fig14_fault_sweep.run(scale=scale),
        fig14_fault_sweep.render,
        name="fig14",
    )
    # MB-m latency roughly flat at the lowest load (paper: "remains
    # relatively flat regardless of the number of faults").
    mb_low = exp.series_by_label("MB-m (1)")
    lats = [p.latency for p in mb_low.points]
    assert max(lats) < min(lats) * 1.6
    # TP beats MB-m with few faults at moderate load.
    tp = exp.series_by_label("TP (10)")
    mb = exp.series_by_label("MB-m (10)")
    assert tp.points[0].latency < mb.points[0].latency
    # At the top load TP throughput drops as faults grow.
    tp_hi = exp.series_by_label("TP (50)")
    assert tp_hi.points[-1].throughput < tp_hi.points[0].throughput
