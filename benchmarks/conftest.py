"""Benchmark harness configuration.

Each benchmark file regenerates one of the paper's evaluation artifacts
(see DESIGN.md's experiment index) and prints the series/table the
paper reports, so curve *shapes* can be compared directly.  The
pytest-benchmark timing wraps the full experiment.

Scale control:

* default — reduced scale (8-ary 2-cube, shortened runs, fault counts
  scaled by the node ratio): the whole suite completes in laptop time;
* ``REPRO_PAPER_SCALE=1`` — the paper's 16-ary 2-cube parameters;
* ``REPRO_QUICK=1`` — tiny smoke-test scale for CI.
"""

from __future__ import annotations

import pathlib
import sys

import pytest

#: Rendered figure reports land here (one file per benchmark) in
#: addition to being written to the terminal past pytest's capture.
RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture
def bench_scale():
    from repro.experiments import experiment_scale

    return experiment_scale()


def run_and_report(benchmark, runner, renderer, name: str = ""):
    """Benchmark ``runner`` once; print and persist its report."""
    result = benchmark.pedantic(runner, rounds=1, iterations=1)
    report = renderer(result)
    # Bypass pytest's capture so the figure tables always appear in the
    # benchmark run's output, mirroring how the paper's plots accompany
    # the measurements.
    sys.__stdout__.write("\n" + report + "\n")
    sys.__stdout__.flush()
    if not name:
        name = getattr(benchmark, "name", "report") or "report"
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(report + "\n")
    return result
