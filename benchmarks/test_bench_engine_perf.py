"""P1 — engine performance: simulated cycles per second over a matrix.

Times simulation runs across a small protocol / load / fault grid and
records wall-clock time plus simulated cycles per second in
``BENCH_engine.json`` at the repository root, which CI uploads as an
artifact.  The *saturated* workloads (``tp-high``, ``dp-high``) are
timed three times and report the median wall clock — they gate CI, so
their figure should not hinge on one scheduler hiccup; the rest run
once and stay informational.  Every row also records ``events`` (data
flit hops + ejections + header routing decisions — the simulation's
unit of real work) and ``events_per_sec``, which tracks interpreter
cost per event independently of how much of the horizon the
quiescence fast-forward skipped.  CI's perf-smoke job hard-fails when
a saturated workload loses more than 25% cycles/s against the
committed snapshot — see ``benchmarks/compare_bench.py --workloads``.
"""

import json
import pathlib
import statistics
import time

from repro.experiments.common import base_config, experiment_scale
from repro.sim.config import FaultConfig
from repro.sim.simulator import NetworkSimulator

from .conftest import run_and_report

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
BENCH_JSON = REPO_ROOT / "BENCH_engine.json"

#: (name, protocol, params, offered load, dynamic faults, overrides) —
#: low and near-saturation load for the paper's default protocol, a
#: dynamic-fault storm, the two comparison protocols, and two
#: ultra-low-load long-horizon workloads where the quiescence
#: fast-forward dominates (most cycles have nothing in flight).
WORKLOADS = (
    ("tp-low", "tp", {"k_unsafe": 0}, 0.10, 0, {}),
    ("tp-high", "tp", {"k_unsafe": 0}, 0.28, 0, {}),
    ("tp-dynamic-faults", "tp", {"k_unsafe": 0}, 0.10, 2, {}),
    ("dp-low", "dp", {}, 0.10, 0, {}),
    ("dp-high", "dp", {}, 0.28, 0, {}),
    ("mb-low", "mb", {}, 0.10, 0, {}),
    ("tp-idle-long", "tp", {"k_unsafe": 0}, 0.002, 0,
     {"warmup_cycles": 2000, "measure_cycles": 60_000,
      "drain_cycles": 4000}),
    ("tp-idle-faults", "tp", {"k_unsafe": 0}, 0.002, 2,
     {"warmup_cycles": 2000, "measure_cycles": 60_000,
      "drain_cycles": 4000}),
    # Workload-catalog patterns: hotspot concentrates contention on a
    # few routers; bursty alternates saturated ON windows with long
    # quiescent OFF stretches the fast-forward should eat.
    ("tp-hotspot", "tp", {"k_unsafe": 0}, 0.10, 0,
     {"traffic": "hotspot",
      "traffic_params": {"hotspot_fraction": 0.3, "hotspot_count": 4}}),
    ("tp-bursty", "tp", {"k_unsafe": 0}, 0.06, 0,
     {"traffic": "bursty",
      "traffic_params": {"burst_on": 64, "burst_off": 192}}),
)


#: Workloads whose cycles/s figure gates CI: timed ``_GATED_ROUNDS``
#: times, reporting the median wall clock.
SATURATED = frozenset({"tp-high", "dp-high"})
_GATED_ROUNDS = 3


def _run_once(cfg):
    """One timed run; returns (wall seconds, RunResult, engine)."""
    sim = NetworkSimulator(cfg)
    start = time.perf_counter()
    result = sim.run()
    wall = time.perf_counter() - start
    return wall, result, sim.engine


def run_matrix():
    scale = experiment_scale()
    rows = []
    for name, protocol, params, load, dynamic, overrides in WORKLOADS:
        cfg = base_config(scale, protocol, params,
                          offered_load=load, seed=42, **overrides)
        if dynamic:
            cfg = cfg.with_(faults=FaultConfig(
                dynamic_faults=dynamic, dynamic_start=cfg.warmup_cycles,
            ))
        rounds = _GATED_ROUNDS if name in SATURATED else 1
        # Repeats rebuild the simulator from the same config/seed, so
        # cycles and event counts are identical across rounds — only
        # the wall clock varies, and the median damps runner noise.
        walls = []
        for _ in range(rounds):
            wall, result, engine = _run_once(cfg)
            walls.append(wall)
        wall = statistics.median(walls)
        events = (engine.data_flits_moved + engine.flits_ejected
                  + engine.header_decisions)
        rows.append({
            "workload": name,
            "protocol": protocol,
            "offered_load": load,
            "dynamic_faults": dynamic,
            "cycles": result.cycles,
            "wall_s": round(wall, 4),
            "cycles_per_sec": round(result.cycles / wall, 1),
            "events": events,
            "events_per_sec": round(events / wall, 1),
            "rounds": rounds,
            "delivered": result.delivered,
            "drained": result.drained,
        })
    return {
        "scale": scale.name,
        "k": scale.k,
        "n": scale.n,
        "workloads": rows,
    }


def render(report):
    title = (
        f"engine perf ({report['scale']} scale, "
        f"{report['k']}-ary {report['n']}-cube)"
    )
    header = (
        f"{'workload':<20} {'cycles':>8} {'wall_s':>8} {'cyc/s':>10} "
        f"{'events':>9} {'ev/s':>10}"
    )
    lines = [title, header, "-" * len(header)]
    for row in report["workloads"]:
        lines.append(
            f"{row['workload']:<20} {row['cycles']:>8} "
            f"{row['wall_s']:>8.3f} {row['cycles_per_sec']:>10,.0f} "
            f"{row['events']:>9} {row['events_per_sec']:>10,.0f}"
        )
    return "\n".join(lines)


def test_bench_engine_perf(benchmark):
    report = run_and_report(benchmark, run_matrix, render,
                            name="engine_perf")
    BENCH_JSON.write_text(json.dumps(report, indent=2) + "\n")
    for row in report["workloads"]:
        assert row["cycles"] > 0
        assert row["cycles_per_sec"] > 0
        assert row["events"] > 0
        assert row["events_per_sec"] > 0
        assert row["delivered"] > 0
        assert row["rounds"] == (
            _GATED_ROUNDS if row["workload"] in SATURATED else 1
        )
