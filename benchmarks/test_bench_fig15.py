"""E6 — Figure 15: aggressive (K=0) vs conservative (K=3) scouting.

Expected shape: near-identical at one fault and low load; the
aggressive configuration no worse — and clearly better near saturation
with many faults — because K>0 acknowledgment traffic outweighs the
detours it saves.
"""

from repro.experiments import (
    experiment_scale,
    fig15_aggressive_vs_conservative,
)
from repro.experiments.report import render_experiment

from .conftest import run_and_report


def test_bench_fig15(benchmark):
    scale = experiment_scale()
    exp = run_and_report(
        benchmark,
        lambda: fig15_aggressive_vs_conservative.run(scale=scale),
        render_experiment,
        name="fig15",
    )
    agg1 = exp.series_by_label("Aggressive (1F)")
    con1 = exp.series_by_label("Conservative (1F)")
    # With one fault at low load the variants coincide.
    assert abs(agg1.points[0].latency - con1.points[0].latency) < (
        0.1 * con1.points[0].latency
    )
    # With many faults the aggressive variant is at least as good.
    agg20 = exp.series_by_label("Aggressive (20F)")
    con20 = exp.series_by_label("Conservative (20F)")
    assert (
        agg20.saturation_throughput()
        >= con20.saturation_throughput() * 0.95
    )
