"""E9 — design-space ablation: scouting distance K and misroute budget m.

The trade-off called out in the paper's closing discussion: larger K
adds acknowledgment traffic; smaller m forces more backtracking and
retries.
"""

from repro.experiments import ablation_k, experiment_scale

from .conftest import run_and_report


def test_bench_ablation(benchmark):
    scale = experiment_scale()
    exp = run_and_report(
        benchmark,
        lambda: ablation_k.run(scale=scale),
        ablation_k.render,
        name="ablation",
    )
    k_series = exp.series_by_label("K sweep")
    m_series = exp.series_by_label("m sweep")
    # Every configuration still delivers traffic.
    assert all(p.delivered > 0 for p in k_series.points)
    assert all(p.delivered > 0 for p in m_series.points)
    # K=0 (aggressive) no slower than K=5 under load near faults.
    lat_by_k = {int(p.extra["K"]): p.latency for p in k_series.points}
    assert lat_by_k[0] <= lat_by_k[5] * 1.1
