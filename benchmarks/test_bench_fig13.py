"""E4 — Figure 13: latency vs throughput with 1/10/20 node faults.

Expected shape: TP's latency stays below MB-m's at matching fault
counts; TP's saturation throughput degrades sharply as faults grow
while MB-m degrades gracefully.
"""

from repro.experiments import experiment_scale, fig13_static_faults
from repro.experiments.report import render_experiment

from .conftest import run_and_report


def test_bench_fig13(benchmark):
    scale = experiment_scale()
    exp = run_and_report(
        benchmark,
        lambda: fig13_static_faults.run(scale=scale),
        render_experiment,
        name="fig13",
    )
    for count in (1, 10, 20):
        tp = exp.series_by_label(f"TP ({count}F)")
        mb = exp.series_by_label(f"MB-m ({count}F)")
        assert tp.points[0].latency < mb.points[0].latency, (
            f"TP must beat MB-m at low load with {count} faults"
        )
    # TP degrades with fault count (latency at the lowest load grows).
    tp1 = exp.series_by_label("TP (1F)").points[0].latency
    tp20 = exp.series_by_label("TP (20F)").points[0].latency
    assert tp20 > tp1
