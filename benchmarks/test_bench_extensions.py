"""Extension benches: hardware acks (Section 7.0) and length sweep.

Not figures of the paper, but experiments the paper explicitly calls
for: the future-work hardware-acknowledgment evaluation and the
short-message sensitivity claim of the introduction.
"""

from repro.experiments import ablation_hw_acks, experiment_scale
from repro.experiments import message_length_sweep
from repro.experiments.report import render_experiment

from .conftest import run_and_report


def test_bench_hw_acks(benchmark):
    scale = experiment_scale()
    exp = run_and_report(
        benchmark,
        lambda: ablation_hw_acks.run(scale=scale),
        render_experiment,
        name="hw_acks",
    )
    flit = exp.series_by_label("Flit acks")
    hw = exp.series_by_label("HW acks")
    # Low-load behaviour identical ("logical behavior unchanged").
    assert abs(flit.points[0].latency - hw.points[0].latency) < (
        0.08 * flit.points[0].latency
    )
    # Dedicated wires never reduce saturation throughput.
    assert hw.saturation_throughput() >= flit.saturation_throughput() * 0.97


def test_bench_length_sweep(benchmark):
    scale = experiment_scale()
    exp = run_and_report(
        benchmark,
        lambda: message_length_sweep.run(scale=scale),
        message_length_sweep.render,
        name="length_sweep",
    )
    tp = exp.series_by_label("TP")
    mb = exp.series_by_label("MB-m")
    ratios = [
        m.latency / t.latency for t, m in zip(tp.points, mb.points)
    ]
    # The PCS penalty is relatively largest for the shortest messages.
    assert ratios[0] > ratios[-1]
    assert ratios[0] > 1.2
