"""E7 — Figure 17: dynamic faults, with vs without tail acknowledgments.

Expected shape: negligible difference at low load; the with-TAck
(reliable delivery + retransmission) curves saturate at lower loads —
held paths and message acknowledgments throttle injection — yet the
feasible operating range extends almost to saturation.
"""

from repro.experiments import experiment_scale, fig17_dynamic_faults
from repro.experiments.report import render_experiment

from .conftest import run_and_report


def test_bench_fig17(benchmark):
    scale = experiment_scale()
    exp = run_and_report(
        benchmark,
        lambda: fig17_dynamic_faults.run(scale=scale),
        render_experiment,
        name="fig17",
    )
    plain1 = exp.series_by_label("w/o TAck (1F)")
    tack1 = exp.series_by_label("with TAck (1F)")
    # Low-load latencies are close (recovery support is near-free).
    assert abs(plain1.points[0].latency - tack1.points[0].latency) < (
        0.15 * plain1.points[0].latency
    )
    # Reliable delivery saturates no later than recovery-only... i.e.
    # its saturation throughput cannot exceed the plain variant's.
    plain20 = exp.series_by_label("w/o TAck (20F)")
    tack20 = exp.series_by_label("with TAck (20F)")
    assert (
        tack20.saturation_throughput()
        <= plain20.saturation_throughput() * 1.05
    )
    # Reliable mode loses nothing.
    assert all(p.killed == 0 for p in tack20.points)
