"""E2 — Section 3.0: Theorem 1/2 backtracking bounds on fault alleys."""

from repro.experiments import theorem_table

from .conftest import run_and_report


def test_bench_theorem_alleys(benchmark):
    rows = run_and_report(
        benchmark,
        lambda: theorem_table.run(radix=16, n=2, depths=(1, 2, 3, 4)),
        theorem_table.render,
        name="theorems",
    )
    # The header must retreat the full alley depth, and the measured
    # consecutive backtracks respect the theorem-level bound.
    assert all(r.measured_backtracks >= r.depth for r in rows)
    assert all(r.within_bound for r in rows)
