"""E3 — Figure 12: latency vs throughput, fault-free TP / DP / MB-m.

Expected shape: TP tracks DP closely (configurable flow control is free
when no faults are present) while MB-m pays the PCS setup overhead in
zero-load latency and saturates no later than either.
"""

from repro.experiments import experiment_scale, fig12_fault_free
from repro.experiments.report import render_experiment

from .conftest import run_and_report


def test_bench_fig12(benchmark):
    scale = experiment_scale()
    exp = run_and_report(
        benchmark,
        lambda: fig12_fault_free.run(scale=scale),
        render_experiment,
        name="fig12",
    )
    tp = exp.series_by_label("TP")
    dp = exp.series_by_label("DP")
    mb = exp.series_by_label("MB-m")
    # Shape assertions (who wins, by roughly what relation).
    assert tp.points[0].latency <= dp.points[0].latency * 1.05, (
        "TP zero-load latency must match DP's"
    )
    assert mb.points[0].latency > dp.points[0].latency * 1.1, (
        "MB-m must pay a visible path-setup penalty"
    )
    assert mb.saturation_throughput() <= tp.saturation_throughput() * 1.05
